//! End-to-end integration tests spanning the whole workspace: the paper's
//! workflows exercised through the public `flordb` API only.

use flordb::prelude::*;

const TRAIN_V1: &str = r#"
let data = load_dataset("first_page", 100, 42);
let epochs = flor.arg("epochs", 4);
let net = make_model(5, 6, 2, 3);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, epochs)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
    }
}
"#;

const TRAIN_V2: &str = r#"
let data = load_dataset("first_page", 100, 42);
let epochs = flor.arg("epochs", 4);
let net = make_model(5, 6, 2, 3);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, epochs)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
        let m = eval_model(net, data);
        flor.log("acc", m[0]);
        flor.log("recall", m[1]);
    }
}
"#;

/// The paper's §2 scenario: several versions run, metadata added later,
/// history backfilled — then queried through the same dataframe as live
/// data.
#[test]
fn multiversion_hindsight_round_trip() {
    let flor = Flor::new("e2e");
    flor.fs.write("train.fl", TRAIN_V1);
    let v1 = flordb::core::run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
    flor.set_cli_arg("epochs", "6");
    let v2 = flordb::core::run_script(&flor, "train.fl", CheckpointPolicy::EveryK(2)).unwrap();
    flor.clear_cli_args();
    assert_ne!(v1.vid, v2.vid); // different arg logs → different tstamps... same tree but distinct commits
    flor.fs.write("train.fl", TRAIN_V2);
    flordb::core::run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();

    let report = flordb::core::backfill(&flor, "train.fl", &["acc", "recall"], 4).unwrap();
    assert_eq!(report.versions.len(), 3);
    assert_eq!(report.values_recovered, (4 + 6) * 2);

    let df = flor.dataframe(&["loss", "acc", "recall"]).unwrap();
    assert_eq!(df.n_rows(), 4 + 6 + 4);
    for col in ["loss", "acc", "recall"] {
        assert_eq!(
            df.column(col).unwrap().count_non_null(),
            df.n_rows(),
            "column {col} still has holes"
        );
    }

    // Selective lazy queries see the backfilled values too, and the
    // pushdown path equals the from-scratch oracle over them.
    let query = || {
        flor.query(&["loss", "acc", "recall"])
            .filter("epoch_iteration", CmpOp::Ge, 2)
            .order_by("recall", false)
            .limit(4)
    };
    let top = query().collect().unwrap();
    assert_eq!(top, query().collect_full().unwrap());
    assert_eq!(top.n_rows(), 4);
}

/// Backfilled values must equal what foresight logging would have produced
/// (the crate-level correctness invariant).
#[test]
fn hindsight_equals_foresight() {
    let flor = Flor::new("e2e");
    flor.fs.write("train.fl", TRAIN_V1);
    flordb::core::run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
    flor.fs.write("train.fl", TRAIN_V2);
    flordb::core::backfill(&flor, "train.fl", &["acc"], 2).unwrap();

    let truth = Flor::new("truth");
    truth.fs.write("train.fl", TRAIN_V2);
    flordb::core::run_script(&truth, "train.fl", CheckpointPolicy::None).unwrap();

    let a = flor
        .dataframe(&["acc"])
        .unwrap()
        .sort_by(&[("epoch_iteration", true)])
        .unwrap();
    let b = truth
        .dataframe(&["acc"])
        .unwrap()
        .sort_by(&[("epoch_iteration", true)])
        .unwrap();
    let texts = |df: &DataFrame| -> Vec<String> {
        df.column("acc")
            .unwrap()
            .values
            .iter()
            .map(|v| v.to_text())
            .collect()
    };
    assert_eq!(texts(&a), texts(&b));
}

/// The lazy query builder end to end: a filtered, deduped, ordered and
/// limited read over live history matches the from-scratch oracle with
/// post-hoc filtering, stays incremental across commits, and the legacy
/// entrypoints are byte-identical wrappers over the same builder.
#[test]
fn lazy_query_round_trip() {
    let flor = Flor::new("e2e");
    flor.set_filename("train.fl");
    for run in 0..5i64 {
        flor.for_each("epoch", 0..4, |flor, &e| {
            flor.log("loss", 1.0 / (run + e + 1) as f64);
            flor.log("acc", 0.6 + 0.05 * run as f64 + 0.01 * e as f64);
        });
        flor.commit("run").unwrap();
    }
    let query = || {
        flor.query(&["loss", "acc"])
            .filter("tstamp", CmpOp::Ge, 2)
            .filter("acc", CmpOp::Gt, 0.7)
            .latest(&["epoch_value"])
            .order_by("acc", false)
            .limit(3)
    };
    let df = query().collect().unwrap();
    assert_eq!(df, query().collect_full().unwrap());
    assert_eq!(df.n_rows(), 3);
    // Descending acc: the filtered max per epoch comes from the last run.
    assert_eq!(df.get(0, "tstamp"), Some(&Value::Int(5)));

    // New commits land as deltas in the maintained plan views.
    let before = flor.views.stats();
    flor.for_each("epoch", 0..4, |flor, &e| {
        flor.log("loss", 0.01);
        flor.log("acc", 0.9 + 0.01 * e as f64);
    });
    flor.commit("one more").unwrap();
    let df = query().collect().unwrap();
    assert_eq!(df, query().collect_full().unwrap());
    assert_eq!(df.get(0, "tstamp"), Some(&Value::Int(6)));
    let stats = flor.views.stats();
    assert_eq!(stats.misses, before.misses, "refresh must be delta-applied");
    assert_eq!(stats.fallback_rebuilds, 0);

    // Legacy entrypoints: one-line wrappers over the builder, equal to
    // their from-scratch oracles.
    assert_eq!(
        flor.dataframe(&["loss"]).unwrap(),
        flor.query(&["loss"]).collect().unwrap()
    );
    assert_eq!(
        flor.dataframe(&["loss"]).unwrap(),
        flor.dataframe_full(&["loss"]).unwrap()
    );
    assert_eq!(
        flor.dataframe_latest(&["acc"], &["epoch_value"]).unwrap(),
        flor.query(&["acc"])
            .latest(&["epoch_value"])
            .collect()
            .unwrap()
    );
    assert_eq!(
        flor.dataframe_latest(&["acc"], &["epoch_value"]).unwrap(),
        flor.dataframe_latest_full(&["acc"], &["epoch_value"])
            .unwrap()
    );
}

/// Durability: a WAL-backed FlorDB instance survives process restart with
/// committed data intact and uncommitted data discarded.
#[test]
fn durable_flor_survives_restart() {
    let dir = std::env::temp_dir().join(format!("flordb-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e.wal");
    let _ = std::fs::remove_file(&path);
    {
        let flor = Flor::open("e2e", &path).unwrap();
        flor.set_filename("train.fl");
        flor.log("acc", 0.9);
        flor.commit("run 1").unwrap();
        flor.log("acc", 0.95); // never committed — lost on crash
    }
    {
        let flor = Flor::open("e2e", &path).unwrap();
        let df = flor.dataframe(&["acc"]).unwrap();
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.get(0, "acc"), Some(&Value::Float(0.9)));
        // The clock resumed past the recovered data.
        flor.log("acc", 0.97);
        flor.commit("run 2").unwrap();
        assert_eq!(flor.dataframe(&["acc"]).unwrap().n_rows(), 2);
    }
    let _ = std::fs::remove_file(&path);
}

/// The record/replay stack honours recorded args: a replayed old version
/// uses the historical epoch count, not the script default.
#[test]
fn replay_respects_recorded_args() {
    let flor = Flor::new("e2e");
    flor.fs.write("train.fl", TRAIN_V1);
    flor.set_cli_arg("epochs", "2");
    flordb::core::run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
    flor.clear_cli_args();
    flor.fs.write("train.fl", TRAIN_V2);
    let report = flordb::core::backfill(&flor, "train.fl", &["acc"], 1).unwrap();
    // Only 2 epochs existed in that run; only 2 values recovered.
    assert_eq!(report.values_recovered, 2);
}

/// The whole PDF Parser demo: make run + feedback rounds keep the
/// dataframe consistent and accuracy non-degrading.
#[test]
fn pdf_demo_smoke() {
    let cfg = CorpusConfig {
        n_pdfs: 8,
        max_docs_per_pdf: 2,
        max_pages_per_doc: 3,
        seed: 77,
    };
    let (pipeline, accs) = run_demo(&cfg, 2).unwrap();
    assert!(accs.len() >= 2);
    assert!(accs[0] > 0.5);
    // Registry answers.
    let best = flordb::pipeline::best_model(&pipeline.flor).unwrap();
    assert!(best.is_some());
    // All six Fig. 1 tables are populated.
    for table in ["logs", "loops", "ts2vid", "git", "obj_store", "build_deps"] {
        assert!(
            pipeline.flor.db.row_count(table).unwrap() > 0,
            "table {table} empty"
        );
    }
}

/// Cross-version change context: the repo diff between two script versions
/// shows exactly the added log statements.
#[test]
fn change_context_diff() {
    let flor = Flor::new("e2e");
    flor.fs.write("train.fl", TRAIN_V1);
    let a = flordb::core::run_script(&flor, "train.fl", CheckpointPolicy::None).unwrap();
    flor.fs.write("train.fl", TRAIN_V2);
    let b = flordb::core::run_script(&flor, "train.fl", CheckpointPolicy::None).unwrap();
    let changes = flor.repo.diff(&a.vid, &b.vid).unwrap();
    assert_eq!(changes.len(), 1);
    match &changes[0] {
        flordb::git::FileChange::Modified { path, ops } => {
            assert_eq!(path, "train.fl");
            let (_, del, ins) = flordb::git::diff::summarize(ops);
            assert_eq!(del, 0);
            assert_eq!(ins, 3); // let m + 2 logs
        }
        other => panic!("expected modification, got {other:?}"),
    }
}
