//! Vendored subset of the `parking_lot` API backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `parking_lot` it uses: [`Mutex`] and
//! [`RwLock`] with non-poisoning guards. Lock poisoning is converted to a
//! panic, which matches `parking_lot`'s abort-free semantics closely
//! enough for this codebase (no code here relies on surviving a panic
//! while a lock is held).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn rwlock_write() {
        let l = RwLock::new(0);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
