//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::sync::Arc;

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the per-case RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    inner: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union produced by [`crate::prop_oneof!`].
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick within total")
    }
}

/// Collection-size specification: a half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    /// Draw a size.
    pub fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

// ---- primitive strategies -------------------------------------------------

/// `any::<T>()`: uniform over the whole type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// See [`any`].
#[derive(Clone)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: exercises infinities, NaN payloads, subnormals —
        // exactly what codec round-trip tests want.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// ---- tuples ---------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

// ---- regex string strategies ----------------------------------------------

/// String literals act as regex strategies over a small, explicit subset:
/// char classes `[a-z0-9_./-]` (ranges + literals), literal characters,
/// `\`-escapes, optional groups `(...)?`, and `{m}` / `{m,n}` / `?`
/// quantifiers. This covers every pattern in the workspace's tests.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex(self).unwrap_or_else(|e| panic!("unsupported regex {self:?}: {e}"));
        let mut out = String::new();
        gen_seq(&atoms, rng, &mut out);
        out
    }
}

/// See [`Strategy`] for `&str`: same subset, owned pattern.
impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex(self).unwrap_or_else(|e| panic!("unsupported regex {self:?}: {e}"));
        let mut out = String::new();
        gen_seq(&atoms, rng, &mut out);
        out
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Class(Vec<(char, char)>, usize, usize),
    Literal(char, usize, usize),
    Group(Vec<Atom>, usize, usize),
}

fn gen_seq(atoms: &[Atom], rng: &mut TestRng, out: &mut String) {
    for atom in atoms {
        let (lo, hi) = match atom {
            Atom::Class(_, lo, hi) | Atom::Literal(_, lo, hi) | Atom::Group(_, lo, hi) => {
                (*lo, *hi)
            }
        };
        let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..reps {
            match atom {
                Atom::Class(ranges, ..) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for (a, b) in ranges {
                        let span = (*b as u64) - (*a as u64) + 1;
                        if pick < span {
                            out.push(char::from_u32(*a as u32 + pick as u32).unwrap_or(*a));
                            break;
                        }
                        pick -= span;
                    }
                }
                Atom::Literal(c, ..) => out.push(*c),
                Atom::Group(inner, ..) => gen_seq(inner, rng, out),
            }
        }
    }
}

fn parse_regex(pattern: &str) -> Result<Vec<Atom>, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let (atoms, consumed) = parse_seq(&chars, 0)?;
    if consumed != chars.len() {
        return Err(format!("trailing input at {consumed}"));
    }
    Ok(atoms)
}

fn parse_seq(chars: &[char], mut i: usize) -> Result<(Vec<Atom>, usize), String> {
    let mut atoms = Vec::new();
    while i < chars.len() && chars[i] != ')' {
        let atom = match chars[i] {
            '[' => {
                let (ranges, next) = parse_class(chars, i + 1)?;
                i = next;
                Atom::Class(ranges, 1, 1)
            }
            '(' => {
                let (inner, next) = parse_seq(chars, i + 1)?;
                if next >= chars.len() || chars[next] != ')' {
                    return Err("unclosed group".into());
                }
                i = next + 1;
                Atom::Group(inner, 1, 1)
            }
            '\\' => {
                if i + 1 >= chars.len() {
                    return Err("dangling escape".into());
                }
                i += 2;
                Atom::Literal(chars[i - 1], 1, 1)
            }
            c => {
                i += 1;
                Atom::Literal(c, 1, 1)
            }
        };
        let (lo, hi, next) = parse_quantifier(chars, i)?;
        i = next;
        atoms.push(match atom {
            Atom::Class(r, ..) => Atom::Class(r, lo, hi),
            Atom::Literal(c, ..) => Atom::Literal(c, lo, hi),
            Atom::Group(g, ..) => Atom::Group(g, lo, hi),
        });
    }
    Ok((atoms, i))
}

fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<(char, char)>, usize), String> {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            *chars.get(i).ok_or("dangling escape in class")?
        } else {
            chars[i]
        };
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            if hi < c {
                return Err(format!("inverted range {c}-{hi}"));
            }
            ranges.push((c, hi));
            i += 3;
        } else {
            ranges.push((c, c));
            i += 1;
        }
    }
    if i >= chars.len() {
        return Err("unclosed class".into());
    }
    if ranges.is_empty() {
        return Err("empty class".into());
    }
    Ok((ranges, i + 1))
}

fn parse_quantifier(chars: &[char], i: usize) -> Result<(usize, usize, usize), String> {
    match chars.get(i) {
        Some('?') => Ok((0, 1, i + 1)),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unclosed quantifier")?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().map_err(|e| format!("{e}"))?,
                    b.trim().parse().map_err(|e| format!("{e}"))?,
                ),
                None => {
                    let n = body.trim().parse().map_err(|e| format!("{e}"))?;
                    (n, n)
                }
            };
            if hi < lo {
                return Err("inverted quantifier".into());
            }
            Ok((lo, hi, close + 1))
        }
        _ => Ok((1, 1, i)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3i64..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let u = (0u8..5).generate(&mut r);
            assert!(u < 5);
            let f = (0.25f64..0.75).generate(&mut r);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn regex_char_class_counts() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut r);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn regex_optional_group() {
        let mut r = rng();
        let mut with = 0;
        let mut without = 0;
        for _ in 0..200 {
            let s = "[a-z]{1,8}(\\.fl)?".generate(&mut r);
            if s.ends_with(".fl") {
                with += 1;
            } else {
                without += 1;
            }
        }
        assert!(with > 0 && without > 0);
    }

    #[test]
    fn regex_mixed_class() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z/._-]{1,12}".generate(&mut r);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || "/._-".contains(c)));
        }
    }

    #[test]
    fn union_respects_weights() {
        let u = crate::prop_oneof![9 => Just(1i64), 1 => Just(2i64)];
        let mut r = rng();
        let ones = (0..1000).filter(|_| u.generate(&mut r) == 1).count();
        assert!(ones > 700, "got {ones}");
    }

    #[test]
    fn collections_hit_sizes() {
        let mut r = rng();
        for _ in 0..100 {
            let v = crate::collection::vec(0i64..10, 2..5).generate(&mut r);
            assert!((2..5).contains(&v.len()));
            let m = crate::collection::btree_map("[a-z]{6,8}", 0i64..3, 1..4).generate(&mut r);
            assert!(!m.is_empty());
        }
    }
}
