//! Test-runner configuration and the deterministic case RNG.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Why a single case did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Deterministic per-case RNG (SplitMix64). Seeding by case index makes
/// every run reproduce the same inputs, so failures are stable across
/// `cargo test` invocations.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the `case`-th generated input of a property.
    pub fn for_case(case: u64) -> TestRng {
        TestRng {
            state: 0x5bd1e995u64
                .wrapping_mul(case.wrapping_add(1))
                .wrapping_add(0x9e3779b97f4a7c15),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
