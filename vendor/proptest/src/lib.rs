//! Vendored subset of the `proptest` API (no crates.io access in the
//! build environment).
//!
//! Implements the slice of proptest this workspace's property tests use:
//! the [`Strategy`](strategy::Strategy) trait with `prop_map`/`boxed`, range / tuple / regex /
//! collection strategies, weighted [`prop_oneof!`], and the [`proptest!`]
//! test macro. Generation is deterministic (seeded per test case); there
//! is **no shrinking** — a failing case panics with the generated inputs
//! visible via the assertion message.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`, `btree_set`, `btree_map`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` targeting a size drawn
    /// from `size`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`vec()`](fn@vec).
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; retry a bounded number of times so
            // minimum sizes are honoured for value spaces larger than `n`.
            let mut attempts = 0;
            while out.len() < n && attempts < n * 10 + 10 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// See [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 10 + 10 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a property; panics with generated-input
/// context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Reject the current case (counts as a skip, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Weighted union of strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each function runs its body over `cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) | Err($crate::test_runner::TestCaseError::Reject) => {}
                }
            }
        }
    )*};
}
