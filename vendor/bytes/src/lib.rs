//! Vendored subset of the `bytes` crate API (no crates.io access in the
//! build environment).
//!
//! Provides [`Bytes`] (a cheaply cloneable, sliceable view of an immutable
//! byte buffer), [`BytesMut`] (a growable builder), and the [`Buf`] /
//! [`BufMut`] cursor traits — exactly the surface the flor-store codec and
//! WAL use. All integers are big-endian, matching the real crate's
//! `get_u32`/`put_u32` family.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A reference-counted immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Length of the remaining (unconsumed) bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True iff no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-slice view sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the remaining bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// A growable, writable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Big-endian integer accessors, matching
/// the real `bytes` crate defaults.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume and return `n` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1)[0]
    }
    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let b = self.copy_to_bytes(2);
        u16::from_be_bytes([b[0], b[1]])
    }
    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let b = self.copy_to_bytes(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }
    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let b = self.copy_to_bytes(8);
        u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }
    /// Consume a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }
    /// Consume a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "copy_to_bytes past end");
        let out = self.slice(..n);
        self.start += n;
        out
    }
}

/// Write cursor over a growable byte sink. Big-endian integer writers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(300);
        b.put_u32(70_000);
        b.put_u64(1 << 40);
        b.put_i64(-5);
        b.put_f64(2.5);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 300);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_i64(), -5);
        assert_eq!(r.get_f64(), 2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_copy() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[1, 2, 3]);
        let mut c = s.clone();
        let head = c.copy_to_bytes(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(c.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "copy_to_bytes past end")]
    fn copy_past_end_panics() {
        let mut b = Bytes::from(vec![1u8]);
        b.copy_to_bytes(2);
    }
}
