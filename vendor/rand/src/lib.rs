//! Vendored subset of the `rand` 0.8 API (no crates.io access in the
//! build environment).
//!
//! Implements [`rngs::StdRng`] as xoshiro256\*\* seeded via SplitMix64 —
//! deterministic across runs and platforms, which is all the workspace
//! needs (flor-ml/flor-pipeline use seeded RNGs for reproducible synthetic
//! data, never for cryptography). The stream differs from upstream rand's
//! `StdRng`, but every consumer in this workspace only relies on
//! *self-consistency* of a given seed.

/// Seedable RNG constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value interface, mirroring the `rand::Rng` methods this
/// workspace uses (`gen_range` over integer/float ranges, `gen_bool`).
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        self.next_f64() < p
    }

    /// Uniform float in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Range types [`Rng::gen_range`] accepts, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw a uniform sample from this range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = bounded_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = bounded_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = rng.next_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Uniform draw in `[0, span)` via rejection-free multiply-shift.
fn bounded_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // 128-bit multiply-high of a 64-bit random with the span: unbiased
    // enough for synthetic-data generation (bias < 2^-64).
    let r = rng.next_u64() as u128;
    (r * span) >> 64
}

/// RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256\*\* generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        let _ = rng.gen_bool(1.0); // bounds must not panic
    }
}
