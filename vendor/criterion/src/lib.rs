//! Vendored subset of the `criterion` benchmarking API (no crates.io
//! access in the build environment).
//!
//! Benchmarks compile and run with the same source as against upstream
//! criterion: groups, `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], and `b.iter(..)`. Measurement is a pragmatic
//! wall-clock sampler — warm up, auto-scale the per-sample iteration
//! count, take `sample_size` samples, report min/mean/max — with plain
//! text output and none of upstream's statistical machinery.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.default_sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b));
        self
    }

    /// Benchmark a closure that receives `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// A benchmark's identifier: function name plus an optional parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (`from_parameter` in upstream criterion).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Measure `routine`, called `iters × samples` times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + auto-scale: pick an iteration count that makes one
        // sample take roughly a millisecond.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        target_samples: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let per_iter = |d: &Duration| d.as_nanos() as f64 / b.iters_per_sample as f64;
    let mut times: Vec<f64> = b.samples.iter().map(per_iter).collect();
    times.sort_by(f64::total_cmp);
    let min = times[0];
    let max = times[times.len() - 1];
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{label:<48} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions under one registration symbol.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
