//! Recording: run a program, capture logs and adaptive checkpoints.
//!
//! Flor's record side (paper §2) provides "low-overhead adaptive
//! checkpointing, minimizing computational resources during model
//! training". The [`Recorder`] runtime captures every `flor.log` with its
//! loop context, resolves `flor.arg`s, and snapshots interpreter state at
//! checkpoint-loop iteration boundaries according to a [`CheckpointPolicy`].

use flor_script::{ExecStats, FlorRuntime, Interpreter, LoopFrame, Program, RtResult, RtValue};
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// When to materialise checkpoints at iteration boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointPolicy {
    /// Never checkpoint (replay must re-run from scratch).
    None,
    /// Checkpoint every `k`-th boundary (k ≥ 1; 1 = every iteration).
    EveryK(usize),
    /// Adaptive (the paper's policy): checkpoint when the work done since
    /// the last checkpoint exceeds `alpha ×` the measured cost of taking
    /// one — amortising checkpoint overhead to at most `1/alpha` of
    /// runtime.
    Adaptive {
        /// Overhead amortisation factor (e.g. 10.0 ⇒ ≤ ~10% overhead).
        alpha: f64,
    },
}

/// One captured log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Logged name.
    pub name: String,
    /// Display text of the logged value.
    pub value: String,
    /// Loop-context stack at the log site (outermost first).
    pub loops: Vec<LoopFrame>,
}

impl LogRecord {
    /// The checkpoint-loop iteration this record belongs to (outermost
    /// frame), or `None` for top-level logs.
    pub fn outer_iteration(&self) -> Option<usize> {
        self.loops.first().map(|f| f.iteration)
    }
}

/// Everything captured by one recorded execution.
#[derive(Debug, Clone, Default)]
pub struct RunRecord {
    /// Captured logs, in execution order.
    pub logs: Vec<LogRecord>,
    /// Resolved `flor.arg` values (name → display text).
    pub args: Vec<(String, String)>,
    /// Snapshots by checkpoint-loop iteration boundary (end of iteration
    /// `i` ⇒ state entering `i+1`).
    pub checkpoints: BTreeMap<usize, String>,
    /// Designated checkpoint loop `(name, length)` if one ran.
    pub ckpt_loop: Option<(String, usize)>,
    /// Interpreter stats for the recording run.
    pub stats: ExecStats,
    /// Number of `flor.commit()` calls.
    pub commits: usize,
    /// Total time spent taking checkpoints, nanoseconds.
    pub ckpt_time_ns: u64,
    /// Number of checkpoints taken.
    pub ckpt_count: usize,
}

impl RunRecord {
    /// Logged value texts for `name`, in execution order.
    pub fn values_of(&self, name: &str) -> Vec<&str> {
        self.logs
            .iter()
            .filter(|l| l.name == name)
            .map(|l| l.value.as_str())
            .collect()
    }

    /// The recorded arg value, if any.
    pub fn arg(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Nearest checkpoint boundary at or below `iteration - 1` — the best
    /// restore point for replaying `iteration`.
    pub fn best_restore_point(&self, iteration: usize) -> Option<usize> {
        self.checkpoints
            .range(..iteration)
            .next_back()
            .map(|(&k, _)| k)
    }
}

/// The recording runtime.
pub struct Recorder {
    /// Checkpoint policy in force.
    pub policy: CheckpointPolicy,
    /// Accumulating record.
    pub record: RunRecord,
    /// `flor.arg` overrides (simulating CLI arguments).
    pub arg_overrides: HashMap<String, RtValue>,
    last_boundary: Instant,
    work_since_ckpt_ns: u64,
    last_ckpt_cost_ns: u64,
    boundaries_seen: usize,
}

impl Recorder {
    /// New recorder with the given policy.
    pub fn new(policy: CheckpointPolicy) -> Recorder {
        Recorder {
            policy,
            record: RunRecord::default(),
            arg_overrides: HashMap::new(),
            last_boundary: Instant::now(),
            work_since_ckpt_ns: 0,
            last_ckpt_cost_ns: 0,
            boundaries_seen: 0,
        }
    }

    /// Set an argument override (like passing `--name value`).
    pub fn with_arg(mut self, name: &str, value: RtValue) -> Recorder {
        self.arg_overrides.insert(name.to_string(), value);
        self
    }

    fn should_checkpoint(&mut self) -> bool {
        match self.policy {
            CheckpointPolicy::None => false,
            CheckpointPolicy::EveryK(k) => {
                let k = k.max(1);
                self.boundaries_seen.is_multiple_of(k)
            }
            CheckpointPolicy::Adaptive { alpha } => {
                // First boundary always checkpoints (cost unknown yet).
                if self.last_ckpt_cost_ns == 0 {
                    return true;
                }
                self.work_since_ckpt_ns as f64 >= alpha.max(0.0) * self.last_ckpt_cost_ns as f64
            }
        }
    }
}

impl FlorRuntime for Recorder {
    fn arg(&mut self, name: &str, default: RtValue) -> RtValue {
        let v = self.arg_overrides.get(name).cloned().unwrap_or(default);
        self.record.args.push((name.to_string(), v.display_text()));
        v
    }

    fn log(&mut self, name: &str, value: &RtValue, loops: &[LoopFrame]) {
        self.record.logs.push(LogRecord {
            name: name.to_string(),
            value: value.display_text(),
            loops: loops.to_vec(),
        });
    }

    fn loop_begin(&mut self, name: &str, length: usize, loops: &[LoopFrame]) {
        // Outermost flor.loop becomes the recorded checkpoint loop
        // candidate; the interpreter only calls boundaries for the real one.
        if loops.is_empty() && self.record.ckpt_loop.is_none() {
            self.record.ckpt_loop = Some((name.to_string(), length));
            self.last_boundary = Instant::now();
        }
    }

    fn commit(&mut self) {
        self.record.commits += 1;
    }

    fn on_checkpoint_boundary(
        &mut self,
        _loop_name: &str,
        iteration: usize,
        snapshot: &mut dyn FnMut() -> RtResult<String>,
    ) {
        let elapsed = self.last_boundary.elapsed().as_nanos() as u64;
        self.work_since_ckpt_ns = self.work_since_ckpt_ns.saturating_add(elapsed);
        let take = self.should_checkpoint();
        self.boundaries_seen += 1;
        if take {
            let t0 = Instant::now();
            if let Ok(snap) = snapshot() {
                let cost = t0.elapsed().as_nanos() as u64;
                self.record.checkpoints.insert(iteration, snap);
                self.record.ckpt_time_ns += cost;
                self.record.ckpt_count += 1;
                self.last_ckpt_cost_ns = cost.max(1);
                self.work_since_ckpt_ns = 0;
            }
        }
        self.last_boundary = Instant::now();
    }
}

/// Record one execution of `prog`. Returns the record and the final
/// interpreter (for inspecting end-state in tests and pipelines).
pub fn record(
    prog: &Program,
    policy: CheckpointPolicy,
    args: &[(&str, RtValue)],
) -> RtResult<(RunRecord, Interpreter)> {
    let mut recorder = Recorder::new(policy);
    for (n, v) in args {
        recorder.arg_overrides.insert((*n).to_string(), v.clone());
    }
    let mut interp = Interpreter::new();
    let stats = interp.run(prog, &mut recorder)?;
    recorder.record.stats = stats;
    Ok((recorder.record, interp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_script::parse;

    const TRAIN: &str = r#"
let data = load_dataset("first_page", 80, 42);
let epochs = flor.arg("epochs", 4);
let lr = flor.arg("lr", 0.5);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, epochs)) {
        let loss = train_step(net, data, lr);
        flor.log("loss", loss);
        let m = eval_model(net, data);
        flor.log("acc", m[0]);
        flor.log("recall", m[1]);
    }
}
"#;

    #[test]
    fn records_logs_with_context() {
        let prog = parse(TRAIN).unwrap();
        let (rec, _) = record(&prog, CheckpointPolicy::None, &[]).unwrap();
        assert_eq!(rec.values_of("loss").len(), 4);
        assert_eq!(rec.values_of("acc").len(), 4);
        let last = rec.logs.last().unwrap();
        assert_eq!(last.name, "recall");
        assert_eq!(last.outer_iteration(), Some(3));
        assert_eq!(rec.ckpt_loop, Some(("epoch".to_string(), 4)));
    }

    #[test]
    fn arg_overrides_and_recording() {
        let prog = parse(TRAIN).unwrap();
        let (rec, _) = record(
            &prog,
            CheckpointPolicy::None,
            &[("epochs", RtValue::Int(2))],
        )
        .unwrap();
        assert_eq!(rec.arg("epochs"), Some("2"));
        assert_eq!(rec.arg("lr"), Some("0.5"));
        assert_eq!(rec.values_of("loss").len(), 2);
    }

    #[test]
    fn every_k_checkpoints() {
        let prog = parse(TRAIN).unwrap();
        let (rec, _) = record(&prog, CheckpointPolicy::EveryK(1), &[]).unwrap();
        assert_eq!(
            rec.checkpoints.keys().copied().collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        let (rec2, _) = record(&prog, CheckpointPolicy::EveryK(2), &[]).unwrap();
        assert_eq!(
            rec2.checkpoints.keys().copied().collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn none_policy_takes_no_checkpoints() {
        let prog = parse(TRAIN).unwrap();
        let (rec, _) = record(&prog, CheckpointPolicy::None, &[]).unwrap();
        assert!(rec.checkpoints.is_empty());
        assert_eq!(rec.ckpt_count, 0);
    }

    #[test]
    fn adaptive_takes_at_least_one_and_bounded() {
        let prog = parse(TRAIN).unwrap();
        let (rec, _) = record(&prog, CheckpointPolicy::Adaptive { alpha: 10.0 }, &[]).unwrap();
        assert!(rec.ckpt_count >= 1);
        assert!(rec.ckpt_count <= 4);
    }

    #[test]
    fn adaptive_alpha_zero_checkpoints_everywhere() {
        let prog = parse(TRAIN).unwrap();
        let (rec, _) = record(&prog, CheckpointPolicy::Adaptive { alpha: 0.0 }, &[]).unwrap();
        assert_eq!(rec.ckpt_count, 4);
    }

    #[test]
    fn best_restore_point_picks_nearest_below() {
        let prog = parse(TRAIN).unwrap();
        let (rec, _) = record(&prog, CheckpointPolicy::EveryK(2), &[]).unwrap();
        // checkpoints at 0, 2
        assert_eq!(rec.best_restore_point(0), None);
        assert_eq!(rec.best_restore_point(1), Some(0));
        assert_eq!(rec.best_restore_point(2), Some(0));
        assert_eq!(rec.best_restore_point(3), Some(2));
    }

    #[test]
    fn checkpoints_restore_to_correct_state() {
        let prog = parse(TRAIN).unwrap();
        let (rec, final_interp) = record(&prog, CheckpointPolicy::EveryK(1), &[]).unwrap();
        // The snapshot at the last boundary equals the final state of the
        // checkpointed variables.
        let snap = &rec.checkpoints[&3];
        let (env, heap) = flor_script::restore_state(snap).unwrap();
        let net_final = match final_interp.env["net"] {
            RtValue::Model(h) => final_interp.heap.models[h].clone(),
            _ => panic!(),
        };
        let net_snap = match env["net"] {
            RtValue::Model(h) => heap.models[h].clone(),
            _ => panic!(),
        };
        assert_eq!(net_final, net_snap);
    }

    #[test]
    fn commits_counted() {
        let prog = parse("flor.commit();\nflor.commit();").unwrap();
        let (rec, _) = record(&prog, CheckpointPolicy::None, &[]).unwrap();
        assert_eq!(rec.commits, 2);
    }
}
