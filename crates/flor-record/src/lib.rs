//! # flor-record — record/replay for multiversion hindsight logging
//!
//! The mechanics behind FlorDB's "magic trick" (CIDR 2025, §2): log now,
//! get data from the past.
//!
//! * [`record()`](fn@record) — run a program under a [`Recorder`], capturing every
//!   `flor.log` with loop context, resolved `flor.arg`s, and state
//!   snapshots at checkpoint-loop boundaries under a [`CheckpointPolicy`]
//!   (`None` / `EveryK` / the paper's `Adaptive` low-overhead policy);
//! * [`replay()`](fn@replay) — given a (patched) program and a prior [`RunRecord`],
//!   plan the minimal set of iterations to execute ([`plan_replay`]),
//!   restore from the nearest checkpoints, skip memoized iterations, and
//!   fan work out across threads;
//! * [`merge_logs`] — combine memoized recorded values with freshly
//!   replayed ones into the complete log of the patched program.
//!
//! The crate-level invariant, enforced by tests: *hindsight-replayed values
//! are bit-identical to the values a foresight run (the patched program
//! executed from scratch) would have logged.*

#![warn(missing_docs)]

pub mod record;
pub mod replay;

pub use record::{record, CheckpointPolicy, LogRecord, Recorder, RunRecord};
pub use replay::{
    iterations_logging, merge_logs, plan_replay, replay, replay_with, IterAction, ReplayControl,
    ReplayOutcome, ReplayPlan, Replayer,
};
