//! Replay: plan the minimal work, steer the interpreter, parallelise.
//!
//! The paper's replay side (§2): retroactively execute new logging
//! statements "across all those versions via incremental replay, without
//! the need for full re-execution ... through a combination of differential
//! execution and parallelism, allowing FlorDB to efficiently replay only
//! the necessary parts of the pipeline."
//!
//! Mechanics: the planner turns (recorded checkpoints × needed iterations)
//! into per-iteration [`IterAction`]s — skip, restore-then-run, run, or
//! stop. Skipped iterations are *memoized*: their log values are served
//! from the recorded run. Independent needed iterations are partitioned
//! across worker threads, each replaying from its nearest checkpoint.

use crate::record::{LogRecord, RunRecord};
use flor_script::{
    Directive, ExecStats, FlorRuntime, Interpreter, LoopFrame, Program, RtResult, RtValue,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared cancellation + progress channel threaded through a replay.
///
/// Cloning shares the same flags, so a background scheduler (flor-jobs)
/// can hold one half while the replay workers hold the other: `cancel`
/// makes every worker halt at its next checkpoint-loop boundary, and
/// `iterations_executed` ticks up live as iterations run — the per-unit
/// progress a `JobHandle` reports mid-flight.
#[derive(Debug, Clone, Default)]
pub struct ReplayControl {
    cancelled: Arc<AtomicBool>,
    iterations: Arc<AtomicUsize>,
}

impl ReplayControl {
    /// Fresh control: not cancelled, zero progress.
    pub fn new() -> ReplayControl {
        ReplayControl::default()
    }

    /// A control sharing an external cancellation flag and progress
    /// counter (the job scheduler's), so cancelling the job cancels the
    /// replay and replayed iterations tick the job's progress.
    pub fn shared(cancelled: Arc<AtomicBool>, iterations: Arc<AtomicUsize>) -> ReplayControl {
        ReplayControl {
            cancelled,
            iterations,
        }
    }

    /// Request cancellation: workers stop at the next iteration boundary.
    // audit: ordering — control-plane flag checked at iteration
    // boundaries; SeqCst gives a total order with the tick counter so
    // observers never see progress after an acknowledged cancel.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    // audit: ordering — pairs with the SeqCst store in `cancel`.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Iterations executed so far across all workers (live counter).
    // audit: ordering — live progress read; SeqCst keeps it consistent
    // with the cancellation flag it is reported beside.
    pub fn iterations_executed(&self) -> usize {
        self.iterations.load(Ordering::SeqCst)
    }

    // audit: ordering — once-per-iteration counter bump; SeqCst for the
    // same total order as the cancel flag, cost is immaterial here.
    fn tick(&self) {
        self.iterations.fetch_add(1, Ordering::SeqCst);
    }
}

/// Planned action for one checkpoint-loop iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum IterAction {
    /// Skip: recorded values cover this iteration.
    Skip,
    /// Restore the checkpoint taken at boundary `ckpt`, then run.
    RestoreThenRun {
        /// Boundary iteration whose snapshot to install.
        ckpt: usize,
    },
    /// Run normally (state already correct from a prior iteration).
    Run,
    /// Halt the program at this iteration.
    Stop,
}

/// A replay plan over the checkpoint loop.
#[derive(Debug, Clone, Default)]
pub struct ReplayPlan {
    /// Action per iteration index.
    pub actions: Vec<IterAction>,
    /// Iterations that will actually execute.
    pub will_run: usize,
}

/// Compute the minimal-execution plan to run exactly the `needed`
/// iterations of a loop of `total` iterations, given recorded checkpoints.
///
/// Greedy: for each needed iteration choose the cheaper of (a) continuing
/// from the previously executed position or (b) restoring the nearest
/// checkpoint below it.
pub fn plan_replay(
    total: usize,
    needed: &[usize],
    checkpoints: &BTreeMap<usize, String>,
) -> ReplayPlan {
    let mut needed: Vec<usize> = needed.iter().copied().filter(|&i| i < total).collect();
    needed.sort_unstable();
    needed.dedup();
    let mut actions = vec![IterAction::Skip; total];
    if needed.is_empty() {
        if total > 0 {
            actions[0] = IterAction::Stop;
        }
        return ReplayPlan {
            actions,
            will_run: 0,
        };
    }
    // last executed iteration, if any
    let mut pos: Option<usize> = None;
    for &i in &needed {
        if let Some(p) = pos {
            if p >= i {
                continue; // already executed on the way to a previous target
            }
        }
        // Option a: continue from pos (cost i - pos).
        let cont_cost = pos.map(|p| i - p);
        // Option b: restore nearest ckpt c < i (cost i - c, runs c+1..=i).
        let best_ckpt = checkpoints.range(..i).next_back().map(|(&c, _)| c);
        let restore_cost = best_ckpt.map(|c| i - c);
        enum Choice {
            Continue(usize),
            Restore(usize),
            FromStart,
        }
        let choice = match (cont_cost, restore_cost, best_ckpt) {
            (Some(cc), Some(rc), Some(c)) => {
                if rc < cc {
                    Choice::Restore(c)
                } else {
                    // audit: allow(panic) — cont_cost is `pos.map(..)`, so
                    // Some(cc) implies pos is Some.
                    Choice::Continue(pos.expect("cont_cost implies pos"))
                }
            }
            // audit: allow(panic) — same derivation: cont_cost comes from pos.
            (Some(_), None, _) => Choice::Continue(pos.expect("cont_cost implies pos")),
            (None, Some(_), Some(c)) => Choice::Restore(c),
            _ => Choice::FromStart,
        };
        match choice {
            Choice::Continue(p) => {
                for a in actions.iter_mut().take(i + 1).skip(p + 1) {
                    *a = IterAction::Run;
                }
            }
            Choice::Restore(c) => {
                actions[c + 1] = IterAction::RestoreThenRun { ckpt: c };
                for a in actions.iter_mut().take(i + 1).skip(c + 2) {
                    *a = IterAction::Run;
                }
            }
            Choice::FromStart => {
                for a in actions.iter_mut().take(i + 1) {
                    *a = IterAction::Run;
                }
            }
        }
        pos = Some(i);
    }
    // Halt after the last needed iteration.
    // audit: allow(panic) — the is_empty case returned early above.
    let last = *needed.last().expect("non-empty");
    if last + 1 < total {
        actions[last + 1] = IterAction::Stop;
    }
    let will_run = actions
        .iter()
        .filter(|a| matches!(a, IterAction::Run | IterAction::RestoreThenRun { .. }))
        .count();
    ReplayPlan { actions, will_run }
}

/// Replay runtime: follows a [`ReplayPlan`], serves recorded args, and
/// collects logs emitted by executed iterations.
pub struct Replayer<'a> {
    plan: &'a ReplayPlan,
    record: &'a RunRecord,
    /// Logs captured during replay.
    pub logs: Vec<LogRecord>,
    ckpt_loop_name: Option<String>,
    control: ReplayControl,
}

impl<'a> Replayer<'a> {
    /// Build a replayer for a plan over a prior record.
    pub fn new(plan: &'a ReplayPlan, record: &'a RunRecord) -> Replayer<'a> {
        Replayer::with_control(plan, record, ReplayControl::new())
    }

    /// [`Replayer::new`] with a shared [`ReplayControl`] for cancellation
    /// and live progress reporting.
    pub fn with_control(
        plan: &'a ReplayPlan,
        record: &'a RunRecord,
        control: ReplayControl,
    ) -> Replayer<'a> {
        Replayer {
            plan,
            record,
            logs: Vec::new(),
            ckpt_loop_name: record.ckpt_loop.as_ref().map(|(n, _)| n.clone()),
            control,
        }
    }
}

impl FlorRuntime for Replayer<'_> {
    fn arg(&mut self, name: &str, default: RtValue) -> RtValue {
        // "retrieving historical values during replay" (paper §2.1):
        // an arg recorded in the original run replays with that value.
        match self.record.arg(name) {
            Some(text) => parse_recorded_value(text, &default),
            None => default,
        }
    }

    fn log(&mut self, name: &str, value: &RtValue, loops: &[LoopFrame]) {
        self.logs.push(LogRecord {
            name: name.to_string(),
            value: value.display_text(),
            loops: loops.to_vec(),
        });
    }

    fn plan(&mut self, loop_name: &str, iteration: usize) -> Directive {
        if self.ckpt_loop_name.as_deref() != Some(loop_name) {
            return Directive::Run;
        }
        // Cooperative cancellation: a cancelled replay halts at the next
        // iteration boundary instead of finishing the plan.
        if self.control.is_cancelled() {
            return Directive::Stop;
        }
        match self.plan.actions.get(iteration) {
            Some(IterAction::Skip) | None => Directive::Skip,
            Some(IterAction::Run) => {
                self.control.tick();
                Directive::Run
            }
            Some(IterAction::RestoreThenRun { ckpt }) => {
                self.control.tick();
                match self.record.checkpoints.get(ckpt) {
                    Some(snap) => Directive::Restore(snap.clone()),
                    None => Directive::Run, // defensive: plan referenced a missing ckpt
                }
            }
            Some(IterAction::Stop) => Directive::Stop,
        }
    }
}

/// Parse a recorded display text back into a value, guided by the default's
/// type (args are scalars in practice).
fn parse_recorded_value(text: &str, default: &RtValue) -> RtValue {
    match default {
        RtValue::Int(_) => text
            .parse::<i64>()
            .map(RtValue::Int)
            .unwrap_or_else(|_| RtValue::Str(text.to_string())),
        RtValue::Float(_) => text
            .parse::<f64>()
            .map(RtValue::Float)
            .unwrap_or_else(|_| RtValue::Str(text.to_string())),
        RtValue::Bool(_) => match text {
            "true" => RtValue::Bool(true),
            "false" => RtValue::Bool(false),
            _ => RtValue::Str(text.to_string()),
        },
        _ => RtValue::Str(text.to_string()),
    }
}

/// Outcome of a (possibly parallel) replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayOutcome {
    /// Logs produced by executed iterations, merged across workers and
    /// sorted by (outer iteration, emission order).
    pub new_logs: Vec<LogRecord>,
    /// Summed interpreter stats across workers.
    pub stats: ExecStats,
    /// Worker count used.
    pub workers: usize,
    /// Iterations executed (across workers).
    pub iterations_executed: usize,
    /// Critical-path work: the maximum `work_units` consumed by any single
    /// worker. On a machine with ≥ `workers` cores, wall-clock tracks this
    /// rather than the summed stats — the parallel-replay speedup metric.
    pub critical_path_work: u64,
    /// Whether the replay was cut short by a [`ReplayControl`] cancel.
    /// A cancelled outcome's logs are partial and must not be ingested.
    pub cancelled: bool,
}

/// Replay `needed` iterations of `prog` (typically a patched prior
/// version) against `record`, using up to `parallelism` worker threads.
///
/// Workers partition the needed iterations; each restores from its own
/// nearest checkpoint, so wall-clock scales down with workers — the
/// parallelism half of the paper's replay speedup.
pub fn replay(
    prog: &Program,
    record: &RunRecord,
    needed: &[usize],
    parallelism: usize,
) -> RtResult<ReplayOutcome> {
    replay_with(prog, record, needed, parallelism, &ReplayControl::new())
}

/// [`replay`] with a shared [`ReplayControl`]: the caller can cancel the
/// replay mid-flight (workers halt at the next iteration boundary and the
/// outcome comes back with `cancelled = true`) and read live progress via
/// [`ReplayControl::iterations_executed`] — the hooks the flor-jobs
/// background scheduler threads through every unit of backfill work.
pub fn replay_with(
    prog: &Program,
    record: &RunRecord,
    needed: &[usize],
    parallelism: usize,
    control: &ReplayControl,
) -> RtResult<ReplayOutcome> {
    let total = record.ckpt_loop.as_ref().map(|(_, n)| *n).unwrap_or(0);
    let mut needed: Vec<usize> = needed.iter().copied().filter(|&i| i < total).collect();
    needed.sort_unstable();
    needed.dedup();
    let workers = parallelism.max(1).min(needed.len().max(1));
    // Partition needed iterations contiguously across workers.
    let chunk = needed.len().div_ceil(workers).max(1);
    let parts: Vec<Vec<usize>> = needed.chunks(chunk).map(<[usize]>::to_vec).collect();

    let results: Vec<RtResult<(Vec<LogRecord>, ExecStats, usize)>> = if parts.len() <= 1 {
        parts
            .iter()
            .map(|part| run_worker(prog, record, part, total, control))
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|part| scope.spawn(move || run_worker(prog, record, part, total, control)))
                .collect();
            handles
                .into_iter()
                // audit: allow(panic) — deliberate propagation: a worker
                // panic is a replay-engine bug and must not be swallowed
                // as a partial result.
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };

    let mut outcome = ReplayOutcome {
        workers: parts.len(),
        cancelled: control.is_cancelled(),
        ..Default::default()
    };
    for r in results {
        let (logs, stats, executed) = r?;
        outcome.critical_path_work = outcome.critical_path_work.max(stats.work_units);
        outcome.new_logs.extend(logs);
        outcome.stats.statements += stats.statements;
        outcome.stats.work_units += stats.work_units;
        outcome.stats.iterations_run += stats.iterations_run;
        outcome.stats.iterations_skipped += stats.iterations_skipped;
        outcome.stats.restores += stats.restores;
        outcome.iterations_executed += executed;
    }
    outcome
        .new_logs
        .sort_by_key(|l| (l.outer_iteration().unwrap_or(usize::MAX), 0));
    Ok(outcome)
}

fn run_worker(
    prog: &Program,
    record: &RunRecord,
    part: &[usize],
    total: usize,
    control: &ReplayControl,
) -> RtResult<(Vec<LogRecord>, ExecStats, usize)> {
    let plan = plan_replay(total, part, &record.checkpoints);
    let mut replayer = Replayer::with_control(&plan, record, control.clone());
    let mut interp = Interpreter::new();
    let stats = interp.run(prog, &mut replayer)?;
    // Keep only logs from iterations this worker was asked for (it may have
    // executed warm-up iterations whose logs belong to another worker or
    // are already recorded).
    let wanted: std::collections::HashSet<usize> = part.iter().copied().collect();
    let logs: Vec<LogRecord> = replayer
        .logs
        .into_iter()
        .filter(|l| l.outer_iteration().is_none_or(|i| wanted.contains(&i)))
        .collect();
    Ok((logs, stats, plan.will_run))
}

/// Merge replayed logs into the recorded logs: recorded values are the
/// memoized base; replayed values fill in or supersede records with the
/// same `(name, loop context)`. The result is a complete log as if the
/// (patched) program had been fully re-executed.
pub fn merge_logs(recorded: &[LogRecord], replayed: &[LogRecord]) -> Vec<LogRecord> {
    let key = |l: &LogRecord| -> (String, Vec<(String, usize)>) {
        (
            l.name.clone(),
            l.loops
                .iter()
                .map(|f| (f.name.clone(), f.iteration))
                .collect(),
        )
    };
    let mut merged: Vec<LogRecord> = recorded.to_vec();
    let mut index: std::collections::HashMap<_, usize> = merged
        .iter()
        .enumerate()
        .map(|(i, l)| (key(l), i))
        .collect();
    for l in replayed {
        match index.get(&key(l)) {
            Some(&i) => merged[i] = l.clone(),
            None => {
                index.insert(key(l), merged.len());
                merged.push(l.clone());
            }
        }
    }
    // Stable order: by outer iteration then original position.
    merged.sort_by_key(|l| l.outer_iteration().unwrap_or(usize::MAX));
    merged
}

/// Which outer iterations carry a log named `name` in `logs`.
pub fn iterations_logging(logs: &[LogRecord], name: &str) -> Vec<usize> {
    let mut out: Vec<usize> = logs
        .iter()
        .filter(|l| l.name == name)
        .filter_map(LogRecord::outer_iteration)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{record, CheckpointPolicy};
    use flor_script::parse;

    const TRAIN: &str = r#"
let data = load_dataset("first_page", 80, 42);
let epochs = flor.arg("epochs", 6);
let lr = flor.arg("lr", 0.5);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, epochs)) {
        let loss = train_step(net, data, lr);
        flor.log("loss", loss);
    }
}
"#;

    /// TRAIN with an extra hindsight statement (what propagation produces).
    const TRAIN_PATCHED: &str = r#"
let data = load_dataset("first_page", 80, 42);
let epochs = flor.arg("epochs", 6);
let lr = flor.arg("lr", 0.5);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, epochs)) {
        let loss = train_step(net, data, lr);
        flor.log("loss", loss);
        let m = eval_model(net, data);
        flor.log("acc", m[0]);
    }
}
"#;

    #[test]
    fn plan_with_dense_checkpoints_runs_only_needed() {
        let mut ckpts = BTreeMap::new();
        for i in 0..10 {
            ckpts.insert(i, format!("snap{i}"));
        }
        let plan = plan_replay(10, &[7], &ckpts);
        assert_eq!(plan.will_run, 1);
        assert_eq!(plan.actions[7], IterAction::RestoreThenRun { ckpt: 6 });
        assert_eq!(plan.actions[8], IterAction::Stop);
        assert_eq!(plan.actions[0], IterAction::Skip);
    }

    #[test]
    fn plan_without_checkpoints_runs_prefix() {
        let plan = plan_replay(10, &[7], &BTreeMap::new());
        assert_eq!(plan.will_run, 8); // 0..=7
        assert!(matches!(plan.actions[0], IterAction::Run));
        assert_eq!(plan.actions[8], IterAction::Stop);
    }

    #[test]
    fn plan_prefers_continue_over_far_restore() {
        // ckpt at 0 only; needed 3 and 5: after running 1..=3 it is cheaper
        // to continue 4..=5 than to restore ckpt 0 and run 1..=5.
        let mut ckpts = BTreeMap::new();
        ckpts.insert(0usize, "s0".to_string());
        let plan = plan_replay(8, &[3, 5], &ckpts);
        assert_eq!(plan.actions[1], IterAction::RestoreThenRun { ckpt: 0 });
        for i in 2..=5 {
            assert_eq!(plan.actions[i], IterAction::Run, "iteration {i}");
        }
        assert_eq!(plan.actions[6], IterAction::Stop);
        assert_eq!(plan.will_run, 5);
    }

    #[test]
    fn plan_restores_when_cheaper() {
        // ckpts everywhere; needed 1 and 8: restore at 8 beats running 2..=8.
        let mut ckpts = BTreeMap::new();
        for i in 0..10 {
            ckpts.insert(i, format!("s{i}"));
        }
        let plan = plan_replay(10, &[1, 8], &ckpts);
        assert_eq!(plan.actions[1], IterAction::RestoreThenRun { ckpt: 0 });
        assert_eq!(plan.actions[8], IterAction::RestoreThenRun { ckpt: 7 });
        assert_eq!(plan.will_run, 2);
    }

    #[test]
    fn plan_empty_needed_stops_immediately() {
        let plan = plan_replay(5, &[], &BTreeMap::new());
        assert_eq!(plan.will_run, 0);
        assert_eq!(plan.actions[0], IterAction::Stop);
    }

    #[test]
    fn hindsight_replay_matches_foresight_run() {
        // Record the original (no acc logging).
        let orig = parse(TRAIN).unwrap();
        let (rec, _) = record(&orig, CheckpointPolicy::EveryK(1), &[]).unwrap();
        assert_eq!(rec.values_of("acc").len(), 0);

        // Ground truth: a full run of the patched program from scratch.
        let patched = parse(TRAIN_PATCHED).unwrap();
        let (truth, _) = record(&patched, CheckpointPolicy::None, &[]).unwrap();
        let truth_accs = truth.values_of("acc").to_vec();
        assert_eq!(truth_accs.len(), 6);

        // Hindsight: replay all iterations of the patched program from
        // checkpoints, one iteration each.
        let needed: Vec<usize> = (0..6).collect();
        let out = replay(&patched, &rec, &needed, 1).unwrap();
        let accs = iterations_logging(&out.new_logs, "acc");
        assert_eq!(accs, needed);
        let replay_accs: Vec<&str> = out
            .new_logs
            .iter()
            .filter(|l| l.name == "acc")
            .map(|l| l.value.as_str())
            .collect();
        assert_eq!(
            replay_accs, truth_accs,
            "hindsight values must be bit-identical"
        );
    }

    #[test]
    fn parallel_replay_equals_serial() {
        let orig = parse(TRAIN).unwrap();
        let (rec, _) = record(&orig, CheckpointPolicy::EveryK(1), &[]).unwrap();
        let patched = parse(TRAIN_PATCHED).unwrap();
        let needed: Vec<usize> = (0..6).collect();
        let serial = replay(&patched, &rec, &needed, 1).unwrap();
        let parallel = replay(&patched, &rec, &needed, 4).unwrap();
        assert!(parallel.workers > 1);
        let vals = |o: &ReplayOutcome| -> Vec<(String, String)> {
            let mut v: Vec<(String, String)> = o
                .new_logs
                .iter()
                .map(|l| {
                    (
                        format!("{}@{:?}", l.name, l.outer_iteration()),
                        l.value.clone(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(vals(&serial), vals(&parallel));
    }

    #[test]
    fn replay_subset_is_cheaper_than_full() {
        let orig = parse(TRAIN).unwrap();
        let (rec, _) = record(&orig, CheckpointPolicy::EveryK(1), &[]).unwrap();
        let patched = parse(TRAIN_PATCHED).unwrap();
        let full_stats = record(&patched, CheckpointPolicy::None, &[])
            .unwrap()
            .0
            .stats;
        let out = replay(&patched, &rec, &[5], 1).unwrap();
        assert_eq!(out.iterations_executed, 1);
        assert!(
            out.stats.work_units < full_stats.work_units / 2,
            "replay {} vs full {}",
            out.stats.work_units,
            full_stats.work_units
        );
    }

    #[test]
    fn replay_uses_recorded_args() {
        let orig = parse(TRAIN).unwrap();
        let (rec, _) = record(
            &orig,
            CheckpointPolicy::EveryK(1),
            &[("epochs", RtValue::Int(3)), ("lr", RtValue::Float(0.25))],
        )
        .unwrap();
        assert_eq!(rec.values_of("loss").len(), 3);
        // Replay the patched program: it must see epochs=3 (recorded), not 6.
        let patched = parse(TRAIN_PATCHED).unwrap();
        let out = replay(&patched, &rec, &[0, 1, 2], 1).unwrap();
        assert_eq!(iterations_logging(&out.new_logs, "acc"), vec![0, 1, 2]);
    }

    #[test]
    fn cancelled_control_stops_replay_early() {
        let orig = parse(TRAIN).unwrap();
        let (rec, _) = record(&orig, CheckpointPolicy::EveryK(1), &[]).unwrap();
        let patched = parse(TRAIN_PATCHED).unwrap();
        let needed: Vec<usize> = (0..6).collect();
        let ctl = ReplayControl::new();
        ctl.cancel();
        let out = replay_with(&patched, &rec, &needed, 1, &ctl).unwrap();
        assert!(out.cancelled);
        assert_eq!(out.stats.iterations_run, 0, "cancelled before any work");
    }

    #[test]
    fn control_counts_iterations_live() {
        let orig = parse(TRAIN).unwrap();
        let (rec, _) = record(&orig, CheckpointPolicy::EveryK(1), &[]).unwrap();
        let patched = parse(TRAIN_PATCHED).unwrap();
        let needed: Vec<usize> = (0..6).collect();
        let ctl = ReplayControl::new();
        let out = replay_with(&patched, &rec, &needed, 2, &ctl).unwrap();
        assert!(!out.cancelled);
        assert_eq!(ctl.iterations_executed(), out.iterations_executed);
        assert_eq!(out.iterations_executed, 6);
    }

    #[test]
    fn merge_logs_fills_and_supersedes() {
        let frame = |i: usize| LoopFrame {
            name: "epoch".into(),
            iteration: i,
            value: i.to_string(),
        };
        let recorded = vec![
            LogRecord {
                name: "loss".into(),
                value: "1.0".into(),
                loops: vec![frame(0)],
            },
            LogRecord {
                name: "loss".into(),
                value: "0.5".into(),
                loops: vec![frame(1)],
            },
        ];
        let replayed = vec![
            LogRecord {
                name: "acc".into(),
                value: "0.9".into(),
                loops: vec![frame(1)],
            },
            LogRecord {
                name: "loss".into(),
                value: "0.5".into(),
                loops: vec![frame(1)],
            },
        ];
        let merged = merge_logs(&recorded, &replayed);
        assert_eq!(merged.len(), 3);
        let names: Vec<&str> = merged.iter().map(|l| l.name.as_str()).collect();
        assert!(names.contains(&"acc"));
    }
}
