// The guard dies at the end of the inner block; the flush then runs
// lock-free. The second fn documents a deliberate hold.
pub fn flush_ok(p: &Pair, w: &mut Wal) {
    {
        let og = p.outer.lock();
        stage(&og);
    }
    w.flush_log();
}

pub fn durable(p: &Pair, w: &mut Wal) {
    let og = p.outer.lock();
    // audit: allow(hold-across-io) — the log must reflect this state
    // before the guard drops or a reader could observe unlogged rows
    w.flush_log();
    drop(og);
}
