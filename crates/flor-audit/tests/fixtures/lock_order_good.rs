// Declared order respected: `outer` is acquired before `inner`.
pub fn nested_ok(p: &Pair) {
    let og = p.outer.lock();
    let ig = p.inner.lock();
    use_both(&og, &ig);
}
