// Hierarchy violation, re-entry, and an undeclared mutex.
pub fn backwards(p: &Pair) {
    let ig = p.inner.lock();
    let og = p.outer.lock();
    use_both(&og, &ig);
}

pub fn reentrant(p: &Pair) {
    let a = p.outer.lock();
    let b = p.outer.lock();
    use_both(&a, &b);
}

pub fn undeclared(p: &Pair) {
    let g = p.mystery.lock();
    drop(g);
}
