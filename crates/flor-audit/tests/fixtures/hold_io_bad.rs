// Flushes the log while the commit guard is still live.
pub fn flush_bad(p: &Pair, w: &mut Wal) {
    let og = p.outer.lock();
    w.flush_log();
    drop(og);
}
