// A reason-less allow and an unknown rule: both are themselves
// violations, and neither suppresses the panic site it precedes.
pub fn noisy(v: &[u32]) -> u32 {
    // audit: allow(panic)
    v.first().unwrap() + 1
}

pub fn unknown(v: &[u32]) -> u32 {
    // audit: allow(frobnicate) — not a rule
    v.last().unwrap() + 1
}
