// Annotated panic sites: a line-level allow and a fn-level allow.
pub fn checked(v: &[u32]) -> u32 {
    if v.is_empty() {
        return 0;
    }
    // audit: allow(panic) — emptiness was checked above
    v.last().unwrap() + 1
}

// audit: allow(panic) — both lookups are guarded by the length
// check at entry
pub fn covered(v: &[u32]) -> u32 {
    if v.len() < 2 {
        return 0;
    }
    v.first().expect("len checked") + v.last().expect("len checked")
}
