// Unannotated panic sites.
pub fn brittle(v: &[u32]) -> u32 {
    let a = v.first().unwrap();
    let b = v.last().expect("always there");
    if a > b {
        unreachable!("sorted input");
    }
    panic!("boom");
}
