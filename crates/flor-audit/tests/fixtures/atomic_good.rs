// Justified orderings: inline and standalone annotation forms.
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); // audit: ordering — stats counter, no ordering dependency
}

pub fn latch(f: &AtomicBool) {
    // audit: ordering — shutdown latch; SeqCst keeps the store
    // totally ordered with the drain loop's load
    f.store(true, Ordering::SeqCst);
}
