// Orderings without a written justification.
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn latch(f: &AtomicBool) {
    f.store(true, Ordering::SeqCst);
}
