//! Fixture tests for the audit rules: each rule gets a known-good and a
//! known-bad source snippet (under `tests/fixtures/`, which the audit
//! itself skips), and the bad ones must produce *exactly* the expected
//! diagnostics. The final test audits the real workspace and requires
//! it clean — the same check CI's `audit` job runs.

use flor_audit::{audit_sources, Manifest};

/// A two-class hierarchy plus one project I/O wrapper — just enough
/// manifest for the fixtures.
const MANIFEST: &str = r#"
[hierarchy]
order = [
    "outer",
    "inner",
]

[classes.outer]
sites = ["src/**:outer"]

[classes.inner]
sites = ["src/**:inner"]

[io]
fns = ["flush_log"]
"#;

/// Audit in-memory fixtures and render the diagnostics to strings.
fn audit(files: &[(&str, &str)]) -> Vec<String> {
    let manifest = Manifest::parse(MANIFEST).expect("fixture manifest parses");
    let files: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    audit_sources(&files, &manifest)
        .diagnostics
        .iter()
        .map(|d| d.to_string())
        .collect()
}

#[test]
fn lock_order_good_is_clean() {
    let diags = audit(&[(
        "src/lock_order_good.rs",
        include_str!("fixtures/lock_order_good.rs"),
    )]);
    assert_eq!(diags, Vec::<String>::new());
}

#[test]
fn lock_order_bad_is_flagged() {
    let diags = audit(&[(
        "src/lock_order_bad.rs",
        include_str!("fixtures/lock_order_bad.rs"),
    )]);
    assert_eq!(
        diags,
        vec![
            "src/lock_order_bad.rs:4: [lock-order] `outer` acquired at outer while holding \
             `inner` (line 3) contradicts the declared hierarchy (inner is inner to outer)",
            "src/lock_order_bad.rs:10: [lock-order] `outer` acquired in fn reentrant while \
             already held (line 9) — self-deadlock",
            "src/lock_order_bad.rs:15: [lock-order] unclassified lock acquisition \
             `mystery.lock()` in fn undeclared — declare it in lockorder.toml [classes.*] \
             or annotate",
        ]
    );
}

#[test]
fn lock_cycle_is_detected_across_files() {
    // The good file acquires outer->inner, the bad one inner->outer:
    // together the observed acquisition graph has a cycle.
    let diags = audit(&[
        (
            "src/lock_order_good.rs",
            include_str!("fixtures/lock_order_good.rs"),
        ),
        (
            "src/lock_order_bad.rs",
            include_str!("fixtures/lock_order_bad.rs"),
        ),
    ]);
    let cycle = "src/lock_order_bad.rs:4: [lock-order] cyclic lock acquisition: \
                 inner -> outer -> inner — deadlock possible";
    assert!(
        diags.iter().any(|d| d == cycle),
        "missing cycle diagnostic in: {diags:#?}"
    );
}

#[test]
fn hold_across_io_good_is_clean() {
    let diags = audit(&[(
        "src/hold_io_good.rs",
        include_str!("fixtures/hold_io_good.rs"),
    )]);
    assert_eq!(diags, Vec::<String>::new());
}

#[test]
fn hold_across_io_bad_is_flagged() {
    let diags = audit(&[(
        "src/hold_io_bad.rs",
        include_str!("fixtures/hold_io_bad.rs"),
    )]);
    assert_eq!(
        diags,
        vec![
            "src/hold_io_bad.rs:4: [hold-across-io] I/O call `flush_log` in fn flush_bad \
             while holding `outer` (line 3) — release the guard first or annotate with the \
             reason the hold is deliberate",
        ]
    );
}

#[test]
fn atomic_good_is_clean() {
    let diags = audit(&[(
        "src/atomic_good.rs",
        include_str!("fixtures/atomic_good.rs"),
    )]);
    assert_eq!(diags, Vec::<String>::new());
}

#[test]
fn atomic_bad_is_flagged() {
    let diags = audit(&[("src/atomic_bad.rs", include_str!("fixtures/atomic_bad.rs"))]);
    assert_eq!(
        diags,
        vec![
            "src/atomic_bad.rs:3: [atomic-ordering] Ordering::Relaxed without an \
             `// audit: ordering — <why>` justification",
            "src/atomic_bad.rs:7: [atomic-ordering] Ordering::SeqCst without an \
             `// audit: ordering — <why>` justification",
        ]
    );
}

#[test]
fn panic_good_is_clean() {
    let diags = audit(&[("src/panic_good.rs", include_str!("fixtures/panic_good.rs"))]);
    assert_eq!(diags, Vec::<String>::new());
}

#[test]
fn panic_bad_is_flagged() {
    let diags = audit(&[("src/panic_bad.rs", include_str!("fixtures/panic_bad.rs"))]);
    let tail = "in non-test code — return an error, or annotate \
                `// audit: allow(panic) — <why it cannot fire>`";
    assert_eq!(
        diags,
        vec![
            format!("src/panic_bad.rs:3: [panic] `.unwrap()` {tail}"),
            format!("src/panic_bad.rs:4: [panic] `.expect()` {tail}"),
            format!("src/panic_bad.rs:6: [panic] `unreachable!` {tail}"),
            format!("src/panic_bad.rs:8: [panic] `panic!` {tail}"),
        ]
    );
}

#[test]
fn bad_annotations_are_flagged_and_do_not_suppress() {
    let diags = audit(&[(
        "src/annotation_bad.rs",
        include_str!("fixtures/annotation_bad.rs"),
    )]);
    let tail = "in non-test code — return an error, or annotate \
                `// audit: allow(panic) — <why it cannot fire>`";
    assert_eq!(
        diags,
        vec![
            "src/annotation_bad.rs:4: [annotation] allow(panic) needs a written reason \
             after a dash"
                .to_string(),
            format!("src/annotation_bad.rs:5: [panic] `.unwrap()` {tail}"),
            "src/annotation_bad.rs:9: [annotation] unparseable audit annotation: unknown \
             rule in allow(...)"
                .to_string(),
            format!("src/annotation_bad.rs:10: [panic] `.unwrap()` {tail}"),
        ]
    );
}

#[test]
fn workspace_is_clean() {
    // The same gate CI runs: the real workspace, under the real
    // manifest, must carry zero violations.
    let mut root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    while !root.join("lockorder.toml").is_file() {
        assert!(root.pop(), "lockorder.toml not found above the crate dir");
    }
    let manifest = flor_audit::load_manifest(&root).expect("lockorder.toml parses");
    let report = flor_audit::audit_workspace(&root, &manifest).expect("workspace walk");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace is not audit-clean:\n{}",
        rendered.join("\n")
    );
    assert!(report.files_audited > 0);
    assert!(report.lock_sites > 0);
}
