//! The `lockorder.toml` manifest: the workspace's declared lock
//! hierarchy, lock-site classification, one-hop call summaries, extra
//! I/O function names, and skip globs.
//!
//! Parsed with a purpose-built TOML subset reader (tables, string
//! values, string arrays — all the manifest needs; the build has no
//! crates.io access so no `toml` crate).

use std::collections::BTreeMap;
use std::fmt;

/// A manifest load/parse problem (reported as a config error, exit 2).
#[derive(Debug, Clone)]
pub struct ManifestError(pub String);

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lockorder.toml: {}", self.0)
    }
}

impl std::error::Error for ManifestError {}

/// One classified lock-acquisition site pattern: `glob:receiver`.
#[derive(Debug, Clone)]
pub struct SitePattern {
    /// Path glob relative to the workspace root (`**`, `*` supported).
    pub glob: String,
    /// The receiver identifier immediately before `.lock()` /
    /// `.read()` / `.write()`.
    pub recv: String,
}

/// A one-hop interprocedural summary: calling `fn_name(...)` acquires
/// `class` internally.
#[derive(Debug, Clone)]
pub struct Summary {
    pub fn_name: String,
    pub class: String,
    /// True when the call *returns* the guard (the acquisition outlives
    /// the call, e.g. a `lock(&mutex)` helper); false when the lock is
    /// released before returning (e.g. `publish`).
    pub returns_guard: bool,
    /// Path globs the summary applies in (empty = everywhere).
    pub paths: Vec<String>,
}

/// Parsed manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Declared hierarchy, outermost lock first. An acquisition of `B`
    /// while `A` is held is legal only if `A` precedes `B` here.
    pub order: Vec<String>,
    /// class name -> site patterns.
    pub classes: BTreeMap<String, Vec<SitePattern>>,
    /// Call summaries.
    pub summaries: Vec<Summary>,
    /// Extra I/O function names (beyond the built-in set).
    pub io_fns: Vec<String>,
    /// Path globs excluded from the audit entirely (tests, benches,
    /// vendored code are excluded by default; these add to that).
    pub skip: Vec<String>,
}

impl Manifest {
    /// Parse manifest text.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let raw = parse_toml_subset(text)?;
        let mut m = Manifest::default();
        for (section, kv) in &raw {
            if section == "hierarchy" {
                m.order = get_array(kv, "order")?;
            } else if let Some(class) = section.strip_prefix("classes.") {
                let mut sites = Vec::new();
                for s in get_array(kv, "sites")? {
                    let Some((glob, recv)) = s.rsplit_once(':') else {
                        return Err(ManifestError(format!(
                            "class {class}: site {s:?} must be \"<glob>:<receiver>\""
                        )));
                    };
                    sites.push(SitePattern {
                        glob: glob.to_string(),
                        recv: recv.to_string(),
                    });
                }
                m.classes.insert(class.to_string(), sites);
            } else if let Some(name) = section.strip_prefix("summaries.") {
                let fn_name = get_string(kv, "fn")
                    .ok_or_else(|| ManifestError(format!("summary {name}: missing fn")))?;
                let class = get_string(kv, "class")
                    .ok_or_else(|| ManifestError(format!("summary {name}: missing class")))?;
                let returns_guard = get_string(kv, "guard").as_deref() == Some("true");
                let paths = match kv.get("paths") {
                    Some(Val::Array(a)) => a.clone(),
                    _ => Vec::new(),
                };
                m.summaries.push(Summary {
                    fn_name,
                    class,
                    returns_guard,
                    paths,
                });
            } else if section == "io" {
                m.io_fns = get_array(kv, "fns").unwrap_or_default();
            } else if section == "skip" {
                m.skip = get_array(kv, "paths").unwrap_or_default();
            } else {
                return Err(ManifestError(format!("unknown section [{section}]")));
            }
        }
        // Every class must have a place in the hierarchy, or edge
        // checks would be undefined for it.
        for class in m.classes.keys() {
            if !m.order.iter().any(|o| o == class) {
                return Err(ManifestError(format!(
                    "class {class} is not listed in [hierarchy] order"
                )));
            }
        }
        for s in &m.summaries {
            if !m.order.iter().any(|o| o == &s.class) {
                return Err(ManifestError(format!(
                    "summary fn {}: class {} is not in [hierarchy] order",
                    s.fn_name, s.class
                )));
            }
        }
        Ok(m)
    }

    /// Rank of a class in the declared hierarchy.
    pub fn rank(&self, class: &str) -> Option<usize> {
        self.order.iter().position(|o| o == class)
    }

    /// Classify a lock receiver at `path` (workspace-relative, `/`
    /// separators). Returns the class name.
    pub fn classify(&self, path: &str, recv: &str) -> Option<&str> {
        for (class, sites) in &self.classes {
            for s in sites {
                if s.recv == recv && glob_match(&s.glob, path) {
                    return Some(class.as_str());
                }
            }
        }
        None
    }

    /// Find a call summary applicable to `fn_name` at `path`.
    pub fn summary_for(&self, path: &str, fn_name: &str) -> Option<&Summary> {
        self.summaries.iter().find(|s| {
            s.fn_name == fn_name
                && (s.paths.is_empty() || s.paths.iter().any(|g| glob_match(g, path)))
        })
    }
}

#[derive(Debug, Clone)]
enum Val {
    Str(String),
    Array(Vec<String>),
}

fn get_array(kv: &BTreeMap<String, Val>, key: &str) -> Result<Vec<String>, ManifestError> {
    match kv.get(key) {
        Some(Val::Array(a)) => Ok(a.clone()),
        Some(Val::Str(_)) => Err(ManifestError(format!("{key} must be an array"))),
        None => Err(ManifestError(format!("missing key {key}"))),
    }
}

fn get_string(kv: &BTreeMap<String, Val>, key: &str) -> Option<String> {
    match kv.get(key) {
        Some(Val::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// A parsed `[section]` in declaration order: name plus its key/values.
type Sections = Vec<(String, BTreeMap<String, Val>)>;

/// Parse the TOML subset: `[dotted.section]` headers, `key = "str"`,
/// `key = [ "a", "b" ]` (arrays may span lines), `#` comments.
fn parse_toml_subset(text: &str) -> Result<Sections, ManifestError> {
    let mut sections: Sections = Vec::new();
    let mut current: Option<usize> = None;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(ManifestError(format!(
                    "line {}: bad section header",
                    ln + 1
                )));
            };
            sections.push((name.trim().to_string(), BTreeMap::new()));
            current = Some(sections.len() - 1);
            continue;
        }
        let Some((key, vtext)) = line.split_once('=') else {
            return Err(ManifestError(format!(
                "line {}: expected key = value",
                ln + 1
            )));
        };
        let key = key.trim().to_string();
        let mut vbuf = vtext.trim().to_string();
        // Multi-line array: keep consuming until the bracket closes.
        if vbuf.starts_with('[') {
            while !vbuf.trim_end().ends_with(']') {
                let Some((_, cont)) = lines.next() else {
                    return Err(ManifestError(format!(
                        "line {}: unterminated array",
                        ln + 1
                    )));
                };
                vbuf.push(' ');
                vbuf.push_str(strip_comment(cont).trim());
            }
        }
        let val =
            parse_value(vbuf.trim()).map_err(|e| ManifestError(format!("line {}: {e}", ln + 1)))?;
        let Some(idx) = current else {
            return Err(ManifestError(format!(
                "line {}: key outside any [section]",
                ln + 1
            )));
        };
        sections[idx].1.insert(key, val);
    }
    Ok(sections)
}

fn strip_comment(line: &str) -> &str {
    // `#` inside quoted strings does not occur in this manifest format's
    // values in practice (globs and identifiers); keep it simple.
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_value(v: &str) -> Result<Val, String> {
    if let Some(inner) = v.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or("unterminated array")?;
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(unquote(part)?);
        }
        return Ok(Val::Array(items));
    }
    Ok(Val::Str(unquote(v)?))
}

fn unquote(s: &str) -> Result<String, String> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('"') {
        if let Some(body) = rest.strip_suffix('"') {
            return Ok(body.to_string());
        }
        return Err(format!("unterminated string: {s}"));
    }
    // Bare values (true/false, identifiers) pass through.
    Ok(s.to_string())
}

/// Match `path` (always `/`-separated, workspace-relative) against a
/// glob supporting `**` (any number of path segments, including zero)
/// and `*` (within one segment).
pub fn glob_match(glob: &str, path: &str) -> bool {
    let g: Vec<&str> = glob.split('/').collect();
    let p: Vec<&str> = path.split('/').collect();
    seg_match(&g, &p)
}

fn seg_match(g: &[&str], p: &[&str]) -> bool {
    match g.first() {
        None => p.is_empty(),
        Some(&"**") => {
            // `**` may swallow zero or more leading path segments.
            (0..=p.len()).any(|k| seg_match(&g[1..], &p[k..]))
        }
        Some(seg) => match p.first() {
            None => false,
            Some(ps) => wildcard_match(seg, ps) && seg_match(&g[1..], &p[1..]),
        },
    }
}

/// `*`-wildcard match within a single path segment.
fn wildcard_match(pat: &str, s: &str) -> bool {
    let pb: Vec<char> = pat.chars().collect();
    let sb: Vec<char> = s.chars().collect();
    fn go(p: &[char], s: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('*') => (0..=s.len()).any(|k| go(&p[1..], &s[k..])),
            Some(c) => s.first() == Some(c) && go(&p[1..], &s[1..]),
        }
    }
    go(&pb, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_manifest() {
        let text = r#"
# comment
[hierarchy]
order = [
    "outer",   # outermost
    "inner",
]

[classes.outer]
sites = ["crates/a/src/*.rs:state"]

[classes.inner]
sites = ["**:queue", "crates/b/**:q"]

[summaries.pub]
fn = "publish"
class = "inner"
guard = "false"
paths = ["crates/a/**"]

[io]
fns = ["append"]

[skip]
paths = ["crates/bench/**"]
"#;
        let m = Manifest::parse(text).unwrap();
        assert_eq!(m.order, vec!["outer", "inner"]);
        assert_eq!(m.classify("crates/a/src/db.rs", "state"), Some("outer"));
        assert_eq!(m.classify("crates/x/src/y.rs", "queue"), Some("inner"));
        assert_eq!(m.classify("crates/a/src/db.rs", "nope"), None);
        assert!(m.summary_for("crates/a/src/db.rs", "publish").is_some());
        assert!(m.summary_for("crates/c/src/db.rs", "publish").is_none());
        assert_eq!(m.io_fns, vec!["append"]);
        assert_eq!(m.skip, vec!["crates/bench/**"]);
    }

    #[test]
    fn class_must_be_in_hierarchy() {
        let text = "[hierarchy]\norder = [\"a\"]\n[classes.b]\nsites = [\"**:x\"]\n";
        assert!(Manifest::parse(text).is_err());
    }

    #[test]
    fn globs() {
        assert!(glob_match("crates/*/src/**", "crates/flor-store/src/db.rs"));
        assert!(glob_match("**", "anything/at/all.rs"));
        assert!(glob_match("**/tests/**", "crates/x/tests/t.rs"));
        assert!(!glob_match("crates/a/**", "crates/b/src/lib.rs"));
        assert!(glob_match("src/*.rs", "src/lib.rs"));
        assert!(!glob_match("src/*.rs", "src/sub/lib.rs"));
    }
}
