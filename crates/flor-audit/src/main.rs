//! CLI for the workspace concurrency audit.
//!
//! ```text
//! cargo run -p flor-audit -- --workspace            # audit the repo
//! cargo run -p flor-audit -- --root <dir>           # explicit root
//! cargo run -p flor-audit -- --manifest <file> ...  # explicit manifest
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut manifest_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--manifest" => match args.next() {
                Some(p) => manifest_path = Some(PathBuf::from(p)),
                None => return usage("--manifest needs a path"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "flor-audit: workspace concurrency-invariant linter\n\
                     usage: flor-audit [--workspace] [--root DIR] [--manifest FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    // Root: explicit, else walk up from CWD to the directory holding
    // lockorder.toml (so the binary works from any crate dir).
    let root = match root {
        Some(r) => r,
        None => {
            let mut dir = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => return config_err(&format!("cannot read cwd: {e}")),
            };
            loop {
                if dir.join("lockorder.toml").is_file() {
                    break dir;
                }
                if !dir.pop() {
                    return config_err("no lockorder.toml found here or in any parent directory");
                }
            }
        }
    };

    let manifest = match manifest_path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(text) => match flor_audit::Manifest::parse(&text) {
                Ok(m) => m,
                Err(e) => return config_err(&e.to_string()),
            },
            Err(e) => return config_err(&format!("cannot read {}: {e}", p.display())),
        },
        None => match flor_audit::load_manifest(&root) {
            Ok(m) => m,
            Err(e) => return config_err(&e.to_string()),
        },
    };

    let report = match flor_audit::audit_workspace(&root, &manifest) {
        Ok(r) => r,
        Err(e) => return config_err(&format!("audit failed: {e}")),
    };

    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.diagnostics.is_empty() {
        println!(
            "flor-audit: workspace clean ({} files, {} functions, {} lock sites audited)",
            report.files_audited, report.functions_audited, report.lock_sites
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "flor-audit: {} violation(s) across {} files audited",
            report.diagnostics.len(),
            report.files_audited
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("flor-audit: {msg} (try --help)");
    ExitCode::from(2)
}

fn config_err(msg: &str) -> ExitCode {
    eprintln!("flor-audit: {msg}");
    ExitCode::from(2)
}
