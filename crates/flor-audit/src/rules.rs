//! The four audit rules, applied to per-file [`FileFacts`], plus the
//! annotation machinery that makes each rule individually suppressible
//! with a written reason.

use crate::analysis::FileFacts;
use crate::manifest::Manifest;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which rule a diagnostic (or annotation) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Lock acquisitions must follow the `lockorder.toml` hierarchy;
    /// the observed acquisition graph must be acyclic; every lock must
    /// be classified.
    LockOrder,
    /// No file/network I/O while a guard is live ("short mutex hold").
    HoldAcrossIo,
    /// `Ordering::Relaxed` / `Ordering::SeqCst` need a written
    /// justification.
    AtomicOrdering,
    /// No `.unwrap()` / `.expect()` / `panic!` / `unreachable!` in
    /// non-test code without a written reason.
    Panic,
    /// Malformed or reason-less `// audit:` comments.
    Annotation,
}

impl RuleId {
    pub fn name(self) -> &'static str {
        match self {
            RuleId::LockOrder => "lock-order",
            RuleId::HoldAcrossIo => "hold-across-io",
            RuleId::AtomicOrdering => "atomic-ordering",
            RuleId::Panic => "panic",
            RuleId::Annotation => "annotation",
        }
    }

    pub fn from_name(s: &str) -> Option<RuleId> {
        match s.replace('_', "-").as_str() {
            "lock-order" => Some(RuleId::LockOrder),
            "hold-across-io" => Some(RuleId::HoldAcrossIo),
            "atomic-ordering" | "ordering" => Some(RuleId::AtomicOrdering),
            "panic" => Some(RuleId::Panic),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Per-file annotation index: which (rule, line) pairs are allowed.
struct Allows {
    /// Exact lines allowed per rule.
    lines: BTreeMap<RuleId, BTreeSet<u32>>,
    /// Whole-function line ranges allowed per rule.
    ranges: BTreeMap<RuleId, Vec<(u32, u32)>>,
    /// Whole-file allows.
    file: BTreeSet<RuleId>,
}

impl Allows {
    fn allowed(&self, rule: RuleId, line: u32) -> bool {
        if self.file.contains(&rule) {
            return true;
        }
        if self.lines.get(&rule).is_some_and(|s| s.contains(&line)) {
            return true;
        }
        self.ranges
            .get(&rule)
            .is_some_and(|rs| rs.iter().any(|(a, b)| line >= *a && line <= *b))
    }
}

/// Build the annotation index for one file; malformed or reason-less
/// annotations become diagnostics.
fn build_allows(facts: &FileFacts, diags: &mut Vec<Diagnostic>) -> Allows {
    let mut allows = Allows {
        lines: BTreeMap::new(),
        ranges: BTreeMap::new(),
        file: BTreeSet::new(),
    };
    // Sorted token lines let a standalone comment attach to the next
    // code line.
    let mut code_lines: Vec<u32> = facts
        .functions
        .iter()
        .flat_map(|f| [f.sig_line, f.body_open_line, f.body_close_line])
        .collect();
    code_lines.extend(facts.locks.iter().map(|l| l.line));
    code_lines.extend(facts.io.iter().map(|e| e.line));
    code_lines.extend(facts.atomics.iter().map(|e| e.line));
    code_lines.extend(facts.panics.iter().map(|e| e.line));
    code_lines.sort_unstable();

    for ann in &facts.annotations {
        if let Some(why) = &ann.malformed {
            diags.push(Diagnostic {
                file: facts.path.clone(),
                line: ann.line,
                rule: RuleId::Annotation,
                message: format!("unparseable audit annotation: {why}"),
            });
            continue;
        }
        if ann.reason.is_empty() {
            diags.push(Diagnostic {
                file: facts.path.clone(),
                line: ann.line,
                rule: RuleId::Annotation,
                message: format!(
                    "allow({}) needs a written reason after a dash",
                    ann.rule.name()
                ),
            });
            continue;
        }
        if ann.file_scope {
            allows.file.insert(ann.rule);
            continue;
        }
        // Effective line: the annotation's own line, or — when the
        // comment stands alone — the next code line after it.
        let eff = if ann.standalone {
            code_lines
                .iter()
                .find(|l| **l > ann.line)
                .copied()
                .unwrap_or(ann.line)
        } else {
            ann.line
        };
        // When the effective line falls inside a `fn` signature (from
        // the `fn` keyword through the body's `{`), the allow covers
        // the entire function body — the escape hatch for multi-line
        // statements and for functions with many same-reason sites.
        let mut covered_fn = false;
        for f in &facts.functions {
            if eff >= f.sig_line && eff <= f.body_open_line {
                allows
                    .ranges
                    .entry(ann.rule)
                    .or_default()
                    .push((f.sig_line, f.body_close_line));
                covered_fn = true;
                break;
            }
        }
        if !covered_fn {
            allows.lines.entry(ann.rule).or_default().insert(eff);
        }
    }
    allows
}

/// Run every rule over the analyzed files; returns sorted diagnostics.
pub fn check(files: &[FileFacts], manifest: &Manifest) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Observed lock-acquisition edges for the global cycle check:
    // (holder, acquired) -> one example site.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();

    for facts in files {
        let allows = build_allows(facts, &mut diags);

        // ---- lock-order ----
        for ev in &facts.locks {
            match &ev.class {
                None if ev.receiver_style && !allows.allowed(RuleId::LockOrder, ev.line) => {
                    diags.push(Diagnostic {
                        file: facts.path.clone(),
                        line: ev.line,
                        rule: RuleId::LockOrder,
                        message: format!(
                            "unclassified lock acquisition `{}.lock()` in fn {} — declare \
                             it in lockorder.toml [classes.*] or annotate",
                            ev.site, ev.in_fn
                        ),
                    });
                }
                None => {}
                Some(class) => {
                    for (held, held_line) in &ev.held {
                        if held == class {
                            if !allows.allowed(RuleId::LockOrder, ev.line) {
                                diags.push(Diagnostic {
                                    file: facts.path.clone(),
                                    line: ev.line,
                                    rule: RuleId::LockOrder,
                                    message: format!(
                                        "`{class}` acquired in fn {} while already held \
                                         (line {held_line}) — self-deadlock",
                                        ev.in_fn
                                    ),
                                });
                            }
                            continue;
                        }
                        edges
                            .entry((held.clone(), class.clone()))
                            .or_insert((facts.path.clone(), ev.line));
                        let (hr, cr) = (manifest.rank(held), manifest.rank(class));
                        if let (Some(hr), Some(cr)) = (hr, cr) {
                            if hr > cr && !allows.allowed(RuleId::LockOrder, ev.line) {
                                diags.push(Diagnostic {
                                    file: facts.path.clone(),
                                    line: ev.line,
                                    rule: RuleId::LockOrder,
                                    message: format!(
                                        "`{class}` acquired at {} while holding `{held}` \
                                         (line {held_line}) contradicts the declared \
                                         hierarchy ({held} is inner to {class})",
                                        ev.site
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }

        // ---- hold-across-io ----
        for ev in &facts.io {
            if allows.allowed(RuleId::HoldAcrossIo, ev.line) {
                continue;
            }
            let held: Vec<String> = if ev.held.is_empty() {
                vec!["<unclassified guard>".to_string()]
            } else {
                ev.held
                    .iter()
                    .map(|(c, l)| format!("`{c}` (line {l})"))
                    .collect()
            };
            diags.push(Diagnostic {
                file: facts.path.clone(),
                line: ev.line,
                rule: RuleId::HoldAcrossIo,
                message: format!(
                    "I/O call `{}` in fn {} while holding {} — release the guard first \
                     or annotate with the reason the hold is deliberate",
                    ev.call,
                    ev.in_fn,
                    held.join(", ")
                ),
            });
        }

        // ---- atomic-ordering ----
        for ev in &facts.atomics {
            if !allows.allowed(RuleId::AtomicOrdering, ev.line) {
                diags.push(Diagnostic {
                    file: facts.path.clone(),
                    line: ev.line,
                    rule: RuleId::AtomicOrdering,
                    message: format!(
                        "Ordering::{} without an `// audit: ordering — <why>` justification",
                        ev.which
                    ),
                });
            }
        }

        // ---- panic ----
        for ev in &facts.panics {
            if !allows.allowed(RuleId::Panic, ev.line) {
                diags.push(Diagnostic {
                    file: facts.path.clone(),
                    line: ev.line,
                    rule: RuleId::Panic,
                    message: format!(
                        "`{}` in non-test code — return an error, or annotate \
                         `// audit: allow(panic) — <why it cannot fire>`",
                        ev.call
                    ),
                });
            }
        }
    }

    // ---- global cycle check over the observed acquisition graph ----
    for cycle in find_cycles(&edges) {
        let (file, line) = edges
            .get(&(cycle[0].clone(), cycle[1].clone()))
            .cloned()
            .unwrap_or_default();
        diags.push(Diagnostic {
            file,
            line,
            rule: RuleId::LockOrder,
            message: format!(
                "cyclic lock acquisition: {} — deadlock possible",
                cycle.join(" -> ")
            ),
        });
    }

    diags.sort();
    diags.dedup();
    diags
}

/// Find elementary cycles in the edge set (returned as class chains
/// ending where they started). The graph is tiny (a handful of lock
/// classes), so a DFS per node is plenty.
fn find_cycles(edges: &BTreeMap<(String, String), (String, u32)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut stack = vec![start];
        dfs(
            start,
            start,
            &adj,
            &mut stack,
            &mut cycles,
            &mut seen_cycles,
        );
    }
    cycles
}

fn dfs<'a>(
    start: &'a str,
    at: &str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    stack: &mut Vec<&'a str>,
    cycles: &mut Vec<Vec<String>>,
    seen: &mut BTreeSet<Vec<String>>,
) {
    let Some(nexts) = adj.get(at) else { return };
    for next in nexts {
        if *next == start {
            let mut chain: Vec<String> = stack.iter().map(|s| s.to_string()).collect();
            chain.push(start.to_string());
            // Canonicalize so each rotation of the same cycle is
            // reported once: smallest element first.
            let mut key = chain[..chain.len() - 1].to_vec();
            let min_pos = key
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            key.rotate_left(min_pos);
            if seen.insert(key) {
                cycles.push(chain);
            }
        } else if !stack.contains(next) {
            stack.push(next);
            dfs(start, next, adj, stack, cycles, seen);
            stack.pop();
        }
    }
}
