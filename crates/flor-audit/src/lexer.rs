//! A purpose-built lightweight Rust tokenizer.
//!
//! The audit does not need a full parse — only a token stream faithful
//! enough to find lock acquisitions, I/O calls, atomic orderings and
//! panic sites, and to segment the file into functions and test
//! regions. Comments are consumed here and mined for `// audit:`
//! annotations; string/char literals are opaque (so `".unwrap()"`
//! inside a string never trips a rule); doc comments are skipped
//! entirely (code in doc examples is not audited).

use crate::rules::RuleId;

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw-identifier prefix `r#` stripped).
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String / char / byte / numeric literal (content irrelevant).
    Lit,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Tok::Punct(c)
    }
}

/// What an `// audit:` comment suppresses and where.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// Line the comment appears on.
    pub line: u32,
    /// True when the comment is alone on its line (attaches to the
    /// next code line, or to the enclosing function when that line is
    /// part of a `fn` signature).
    pub standalone: bool,
    /// Rule being suppressed.
    pub rule: RuleId,
    /// Whole-file scope (`allow-file`).
    pub file_scope: bool,
    /// Justification text after the rule name (may be empty — the
    /// annotation check then reports it).
    pub reason: String,
    /// Set when the comment looked like an audit annotation but could
    /// not be parsed (unknown rule, bad syntax). Carried so the
    /// annotation check can fail loudly instead of silently ignoring.
    pub malformed: Option<String>,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub annotations: Vec<Annotation>,
}

/// Tokenize `src`, collecting `// audit:` annotations on the side.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Line number of the most recent token, used to decide whether a
    // comment is standalone on its line.
    let mut last_tok_line: u32 = 0;

    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment. `///` and `//!` are doc comments and
                // never carry audit annotations.
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let is_doc = start < b.len() && (b[start] == b'/' || b[start] == b'!');
                if !is_doc {
                    let text = &src[start..j];
                    if let Some(ann) = parse_annotation(text, line, last_tok_line == line) {
                        out.annotations.push(ann);
                    }
                }
                i = j;
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, nested. Audit annotations are
                // line-comment-only by design; just skip.
                let mut depth = 1;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let (j, newlines) = skip_string(b, i);
                out.tokens.push(Token {
                    kind: Tok::Lit,
                    line,
                });
                last_tok_line = line;
                line += newlines;
                i = j;
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is `'` followed
                // by an identifier NOT terminated by another `'`.
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                let looks_like_lifetime = j > i + 1 && (j >= b.len() || b[j] != b'\'');
                if looks_like_lifetime {
                    out.tokens.push(Token {
                        kind: Tok::Lifetime,
                        line,
                    });
                    last_tok_line = line;
                    i = j;
                } else {
                    // Char literal: consume through the closing quote,
                    // honouring escapes.
                    let mut j = i + 1;
                    if j < b.len() && b[j] == b'\\' {
                        j += 2;
                        // \u{...}
                        while j < b.len() && b[j] != b'\'' {
                            j += 1;
                        }
                    } else {
                        // Possibly multi-byte UTF-8 char.
                        while j < b.len() && b[j] != b'\'' {
                            j += 1;
                        }
                    }
                    out.tokens.push(Token {
                        kind: Tok::Lit,
                        line,
                    });
                    last_tok_line = line;
                    i = (j + 1).min(b.len());
                }
            }
            'r' | 'b' if is_raw_or_byte_string(b, i) => {
                let (j, newlines) = skip_raw_or_byte(b, i);
                out.tokens.push(Token {
                    kind: Tok::Lit,
                    line,
                });
                last_tok_line = line;
                line += newlines;
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: Tok::Ident(src[i..j].to_string()),
                    line,
                });
                last_tok_line = line;
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len()
                    && (b[j].is_ascii_alphanumeric()
                        || b[j] == b'_'
                        || (b[j] == b'.' && j + 1 < b.len() && b[j + 1].is_ascii_digit()))
                {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: Tok::Lit,
                    line,
                });
                last_tok_line = line;
                i = j;
            }
            _ => {
                // Multi-byte UTF-8 punctuation (e.g. an em-dash in a
                // string would have been consumed above; in code it is
                // invalid Rust anyway) — advance by the full char.
                let ch_len = utf8_len(b[i]);
                out.tokens.push(Token {
                    kind: Tok::Punct(c),
                    line,
                });
                last_tok_line = line;
                i += ch_len;
            }
        }
    }
    out
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// `r"`, `r#"`, `br"`, `b"`, `b'` starting at `i`?
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
        return j < b.len() && b[j] == b'"';
    }
    // b"..." or b'...'
    b[i] == b'b' && j < b.len() && (b[j] == b'"' || b[j] == b'\'')
}

/// Skip a raw/byte string starting at `i`; returns (end index, newline
/// count consumed).
fn skip_raw_or_byte(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        j += 1; // opening quote
        let mut newlines = 0u32;
        while j < b.len() {
            if b[j] == b'\n' {
                newlines += 1;
            }
            if b[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < b.len() && b[k] == b'#' && seen < hashes {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return (k, newlines);
                }
            }
            j += 1;
        }
        (j, newlines)
    } else if b[j] == b'"' {
        let (end, newlines) = skip_string(b, j);
        (end, newlines)
    } else {
        // b'x'
        let mut k = j + 1;
        if k < b.len() && b[k] == b'\\' {
            k += 1;
        }
        while k < b.len() && b[k] != b'\'' {
            k += 1;
        }
        ((k + 1).min(b.len()), 0)
    }
}

/// Skip a normal `"..."` string starting at the quote; returns (end
/// index, newline count).
fn skip_string(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut newlines = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, newlines),
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, newlines)
}

/// Parse a line-comment body into an audit annotation, if it is one.
///
/// Recognised forms (the justification after the separator is
/// mandatory; the separator may be `—`, `-`, or `:`):
///
/// ```text
/// // audit: allow(panic) — reason
/// // audit: allow-file(panic) — reason
/// // audit: ordering — reason          (sugar for allow(atomic-ordering))
/// ```
fn parse_annotation(comment: &str, line: u32, has_code_before: bool) -> Option<Annotation> {
    let text = comment.trim();
    let rest = text.strip_prefix("audit:")?.trim();
    let standalone = !has_code_before;
    let malformed = |why: &str| {
        Some(Annotation {
            line,
            standalone,
            rule: RuleId::Annotation,
            file_scope: false,
            reason: String::new(),
            malformed: Some(why.to_string()),
        })
    };
    let (rule, file_scope, after) = if let Some(r) = rest.strip_prefix("allow-file(") {
        let Some(close) = r.find(')') else {
            return malformed("missing ')' in allow-file(...)");
        };
        match RuleId::from_name(r[..close].trim()) {
            Some(rule) => (rule, true, &r[close + 1..]),
            None => return malformed("unknown rule in allow-file(...)"),
        }
    } else if let Some(r) = rest.strip_prefix("allow(") {
        let Some(close) = r.find(')') else {
            return malformed("missing ')' in allow(...)");
        };
        match RuleId::from_name(r[..close].trim()) {
            Some(rule) => (rule, false, &r[close + 1..]),
            None => return malformed("unknown rule in allow(...)"),
        }
    } else if let Some(r) = rest.strip_prefix("ordering") {
        (RuleId::AtomicOrdering, false, r)
    } else {
        return malformed("expected allow(<rule>), allow-file(<rule>) or ordering");
    };
    let reason = after
        .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
        .trim()
        .to_string();
    Some(Annotation {
        line,
        standalone,
        rule,
        file_scope,
        reason,
        malformed: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // has .unwrap() in a comment
            /* block .expect( */
            let s = ".unwrap()"; // trailing
            let r = r#".expect("x")"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == Tok::Lifetime).count();
        let lits = toks.iter().filter(|t| t.kind == Tok::Lit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(lits, 1);
    }

    #[test]
    fn annotations_parse_with_reason_and_scope() {
        let src = "\
x.load(Ordering::Relaxed); // audit: ordering — monotone counter\n\
// audit: allow(panic) — poisoning is unreachable\n\
v.unwrap();\n\
// audit: allow(nonsense) — bad\n";
        let lexed = lex(src);
        assert_eq!(lexed.annotations.len(), 3);
        assert_eq!(lexed.annotations[0].rule, RuleId::AtomicOrdering);
        assert!(!lexed.annotations[0].standalone);
        assert_eq!(lexed.annotations[0].reason, "monotone counter");
        assert_eq!(lexed.annotations[1].rule, RuleId::Panic);
        assert!(lexed.annotations[1].standalone);
        assert!(lexed.annotations[2].malformed.is_some());
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\nline\nline\";\nfoo();";
        let toks = lex(src).tokens;
        let foo = toks.iter().find(|t| t.ident() == Some("foo")).unwrap();
        assert_eq!(foo.line, 4);
    }
}
