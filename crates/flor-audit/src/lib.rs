//! `flor-audit` — the workspace concurrency-invariant linter.
//!
//! The stack's concurrency contracts (checkpoints serialize on
//! `ckpt_serial` *before* the commit lock, trace publication is one
//! short mutex hold, relaxed atomics are deliberate, the serve loop
//! never panics a connection thread) used to live only in commit
//! messages. This crate checks them statically, on every CI run:
//!
//! * **lock-order** — every classified lock acquisition is checked
//!   against the hierarchy declared in `lockorder.toml`; acquiring a
//!   lock that the hierarchy places *outside* one already held fails,
//!   as does any cycle in the observed acquisition graph, as does a
//!   `.lock()`/`.read()`/`.write()` on a receiver the manifest does
//!   not classify (new locks must be declared).
//! * **hold-across-io** — file/network calls (`fsync`, `sync_all`,
//!   `write_all`, `File::create`, `fs::rename`, WAL wrappers, ...)
//!   while a guard is live violate the "short mutex hold" contract.
//! * **atomic-ordering** — `Ordering::Relaxed` and `Ordering::SeqCst`
//!   must carry an `// audit: ordering — <why>` justification.
//! * **panic** — `.unwrap()` / `.expect()` / `panic!` /
//!   `unreachable!` are banned outside tests/benches unless annotated
//!   `// audit: allow(panic) — <why it cannot fire>`.
//!
//! Rules are individually suppressible with a mandatory written
//! reason; reason-less or malformed annotations are themselves
//! violations, so the audit stays honest rather than noisy. See
//! `crates/flor-audit/README.md` for the annotation grammar and the
//! manifest format.

pub mod analysis;
pub mod lexer;
pub mod manifest;
pub mod rules;

pub use manifest::{Manifest, ManifestError};
pub use rules::{Diagnostic, RuleId};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Path globs excluded from the audit regardless of the manifest: test
/// and bench code may panic freely, vendored subsets are not ours, and
/// build output is not source.
const DEFAULT_SKIP: &[&str] = &[
    "**/tests/**",
    "**/benches/**",
    "**/examples/**",
    "vendor/**",
    "target/**",
    ".git/**",
];

/// Result of auditing a set of files.
#[derive(Debug, Default)]
pub struct AuditReport {
    pub diagnostics: Vec<Diagnostic>,
    pub files_audited: usize,
    pub functions_audited: usize,
    pub lock_sites: usize,
}

/// Audit in-memory sources (used by the fixture tests): each entry is
/// `(workspace-relative path, source text)`.
pub fn audit_sources(files: &[(String, String)], manifest: &Manifest) -> AuditReport {
    let mut analyzed = Vec::with_capacity(files.len());
    for (path, src) in files {
        analyzed.push(analysis::analyze(path, src, manifest));
    }
    let functions_audited = analyzed.iter().map(|f| f.audited_fns).sum();
    let lock_sites = analyzed.iter().map(|f| f.locks.len()).sum();
    AuditReport {
        diagnostics: rules::check(&analyzed, manifest),
        files_audited: files.len(),
        functions_audited,
        lock_sites,
    }
}

/// Audit every non-skipped `.rs` file under `root`.
pub fn audit_workspace(root: &Path, manifest: &Manifest) -> io::Result<AuditReport> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_path(root, &path);
            if skipped(&rel, manifest) {
                continue;
            }
            if entry.file_type()?.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push((rel, path));
            }
        }
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for (rel, path) in files {
        sources.push((rel, fs::read_to_string(&path)?));
    }
    Ok(audit_sources(&sources, manifest))
}

/// Load `lockorder.toml` from `root`.
pub fn load_manifest(root: &Path) -> Result<Manifest, ManifestError> {
    let path = root.join("lockorder.toml");
    let text = fs::read_to_string(&path)
        .map_err(|e| ManifestError(format!("cannot read {}: {e}", path.display())))?;
    Manifest::parse(&text)
}

/// Workspace-relative `/`-separated path for glob matching and
/// diagnostics.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn skipped(rel: &str, manifest: &Manifest) -> bool {
    // Directory prefixes match too: a glob `vendor/**` must prune the
    // `vendor` dir itself during the walk (match "vendor" against the
    // glob minus the trailing `/**` as well).
    let hit = |glob: &str| {
        manifest::glob_match(glob, rel)
            || glob
                .strip_suffix("/**")
                .is_some_and(|g| manifest::glob_match(g, rel))
            || glob
                .strip_prefix("**/")
                .and_then(|g| g.strip_suffix("/**"))
                .is_some_and(|mid| rel.split('/').any(|seg| manifest::glob_match(mid, seg)))
    };
    DEFAULT_SKIP.iter().any(|g| hit(g)) || manifest.skip.iter().any(|g| hit(g))
}
