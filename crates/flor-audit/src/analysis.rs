//! Token-level analysis: test-region skipping, function segmentation,
//! and the guard-liveness walk that produces the events the rules
//! consume (lock acquisitions with held-lock context, I/O calls under
//! a guard, atomic-ordering uses, panic sites).
//!
//! This is deliberately a *lint-grade* abstraction, not a compiler:
//! receivers are classified by their final field/binding name, guard
//! lifetimes follow `let` bindings, explicit `drop(..)` calls and
//! block scopes, and statement-level temporaries follow Rust's drop
//! rules closely enough for real code (`if`/`while` conditions drop
//! their temporaries at the `{`; `match`/`for`/`if let`/`while let`
//! scrutinee temporaries live to the end of the construct). Anything
//! the abstraction gets wrong is suppressible — with a written reason
//! — via `// audit:` annotations.

use crate::lexer::{lex, Annotation, Tok, Token};
use crate::manifest::Manifest;

/// Built-in I/O function names (method or free-call position) for the
/// hold-across-I/O rule. The manifest's `[io] fns` extends this list
/// with project-specific wrappers (e.g. WAL append/sync).
const IO_FNS: &[&str] = &[
    "fsync",
    "sync_all",
    "sync_data",
    "flush",
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "set_len",
    "persist",
];

/// Type names whose associated functions are I/O (`File::create`,
/// `fs::rename`, `TcpStream::connect`, ...).
const IO_TYPES: &[&str] = &[
    "fs",
    "File",
    "OpenOptions",
    "TcpStream",
    "TcpListener",
    "UdpSocket",
];

/// A function span in one file.
#[derive(Debug, Clone)]
pub struct FuncSpan {
    pub name: String,
    /// Line of the `fn` keyword.
    pub sig_line: u32,
    /// Line of the body's opening `{`.
    pub body_open_line: u32,
    /// Line of the body's closing `}`.
    pub body_close_line: u32,
    /// Token index range of the body (exclusive of the braces).
    pub body: (usize, usize),
}

/// A lock acquisition observed with other guards held.
#[derive(Debug, Clone)]
pub struct LockEvent {
    pub line: u32,
    /// Receiver identifier (or summary fn name) at the site.
    pub site: String,
    /// Manifest class, if classified.
    pub class: Option<String>,
    /// Classes (with their acquisition lines) held at this point.
    pub held: Vec<(String, u32)>,
    /// True when this came from a receiver-style `.lock()`/`.read()`/
    /// `.write()` (so an unclassified receiver is itself reportable).
    pub receiver_style: bool,
    /// Name of the enclosing function (for diagnostics).
    pub in_fn: String,
}

/// An I/O call observed while at least one guard was live.
#[derive(Debug, Clone)]
pub struct IoEvent {
    pub line: u32,
    pub call: String,
    pub held: Vec<(String, u32)>,
    /// Held guards that were never classified (still I/O-under-lock).
    pub unclassified_held: bool,
    pub in_fn: String,
}

/// `Ordering::Relaxed` / `Ordering::SeqCst` use.
#[derive(Debug, Clone)]
pub struct AtomicEvent {
    pub line: u32,
    pub which: String,
}

/// `.unwrap()` / `.expect(` / `panic!` / `unreachable!` site.
#[derive(Debug, Clone)]
pub struct PanicEvent {
    pub line: u32,
    pub call: String,
}

/// Everything the rules need to know about one file.
#[derive(Debug, Default)]
pub struct FileFacts {
    pub path: String,
    pub functions: Vec<FuncSpan>,
    pub annotations: Vec<Annotation>,
    pub locks: Vec<LockEvent>,
    pub io: Vec<IoEvent>,
    pub atomics: Vec<AtomicEvent>,
    pub panics: Vec<PanicEvent>,
    /// Lines audited (outside test regions) — for the summary stats.
    pub audited_fns: usize,
}

/// Analyze one source file into rule-ready facts.
pub fn analyze(path: &str, src: &str, manifest: &Manifest) -> FileFacts {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let skips = skip_regions(toks);
    let functions = segment_functions(toks, &skips);

    let mut facts = FileFacts {
        path: path.to_string(),
        annotations: lexed.annotations,
        audited_fns: functions.len(),
        ..FileFacts::default()
    };

    // Guard-liveness walk per function body.
    for f in &functions {
        walk_function(path, toks, f, manifest, &mut facts);
    }

    // Atomic-ordering and panic sites are collected over ALL
    // non-skipped tokens (they can appear outside fn bodies, e.g. in
    // const expressions), except that panic/atomic sites inside
    // function bodies were NOT collected by the guard walk — collect
    // both here in one linear scan to keep a single source of truth.
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(end) = skip_covering(&skips, i) {
            i = end;
            continue;
        }
        let t = &toks[i];
        if let Some(id) = t.ident() {
            match id {
                "Ordering"
                    if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                        && toks.get(i + 2).is_some_and(|t| t.is_punct(':')) =>
                {
                    if let Some(which) = toks.get(i + 3).and_then(Token::ident) {
                        if which == "Relaxed" || which == "SeqCst" {
                            facts.atomics.push(AtomicEvent {
                                line: toks[i + 3].line,
                                which: which.to_string(),
                            });
                        }
                    }
                }
                "panic" | "unreachable" if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) => {
                    facts.panics.push(PanicEvent {
                        line: t.line,
                        call: format!("{id}!"),
                    });
                }
                "unwrap" | "expect"
                    if i > 0
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
                {
                    facts.panics.push(PanicEvent {
                        line: t.line,
                        call: format!(".{id}()"),
                    });
                }
                _ => {}
            }
        }
        i += 1;
    }

    facts.functions = functions;
    facts
}

/// If token index `i` is inside a skip region, return the region's end
/// (exclusive token index).
fn skip_covering(skips: &[(usize, usize)], i: usize) -> Option<usize> {
    skips
        .iter()
        .find(|(s, e)| i >= *s && i < *e)
        .map(|(_, e)| *e)
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` /
/// `#[bench]` items (the item after the attribute, through its body).
fn skip_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_start = i;
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut is_test = false;
            let mut first_ident: Option<&str> = None;
            while j < toks.len() && depth > 0 {
                match &toks[j].kind {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(id) => {
                        if first_ident.is_none() {
                            first_ident = Some(id);
                        }
                        if id == "test" || id == "bench" {
                            is_test = true;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // Only `#[test]`, `#[bench]`, and `#[cfg(..test..)]`
            // qualify; `#[cfg(feature = "x")]` or a doc attr with the
            // word "test" in a string can't reach here (strings are
            // opaque Lit tokens).
            let saw_cfg_or_bare = matches!(first_ident, Some("cfg" | "test" | "bench"));
            if is_test && saw_cfg_or_bare {
                // Skip any further attributes, then the item itself.
                let mut k = j;
                while k < toks.len()
                    && toks[k].is_punct('#')
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut d = 0i32;
                    k += 1;
                    while k < toks.len() {
                        if toks[k].is_punct('[') {
                            d += 1;
                        } else if toks[k].is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                // Find the end of the item: first `;` at depth 0, or
                // the matching `}` of the first `{` at depth 0.
                let mut d = 0i32;
                while k < toks.len() {
                    match &toks[k].kind {
                        Tok::Punct('{') => {
                            d += 1;
                        }
                        Tok::Punct('}') => {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        Tok::Punct(';') if d == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                regions.push((attr_start, k));
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

/// Find every `fn` item outside skip regions and compute its body span.
fn segment_functions(toks: &[Token], skips: &[(usize, usize)]) -> Vec<FuncSpan> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(end) = skip_covering(skips, i) {
            i = end;
            continue;
        }
        if toks[i].ident() == Some("fn") {
            let sig_line = toks[i].line;
            let name = toks
                .get(i + 1)
                .and_then(Token::ident)
                .unwrap_or("?")
                .to_string();
            // Scan forward for the body `{` at bracket depth 0
            // (counting (), [], {} — generics/returns never contain a
            // bare `{` before the body in practice). A `;` first means
            // a bodyless trait/extern declaration.
            let mut j = i + 1;
            let mut paren = 0i32;
            let mut body_open = None;
            while j < toks.len() {
                match &toks[j].kind {
                    Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                    Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
                    Tok::Punct(';') if paren == 0 => break,
                    Tok::Punct('{') if paren == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body_open {
                // Matching close brace.
                let mut d = 0i32;
                let mut k = open;
                let mut close = toks.len().saturating_sub(1);
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        d += 1;
                    } else if toks[k].is_punct('}') {
                        d -= 1;
                        if d == 0 {
                            close = k;
                            break;
                        }
                    }
                    k += 1;
                }
                fns.push(FuncSpan {
                    name,
                    sig_line,
                    body_open_line: toks[open].line,
                    body_close_line: toks[close].line,
                    body: (open + 1, close),
                });
                // Continue scanning INSIDE the body too: nested fns
                // are segmented as their own spans, and the walk
                // excludes nested bodies itself.
                i = open + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    fns
}

/// One live guard.
#[derive(Debug, Clone)]
struct Guard {
    /// Binding name (empty for statement temporaries).
    name: String,
    class: Option<String>,
    line: u32,
    /// True when the lock call is the whole tail of a `let` init (so
    /// the guard binds to the let name and lives to scope end). False
    /// means a statement temporary: `let t = m.read().tables;` drops
    /// the guard at the `;`.
    binds: bool,
}

/// Statement context within the walk.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StmtKind {
    /// `let` statement: lock temporaries become scope-bound guards.
    Let,
    /// `match` / `for` / `if let` / `while let`: scrutinee temporaries
    /// live through the construct's block.
    MatchLike,
    /// Plain `if` / `while`: condition temporaries drop at the `{`.
    CondLike,
    Other,
}

/// Walk one function body tracking guard liveness; emit lock and I/O
/// events into `facts`.
fn walk_function(
    path: &str,
    toks: &[Token],
    f: &FuncSpan,
    manifest: &Manifest,
    facts: &mut FileFacts,
) {
    let (start, end) = f.body;
    // Scope stack: each entry is (guards bound to that scope, whether
    // the scope owns match-like temporaries).
    let mut scopes: Vec<Vec<Guard>> = vec![Vec::new()];
    // Temporaries of the current statement (pending let guards too).
    let mut pending: Vec<Guard> = Vec::new();
    let mut stmt = StmtKind::Other;
    let mut stmt_open = true; // at a statement boundary, kind not yet known
    let mut let_names: Vec<String> = Vec::new();
    let mut seen_eq = false; // inside a let, after the `=`?

    let io_match = |id: &str| IO_FNS.contains(&id) || manifest.io_fns.iter().any(|f| f == id);

    let mut i = start;
    while i < end {
        let t = &toks[i];
        match &t.kind {
            Tok::Ident(id) => {
                if stmt_open {
                    stmt = match id.as_str() {
                        "let" => StmtKind::Let,
                        "match" | "for" => StmtKind::MatchLike,
                        "if" | "while" => {
                            // `if let` / `while let` scrutinees live on.
                            if toks.get(i + 1).and_then(Token::ident) == Some("let") {
                                StmtKind::MatchLike
                            } else {
                                StmtKind::CondLike
                            }
                        }
                        _ => StmtKind::Other,
                    };
                    stmt_open = false;
                    let_names.clear();
                    seen_eq = false;
                }
                if id == "fn" {
                    // Nested fn definition: it is segmented and walked
                    // as its own span; our guards are not live inside
                    // it, so skip its signature and body here.
                    let mut j = i + 1;
                    let mut paren = 0i32;
                    while j < end {
                        match &toks[j].kind {
                            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
                            Tok::Punct(';') if paren == 0 => break,
                            Tok::Punct('{') if paren == 0 => {
                                let mut d = 0i32;
                                while j < end {
                                    if toks[j].is_punct('{') {
                                        d += 1;
                                    } else if toks[j].is_punct('}') {
                                        d -= 1;
                                        if d == 0 {
                                            break;
                                        }
                                    }
                                    j += 1;
                                }
                                break;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j + 1;
                    continue;
                }
                // `let` pattern bindings (before the `=`).
                if stmt == StmtKind::Let && !seen_eq && id != "let" && id != "mut" && id != "ref" {
                    let_names.push(id.clone());
                }
                // drop(name): release that guard wherever it is bound.
                if id == "drop"
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
                {
                    if let Some(victim) = toks.get(i + 2).and_then(Token::ident) {
                        for sc in scopes.iter_mut().rev() {
                            if let Some(pos) = sc.iter().position(|g| g.name == victim) {
                                sc.remove(pos);
                                break;
                            }
                        }
                        i += 4;
                        continue;
                    }
                }
                // Receiver-style lock acquisition: `recv.lock()` /
                // `.read()` / `.write()` with EMPTY parens.
                let is_lockish = matches!(id.as_str(), "lock" | "read" | "write")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
                if is_lockish {
                    let recv = (i >= 2)
                        .then(|| toks[i - 2].ident())
                        .flatten()
                        .unwrap_or("?")
                        .to_string();
                    let class = manifest.classify(path, &recv).map(str::to_string);
                    record_lock(
                        facts,
                        &scopes,
                        &pending,
                        LockEvent {
                            line: t.line,
                            site: recv.clone(),
                            class: class.clone(),
                            held: Vec::new(),
                            receiver_style: true,
                            in_fn: f.name.clone(),
                        },
                    );
                    pending.push(Guard {
                        name: String::new(),
                        class,
                        line: t.line,
                        binds: stmt == StmtKind::Let
                            && seen_eq
                            && is_binding_tail(toks, i + 3, end),
                    });
                    i += 3;
                    continue;
                }
                // Summary call: `name(...)` known to acquire a class.
                if toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(i.wrapping_sub(1)).map(|t| t.ident()) != Some(Some("fn"))
                {
                    if let Some(s) = manifest.summary_for(path, id) {
                        let class = Some(s.class.clone());
                        record_lock(
                            facts,
                            &scopes,
                            &pending,
                            LockEvent {
                                line: t.line,
                                site: format!("{id}()"),
                                class: class.clone(),
                                held: Vec::new(),
                                receiver_style: false,
                                in_fn: f.name.clone(),
                            },
                        );
                        if s.returns_guard {
                            let after = skip_balanced(toks, i + 1, end);
                            pending.push(Guard {
                                name: String::new(),
                                class,
                                line: t.line,
                                binds: stmt == StmtKind::Let
                                    && seen_eq
                                    && is_binding_tail(toks, after, end),
                            });
                        }
                    }
                    // I/O call check (method or associated/free call).
                    if io_match(id) {
                        record_io(facts, &scopes, &pending, t.line, id, &f.name);
                    }
                    // `Type::io_fn(` pattern: `File::create(...)` etc.
                    if i >= 3
                        && toks[i - 1].is_punct(':')
                        && toks[i - 2].is_punct(':')
                        && toks
                            .get(i - 3)
                            .and_then(Token::ident)
                            .is_some_and(|ty| IO_TYPES.contains(&ty))
                    {
                        record_io(facts, &scopes, &pending, t.line, id, &f.name);
                    }
                }
            }
            Tok::Punct('=') if stmt == StmtKind::Let => {
                seen_eq = true;
            }
            Tok::Punct(';') => {
                end_statement(&mut scopes, &mut pending, stmt, &let_names, false);
                stmt = StmtKind::Other;
                stmt_open = true;
                let_names.clear();
                seen_eq = false;
            }
            Tok::Punct('{') => {
                // A block opens: condition temporaries drop here;
                // match-like temporaries transfer into the new scope.
                let transfer = end_statement(&mut scopes, &mut pending, stmt, &let_names, true);
                scopes.push(transfer);
                stmt = StmtKind::Other;
                stmt_open = true;
                let_names.clear();
                seen_eq = false;
            }
            Tok::Punct('}') => {
                // Scope closes: its guards (and any stray temporaries)
                // die.
                pending.clear();
                scopes.pop();
                if scopes.is_empty() {
                    scopes.push(Vec::new());
                }
                stmt = StmtKind::Other;
                stmt_open = true;
                let_names.clear();
                seen_eq = false;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Return the token index just past the `)` matching the `(` at
/// `open` (which must be a `(`), clamped to `end`.
fn skip_balanced(toks: &[Token], open: usize, end: usize) -> usize {
    let mut d = 0i32;
    let mut k = open;
    while k < end {
        if toks[k].is_punct('(') {
            d += 1;
        } else if toks[k].is_punct(')') {
            d -= 1;
            if d == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    end
}

/// After a lock call ending at token index `k`, decide whether the
/// call is the whole tail of the enclosing `let` init: chains of
/// guard-preserving adapters (`.unwrap()`, `.expect(..)`,
/// `.unwrap_or_else(..)`, `.map_err(..)`) and a trailing `?` are
/// allowed; anything else (`.field`, `,`, an enclosing call's `)`)
/// means the guard is a statement temporary.
fn is_binding_tail(toks: &[Token], mut k: usize, end: usize) -> bool {
    const CHAIN: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err"];
    loop {
        if k >= end {
            return false;
        }
        if toks[k].is_punct('?') {
            k += 1;
            continue;
        }
        if toks[k].is_punct(';') {
            return true;
        }
        if toks[k].is_punct('.')
            && toks
                .get(k + 1)
                .and_then(Token::ident)
                .is_some_and(|id| CHAIN.contains(&id))
            && toks.get(k + 2).is_some_and(|t| t.is_punct('('))
        {
            k = skip_balanced(toks, k + 2, end);
            continue;
        }
        return false;
    }
}

/// Close the current statement. Returns guards that must transfer into
/// a newly-opened block (match-like temporaries).
fn end_statement(
    scopes: &mut [Vec<Guard>],
    pending: &mut Vec<Guard>,
    stmt: StmtKind,
    let_names: &[String],
    opening_block: bool,
) -> Vec<Guard> {
    if pending.is_empty() {
        return Vec::new();
    }
    let drained: Vec<Guard> = std::mem::take(pending);
    match stmt {
        StmtKind::Let if !opening_block => {
            // `let g = x.lock();` — a guard that is the whole init
            // tail binds to the enclosing scope under the first
            // pattern name; lock temporaries buried inside a larger
            // init expression (`let t = m.read().tables.clone();`)
            // die at the `;` like any statement temporary.
            let name = let_names.first().cloned().unwrap_or_default();
            if name != "_" {
                if let Some(top) = scopes.last_mut() {
                    for mut g in drained {
                        if g.binds {
                            g.name = name.clone();
                            top.push(g);
                        }
                    }
                }
            }
            Vec::new()
        }
        StmtKind::Let => {
            // `let x = match m.lock() { .. }` style: the guard
            // temporary lives through the block being opened.
            drained
        }
        StmtKind::MatchLike if opening_block => drained,
        _ => Vec::new(),
    }
}

/// Emit a lock event with the currently-held guard context.
fn record_lock(facts: &mut FileFacts, scopes: &[Vec<Guard>], pending: &[Guard], mut ev: LockEvent) {
    ev.held = live_classes(scopes, pending);
    facts.locks.push(ev);
}

fn record_io(
    facts: &mut FileFacts,
    scopes: &[Vec<Guard>],
    pending: &[Guard],
    line: u32,
    call: &str,
    in_fn: &str,
) {
    let held = live_classes(scopes, pending);
    let unclassified_held = scopes
        .iter()
        .flatten()
        .chain(pending.iter())
        .any(|g| g.class.is_none());
    if held.is_empty() && !unclassified_held {
        return;
    }
    facts.io.push(IoEvent {
        line,
        call: call.to_string(),
        held,
        unclassified_held,
        in_fn: in_fn.to_string(),
    });
}

fn live_classes(scopes: &[Vec<Guard>], pending: &[Guard]) -> Vec<(String, u32)> {
    scopes
        .iter()
        .flatten()
        .chain(pending.iter())
        .filter_map(|g| g.class.clone().map(|c| (c, g.line)))
        .collect()
}
