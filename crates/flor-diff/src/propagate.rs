//! Cross-version logging-statement propagation.
//!
//! The paper (§2): "Developers can add the desired logging statements to
//! the latest version of their code, and FlorDB will (a) inject these
//! statements into the correct locations in all prior versions of the
//! code". This module is (a): given an old and a new program version, find
//! `flor.log` statements that exist only in the new version and splice them
//! into the matched location of the old version.
//!
//! Anchoring rule: a new statement's insertion point in the old version is
//! determined by (i) its enclosing block's matched old block and (ii) the
//! nearest preceding sibling that is matched — the new statement goes right
//! after that sibling's old counterpart (or at the block head if no
//! preceding sibling matches).

use crate::gumtree::{match_trees, Mapping};
use crate::tree::{is_log_stmt, program_to_tree, NodeKind, Tree};
use flor_script::ast::{Program, Stmt, StmtPath};

/// One successfully propagated statement.
#[derive(Debug, Clone)]
pub struct Injected {
    /// The logged value's name (`flor.log(name, ...)`).
    pub log_name: String,
    /// Where it was inserted in the old program.
    pub old_path: StmtPath,
    /// Pretty-printed statement text.
    pub source: String,
}

/// One statement that could not be propagated.
#[derive(Debug, Clone)]
pub struct Skipped {
    /// The logged value's name.
    pub log_name: String,
    /// Why anchoring failed.
    pub reason: String,
}

/// Result of propagating new log statements into an old version.
#[derive(Debug, Clone)]
pub struct Propagation {
    /// The old program with statements injected.
    pub patched: Program,
    /// Statements that were injected.
    pub injected: Vec<Injected>,
    /// Statements that could not be anchored.
    pub skipped: Vec<Skipped>,
    /// Matched node pairs (diff quality diagnostics).
    pub matched_nodes: usize,
    /// Total nodes in the new version's tree.
    pub new_nodes: usize,
}

/// Propagate new `flor.log` statements from `new` into `old`.
///
/// Only statements satisfying [`is_log_stmt`] are propagated — exactly the
/// hindsight-logging use case. Statements already present in `old`
/// (matched by the differ) are left alone.
pub fn propagate_logs(old: &Program, new: &Program) -> Propagation {
    let src = program_to_tree(old); // old = source side of the mapping
    let dst = program_to_tree(new);
    let mapping = match_trees(&src, &dst);

    // Collect candidate insertions: (old block prefix, anchor index within
    // old block (+1 after), order key, statement).
    struct Pending {
        old_block_prefix: StmtPath,
        insert_index: usize,
        order: usize,
        stmt: Stmt,
        log_name: String,
    }
    let mut pending: Vec<Pending> = Vec::new();
    let mut skipped = Vec::new();
    let mut order = 0usize;

    // Which unmatched statements to carry over: every new `flor.log`, plus
    // its *backward slice* — unmatched `let`/assign statements in the same
    // block whose bindings the injected logs (transitively) reference.
    // Hindsight statements may compute new intermediates (`let m =
    // eval_model(...)`) that the old version never computed; without the
    // slice, the injected log would reference an undefined variable.
    let to_propagate = dependency_closure(new, &src, &dst, &mapping);

    for (d_idx, d_node) in dst.nodes.iter().enumerate() {
        let NodeKind::Stmt(_) = &d_node.kind else {
            continue;
        };
        if !to_propagate.contains(&d_idx) {
            continue;
        }
        let stmt = stmt_at(new, d_node);
        let log_name = is_log_stmt(stmt)
            .map(str::to_string)
            .unwrap_or_else(|| stmt.label());
        // Locate the enclosing new block and resolve it to an old block.
        // audit: allow(panic) — tree construction gives every Stmt node a
        // Block parent; a parentless stmt is a corrupted Tree, not input.
        let parent_block = d_node.parent.expect("stmt nodes always have a parent");
        let old_block_prefix = match resolve_old_block(&src, &dst, parent_block, &mapping) {
            Ok(prefix) => prefix,
            Err(reason) => {
                skipped.push(Skipped { log_name, reason });
                continue;
            }
        };
        // Anchor after the nearest preceding matched sibling.
        let siblings = &dst.nodes[parent_block].children;
        let my_pos = siblings
            .iter()
            .position(|&c| c == d_idx)
            // audit: allow(panic) — d_idx was reached by walking
            // parent_block's child list, so it is present in it.
            .expect("child of own parent");
        let mut insert_index = 0usize;
        for &sib in siblings[..my_pos].iter().rev() {
            if let Some(&old_sib) = mapping.dst_to_src.get(&sib) {
                // The old sibling must live in the resolved block.
                if let NodeKind::Stmt(old_path) = &src.nodes[old_sib].kind {
                    if old_path.len() == old_block_prefix.len() + 1
                        && old_path[..old_block_prefix.len()] == old_block_prefix[..]
                    {
                        // audit: allow(panic) — Stmt paths are built with at
                        // least one hop; the len check above proves it here.
                        insert_index = old_path.last().expect("non-empty path").1 + 1;
                        break;
                    }
                }
            }
        }
        pending.push(Pending {
            old_block_prefix,
            insert_index,
            order,
            stmt: stmt.clone(),
            log_name,
        });
        order += 1;
    }

    // Apply insertions: group by block, ascending index, preserving
    // new-program order among equal anchors; offset accounts for earlier
    // insertions into the same block.
    pending.sort_by(|a, b| {
        a.old_block_prefix
            .cmp(&b.old_block_prefix)
            .then(a.insert_index.cmp(&b.insert_index))
            .then(a.order.cmp(&b.order))
    });
    let mut patched = old.clone();
    let mut injected = Vec::new();
    let mut last_block: Option<StmtPath> = None;
    let mut offset = 0usize;
    for p in pending {
        if last_block.as_ref() != Some(&p.old_block_prefix) {
            last_block = Some(p.old_block_prefix.clone());
            offset = 0;
        }
        let mut path = p.old_block_prefix.clone();
        path.push((0, p.insert_index + offset));
        let single = Program {
            stmts: vec![p.stmt.clone()],
        };
        let source = flor_script::to_source(&single).trim_end().to_string();
        if patched.insert_at(&path, p.stmt) {
            injected.push(Injected {
                log_name: p.log_name,
                old_path: path,
                source,
            });
            offset += 1;
        } else {
            skipped.push(Skipped {
                log_name: p.log_name,
                reason: "insertion path invalid after patching".to_string(),
            });
        }
    }
    patched.assign_ids();
    Propagation {
        patched,
        injected,
        skipped,
        matched_nodes: mapping.len(),
        new_nodes: dst.len(),
    }
}

/// Free identifiers referenced by a statement's own expressions.
fn free_idents(s: &Stmt) -> std::collections::HashSet<String> {
    fn walk(e: &flor_script::ast::Expr, out: &mut std::collections::HashSet<String>) {
        if let flor_script::ast::Expr::Ident(_, name) = e {
            out.insert(name.clone());
        }
        for c in e.children() {
            walk(c, out);
        }
    }
    let mut out = std::collections::HashSet::new();
    for e in s.exprs() {
        walk(e, &mut out);
    }
    out
}

/// The name a statement binds, if any.
fn bound_name(s: &Stmt) -> Option<&str> {
    match s {
        Stmt::Let { name, .. } | Stmt::Assign { name, .. } => Some(name),
        _ => None,
    }
}

/// Context signature of a node: the labels of its enclosing statements,
/// innermost first. A matched statement only *covers* its counterpart when
/// the signatures agree — otherwise the statement lives under different
/// control flow (e.g. moved out of an `if` guard) and the new version logs
/// in contexts the old one does not.
fn ctx_sig(tree: &Tree, mut n: usize) -> Vec<String> {
    let mut sig = Vec::new();
    while let Some(p) = tree.nodes[n].parent {
        if matches!(tree.nodes[p].kind, NodeKind::Stmt(_)) {
            sig.push(tree.nodes[p].label.clone());
        }
        n = p;
    }
    sig
}

/// Whether dst statement `d_idx` is already present in the old version *in
/// an equivalent context*.
fn covered(src: &Tree, dst: &Tree, d_idx: usize, mapping: &Mapping) -> bool {
    match mapping.dst_to_src.get(&d_idx) {
        Some(&s_idx) => ctx_sig(src, s_idx) == ctx_sig(dst, d_idx),
        None => false,
    }
}

/// Compute the set of dst statement nodes to propagate: uncovered log
/// statements plus the uncovered definition statements they depend on,
/// per block, to a fixpoint.
fn dependency_closure(
    new: &Program,
    src: &Tree,
    dst: &Tree,
    mapping: &Mapping,
) -> std::collections::HashSet<usize> {
    use std::collections::HashSet;
    let mut included: HashSet<usize> = HashSet::new();
    // Group statements by parent block.
    let mut blocks: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for (d_idx, d_node) in dst.nodes.iter().enumerate() {
        if !matches!(d_node.kind, NodeKind::Stmt(_)) {
            continue;
        }
        // audit: allow(panic) — same Tree invariant: Stmt nodes always
        // hang off a Block parent.
        let parent = d_node.parent.expect("stmt has parent");
        blocks.entry(parent).or_default().push(d_idx);
    }
    for siblings in blocks.values() {
        // Seed: uncovered bare log statements.
        let mut in_block: HashSet<usize> = siblings
            .iter()
            .copied()
            .filter(|&i| {
                !covered(src, dst, i, mapping) && is_log_stmt(stmt_at(new, &dst.nodes[i])).is_some()
            })
            .collect();
        // Fixpoint: pull in uncovered definitions the included set uses.
        loop {
            let mut needed: HashSet<String> = HashSet::new();
            for &i in &in_block {
                needed.extend(free_idents(stmt_at(new, &dst.nodes[i])));
            }
            let mut grew = false;
            for &i in siblings {
                if in_block.contains(&i) || covered(src, dst, i, mapping) {
                    continue;
                }
                let stmt = stmt_at(new, &dst.nodes[i]);
                if let Some(name) = bound_name(stmt) {
                    if needed.contains(name) {
                        in_block.insert(i);
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        included.extend(in_block);
    }
    included
}

/// Fetch the statement a tree node points to.
fn stmt_at<'p>(p: &'p Program, node: &crate::tree::TreeNode) -> &'p Stmt {
    let NodeKind::Stmt(path) = &node.kind else {
        // audit: allow(panic) — internal precondition: every caller
        // filters to Stmt nodes first; reaching here is a logic bug.
        panic!("stmt_at on non-stmt node");
    };
    let mut block = &p.stmts;
    for (hop, &(sel, idx)) in path.iter().enumerate() {
        let s = &block[idx];
        if hop == path.len() - 1 {
            return s;
        }
        block = s.blocks()[sel];
    }
    // audit: allow(panic) — the loop returns on the last hop and Stmt
    // paths are non-empty by construction, so fallthrough is impossible.
    unreachable!("paths are non-empty")
}

/// Resolve a dst block node to the corresponding old block prefix.
fn resolve_old_block(
    src: &Tree,
    dst: &Tree,
    dst_block: usize,
    mapping: &Mapping,
) -> Result<StmtPath, String> {
    let NodeKind::Block(dst_prefix) = &dst.nodes[dst_block].kind else {
        return Err("parent is not a block".to_string());
    };
    // Top-level block maps to top-level block.
    if dst_prefix.is_empty() {
        return Ok(vec![]);
    }
    // The block's owning statement must be matched.
    let owner = dst.nodes[dst_block]
        .parent
        .ok_or_else(|| "block without owner".to_string())?;
    let Some(&old_owner) = mapping.dst_to_src.get(&owner) else {
        return Err(format!(
            "enclosing {} has no counterpart in the old version",
            dst.nodes[owner].label
        ));
    };
    let NodeKind::Stmt(old_owner_path) = &src.nodes[old_owner].kind else {
        return Err("owner matched to a non-statement".to_string());
    };
    // Same block selector on the old side.
    // audit: allow(panic) — resolve_old_block is only called with a
    // prefix derived from a Stmt path, which has at least one element.
    let sel = dst_prefix.last().expect("non-empty prefix").0;
    let (_, owner_idx) = *old_owner_path.last().expect("non-empty path"); // audit: allow(panic) — Stmt paths are non-empty
    let mut old_prefix = old_owner_path[..old_owner_path.len() - 1].to_vec();
    old_prefix.push((sel, owner_idx));
    Ok(old_prefix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_script::{parse, to_source};

    fn prop(old: &str, new: &str) -> Propagation {
        propagate_logs(&parse(old).unwrap(), &parse(new).unwrap())
    }

    #[test]
    fn top_level_insert_after_anchor() {
        let old = "let a = 1;\nlet b = 2;";
        let new = "let a = 1;\nflor.log(\"a\", a);\nlet b = 2;";
        let out = prop(old, new);
        assert_eq!(out.injected.len(), 1);
        assert!(out.skipped.is_empty());
        let expected = parse(new).unwrap();
        assert_eq!(out.patched, expected);
    }

    #[test]
    fn insert_into_loop_body() {
        let old = "for e in flor.loop(\"epoch\", range(0, 5)) {\n  let l = train_step(net, data, 0.1);\n}";
        let new = "for e in flor.loop(\"epoch\", range(0, 5)) {\n  let l = train_step(net, data, 0.1);\n  flor.log(\"loss\", l);\n}";
        let out = prop(old, new);
        assert_eq!(out.injected.len(), 1);
        assert_eq!(to_source(&out.patched), to_source(&parse(new).unwrap()));
    }

    #[test]
    fn propagation_into_divergent_old_version() {
        // Old version has a different learning rate and an extra statement —
        // the log still lands after the train_step let.
        let old = "let lr = 0.5;\nfor e in flor.loop(\"epoch\", range(0, 3)) {\n  let l = train_step(net, data, lr);\n  let extra = 1;\n}";
        let new = "let lr = 0.01;\nfor e in flor.loop(\"epoch\", range(0, 3)) {\n  let l = train_step(net, data, lr);\n  flor.log(\"loss\", l);\n}";
        let out = prop(old, new);
        assert_eq!(out.injected.len(), 1);
        let printed = to_source(&out.patched);
        // The log goes after `let l = ...` and before `let extra = 1;`.
        let pos_log = printed.find("flor.log(\"loss\"").unwrap();
        let pos_let = printed.find("let l = train_step").unwrap();
        let pos_extra = printed.find("let extra").unwrap();
        assert!(pos_let < pos_log && pos_log < pos_extra, "{printed}");
        // Old lr untouched.
        assert!(printed.contains("let lr = 0.5;"));
    }

    #[test]
    fn multiple_statements_keep_order() {
        let old = "let a = 1;";
        let new = "let a = 1;\nflor.log(\"x\", a);\nflor.log(\"y\", a + 1);";
        let out = prop(old, new);
        assert_eq!(out.injected.len(), 2);
        let printed = to_source(&out.patched);
        let px = printed.find("flor.log(\"x\"").unwrap();
        let py = printed.find("flor.log(\"y\"").unwrap();
        assert!(px < py);
    }

    #[test]
    fn existing_logs_not_duplicated() {
        let src = "let a = 1;\nflor.log(\"a\", a);";
        let out = prop(src, src);
        assert!(out.injected.is_empty());
        assert_eq!(to_source(&out.patched), to_source(&parse(src).unwrap()));
    }

    #[test]
    fn unanchorable_statement_skipped() {
        // The whole loop is new; its inner log can't anchor in the old
        // version (its enclosing loop has no counterpart).
        let old = "let a = 1;";
        let new = "let a = 1;\nfor e in flor.loop(\"fresh\", range(0, 2)) {\n  flor.log(\"inner\", e);\n}";
        let out = prop(old, new);
        assert!(out.injected.is_empty());
        assert_eq!(out.skipped.len(), 1);
        assert!(out.skipped[0].reason.contains("no counterpart"));
    }

    #[test]
    fn non_log_statements_not_propagated() {
        let old = "let a = 1;";
        let new = "let a = 1;\nlet b = 2;\nflor.commit();";
        let out = prop(old, new);
        assert!(out.injected.is_empty());
        assert_eq!(to_source(&out.patched), to_source(&parse(old).unwrap()));
    }

    #[test]
    fn insert_at_block_head_when_no_prior_anchor() {
        // New log is the first statement of the loop body.
        let old = "for e in flor.loop(\"ep\", range(0, 2)) {\n  let x = e;\n}";
        let new =
            "for e in flor.loop(\"ep\", range(0, 2)) {\n  flor.log(\"e\", e);\n  let x = e;\n}";
        let out = prop(old, new);
        assert_eq!(out.injected.len(), 1);
        assert_eq!(to_source(&out.patched), to_source(&parse(new).unwrap()));
    }

    #[test]
    fn propagation_is_idempotent() {
        let old = "let a = 1;\nlet b = 2;";
        let new = "let a = 1;\nflor.log(\"a\", a);\nlet b = 2;";
        let once = prop(old, new);
        let twice = propagate_logs(&once.patched, &parse(new).unwrap());
        assert!(twice.injected.is_empty(), "{:?}", twice.injected);
        assert_eq!(to_source(&twice.patched), to_source(&once.patched));
    }

    #[test]
    fn nested_if_inside_loop() {
        let old = "for e in flor.loop(\"ep\", range(0, 4)) {\n  if e % 2 == 0 {\n    let even = e;\n  }\n}";
        let new = "for e in flor.loop(\"ep\", range(0, 4)) {\n  if e % 2 == 0 {\n    let even = e;\n    flor.log(\"even\", even);\n  }\n}";
        let out = prop(old, new);
        assert_eq!(out.injected.len(), 1);
        assert_eq!(to_source(&out.patched), to_source(&parse(new).unwrap()));
    }

    #[test]
    fn reports_diff_stats() {
        let out = prop("let a = 1;", "let a = 1;\nflor.log(\"a\", a);");
        assert!(out.matched_nodes > 0);
        assert!(out.new_nodes > out.matched_nodes);
    }
}
