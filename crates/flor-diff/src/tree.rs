//! Generic labelled-tree view of florscript programs.
//!
//! Tree differencing works on a flattened representation: every statement,
//! expression and statement-block becomes a node with a structural label,
//! subtree hash and size. Statement nodes remember their [`StmtPath`] so
//! edits map back onto the AST.

use flor_script::ast::{Expr, Program, Stmt, StmtPath};

/// What an abstract node stands for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// Synthetic root holding the program's top-level block.
    Root,
    /// A statement; carries its path in the program.
    Stmt(StmtPath),
    /// A statement block: `(descent hops to the block)`. The root block has
    /// an empty prefix.
    Block(StmtPath),
    /// An expression (owned by the nearest enclosing statement).
    Expr,
}

/// One node of the flattened tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Structural label (`let:x`, `flor:log`, `block`, ...).
    pub label: String,
    /// Child node indexes, in order.
    pub children: Vec<usize>,
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Hash of the whole subtree (label + child hashes, order-sensitive).
    pub hash: u64,
    /// Subtree size (number of nodes including self).
    pub size: usize,
    /// Kind / AST back-pointer.
    pub kind: NodeKind,
}

/// A flattened labelled tree. Node 0 is the synthetic root.
#[derive(Debug, Clone, Default)]
pub struct Tree {
    /// All nodes; index = node id.
    pub nodes: Vec<TreeNode>,
}

impl Tree {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff only the root exists (or nothing).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Indexes of all descendants of `n` (excluding `n`), pre-order.
    pub fn descendants(&self, n: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack: Vec<usize> = self.nodes[n].children.iter().rev().copied().collect();
        while let Some(i) = stack.pop() {
            out.push(i);
            stack.extend(self.nodes[i].children.iter().rev());
        }
        out
    }

    /// The nearest ancestor (including self) that is a statement node.
    pub fn enclosing_stmt(&self, mut n: usize) -> Option<usize> {
        loop {
            if matches!(self.nodes[n].kind, NodeKind::Stmt(_)) {
                return Some(n);
            }
            n = self.nodes[n].parent?;
        }
    }
}

fn fnv(label: &str, child_hashes: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    for ch in child_hashes {
        for b in ch.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Flatten a program into a [`Tree`].
pub fn program_to_tree(p: &Program) -> Tree {
    let mut tree = Tree {
        nodes: vec![TreeNode {
            label: "root".to_string(),
            children: vec![],
            parent: None,
            hash: 0,
            size: 1,
            kind: NodeKind::Root,
        }],
    };
    // The root block (top-level statements) with empty descent prefix.
    let root_block = push_node(&mut tree, 0, "block".to_string(), NodeKind::Block(vec![]));
    let mut prefix: StmtPath = Vec::new();
    for (idx, s) in p.stmts.iter().enumerate() {
        add_stmt(&mut tree, root_block, s, &mut prefix, idx);
    }
    finalize_hashes(&mut tree, 0);
    tree
}

fn push_node(tree: &mut Tree, parent: usize, label: String, kind: NodeKind) -> usize {
    let id = tree.nodes.len();
    tree.nodes.push(TreeNode {
        label,
        children: vec![],
        parent: Some(parent),
        hash: 0,
        size: 1,
        kind,
    });
    tree.nodes[parent].children.push(id);
    id
}

fn add_expr(tree: &mut Tree, parent: usize, e: &Expr) {
    let id = push_node(tree, parent, e.label(), NodeKind::Expr);
    for c in e.children() {
        add_expr(tree, id, c);
    }
}

fn add_stmt(tree: &mut Tree, parent_block: usize, s: &Stmt, prefix: &mut StmtPath, idx: usize) {
    prefix.push((0, idx));
    let path = prefix.clone();
    prefix.pop();
    let id = push_node(tree, parent_block, s.label(), NodeKind::Stmt(path));
    for e in s.exprs() {
        add_expr(tree, id, e);
    }
    for (sel, block) in s.blocks().iter().enumerate() {
        prefix.push((sel, idx));
        let block_id = push_node(
            tree,
            id,
            "block".to_string(),
            NodeKind::Block(prefix.clone()),
        );
        for (cidx, cs) in block.iter().enumerate() {
            add_stmt(tree, block_id, cs, prefix, cidx);
        }
        prefix.pop();
    }
}

fn finalize_hashes(tree: &mut Tree, n: usize) {
    let children = tree.nodes[n].children.clone();
    let mut size = 1usize;
    let mut child_hashes = Vec::with_capacity(children.len());
    for c in children {
        finalize_hashes(tree, c);
        size += tree.nodes[c].size;
        child_hashes.push(tree.nodes[c].hash);
    }
    tree.nodes[n].hash = fnv(&tree.nodes[n].label, &child_hashes);
    tree.nodes[n].size = size;
}

/// True iff the statement is a `flor.log(...)` expression statement — the
/// statements hindsight propagation injects into prior versions.
pub fn is_log_stmt(s: &Stmt) -> Option<&str> {
    if let Stmt::ExprStmt {
        expr: Expr::FlorCall { func, args, .. },
        ..
    } = s
    {
        if func == "log" {
            if let Some(Expr::Str(_, name)) = args.first() {
                return Some(name);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_script::parse;

    #[test]
    fn tree_shape() {
        let p = parse("let x = 1;\nflor.log(\"x\", x);").unwrap();
        let t = program_to_tree(&p);
        // root, block, let, int, exprstmt, florcall, str, ident
        assert_eq!(t.len(), 8);
        assert_eq!(t.nodes[0].size, 8);
        assert_eq!(t.nodes[0].children, vec![1]);
    }

    #[test]
    fn identical_programs_hash_equal() {
        let a = program_to_tree(&parse("let x = 1 + 2;").unwrap());
        let b = program_to_tree(&parse("let x = 1 + 2;").unwrap());
        assert_eq!(a.nodes[0].hash, b.nodes[0].hash);
    }

    #[test]
    fn different_programs_hash_differ() {
        let a = program_to_tree(&parse("let x = 1;").unwrap());
        let b = program_to_tree(&parse("let x = 2;").unwrap());
        assert_ne!(a.nodes[0].hash, b.nodes[0].hash);
        let c = program_to_tree(&parse("let y = 1;").unwrap());
        assert_ne!(a.nodes[0].hash, c.nodes[0].hash);
    }

    #[test]
    fn child_order_matters() {
        let a = program_to_tree(&parse("let x = 1;\nlet y = 2;").unwrap());
        let b = program_to_tree(&parse("let y = 2;\nlet x = 1;").unwrap());
        assert_ne!(a.nodes[0].hash, b.nodes[0].hash);
    }

    #[test]
    fn stmt_paths_recorded() {
        let p = parse("for e in flor.loop(\"ep\", range(0, 2)) {\n  let a = 1;\n}").unwrap();
        let t = program_to_tree(&p);
        let let_node = t
            .nodes
            .iter()
            .find(|n| n.label == "let:a")
            .expect("let:a present");
        match &let_node.kind {
            NodeKind::Stmt(path) => assert_eq!(path, &vec![(0, 0), (0, 0)]),
            other => panic!("expected stmt, got {other:?}"),
        }
    }

    #[test]
    fn descendants_preorder() {
        let p = parse("let x = 1 + 2;").unwrap();
        let t = program_to_tree(&p);
        let desc = t.descendants(0);
        assert_eq!(desc.len(), t.len() - 1);
        // First descendant is the root block, then the let stmt.
        assert_eq!(t.nodes[desc[0]].label, "block");
        assert_eq!(t.nodes[desc[1]].label, "let:x");
    }

    #[test]
    fn enclosing_stmt_walks_up() {
        let p = parse("let x = 1 + 2;").unwrap();
        let t = program_to_tree(&p);
        // The deepest node (an int literal) belongs to the let statement.
        let leaf = t.len() - 1;
        let stmt = t.enclosing_stmt(leaf).unwrap();
        assert_eq!(t.nodes[stmt].label, "let:x");
        // Root has no enclosing statement.
        assert_eq!(t.enclosing_stmt(0), None);
    }

    #[test]
    fn is_log_stmt_detects() {
        let p =
            parse("flor.log(\"loss\", 1);\nflor.commit();\nlet a = flor.log(\"x\", 2);").unwrap();
        assert_eq!(is_log_stmt(&p.stmts[0]), Some("loss"));
        assert_eq!(is_log_stmt(&p.stmts[1]), None);
        // A log in a let-binding is not a bare log statement.
        assert_eq!(is_log_stmt(&p.stmts[2]), None);
    }
}
