//! # flor-diff — AST differencing & hindsight statement propagation
//!
//! Implements the code-diffing half of FlorDB's multiversion hindsight
//! logging (CIDR 2025, §2): injecting newly-written `flor.log` statements
//! "into the correct locations in all prior versions of the code", using
//! "techniques adapted from code diffing \[6\]" (GumTree, Falleri et al.).
//!
//! * [`tree`] — flattens florscript ASTs into labelled trees with subtree
//!   hashes and AST back-pointers;
//! * [`gumtree`] — two-phase matching: exact top-down subtree matching,
//!   then dice-similarity bottom-up container matching;
//! * [`propagate`] — anchors unmatched new `flor.log` statements by
//!   (matched enclosing block, nearest matched predecessor sibling) and
//!   splices them into the old version's AST.
//!
//! ```
//! use flor_script::parse;
//! use flor_diff::propagate_logs;
//! let old = parse("let loss = train();").unwrap();
//! let new = parse("let loss = train();\nflor.log(\"loss\", loss);").unwrap();
//! let out = propagate_logs(&old, &new);
//! assert_eq!(out.injected.len(), 1);
//! assert!(flor_script::to_source(&out.patched).contains("flor.log"));
//! ```

#![warn(missing_docs)]

pub mod gumtree;
pub mod propagate;
pub mod tree;

pub use gumtree::{match_trees, Mapping};
pub use propagate::{propagate_logs, Injected, Propagation, Skipped};
pub use tree::{is_log_stmt, program_to_tree, NodeKind, Tree, TreeNode};
