//! GumTree-style tree matching (Falleri et al. \[6\], simplified).
//!
//! Two phases, as in the paper's cited technique:
//! 1. **Top-down**: greedily match subtrees with identical structure
//!    hashes, largest first — unchanged code regions map in O(n log n).
//! 2. **Bottom-up**: for still-unmatched inner nodes, match pairs with the
//!    same label whose matched-descendant dice coefficient exceeds a
//!    threshold — containers survive edits to their contents.

use crate::tree::Tree;
use std::collections::HashMap;

/// A (partial) bijection between nodes of a source and destination tree.
#[derive(Debug, Clone, Default)]
pub struct Mapping {
    /// src node → dst node.
    pub src_to_dst: HashMap<usize, usize>,
    /// dst node → src node.
    pub dst_to_src: HashMap<usize, usize>,
}

impl Mapping {
    /// Record a match.
    pub fn link(&mut self, src: usize, dst: usize) {
        self.src_to_dst.insert(src, dst);
        self.dst_to_src.insert(dst, src);
    }

    /// Whether both endpoints are unmatched.
    pub fn both_free(&self, src: usize, dst: usize) -> bool {
        !self.src_to_dst.contains_key(&src) && !self.dst_to_src.contains_key(&dst)
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.src_to_dst.len()
    }

    /// True iff no pairs are matched.
    pub fn is_empty(&self) -> bool {
        self.src_to_dst.is_empty()
    }
}

/// Minimum dice similarity for a bottom-up container match.
const DICE_THRESHOLD: f64 = 0.3;

/// Compute a mapping between `src` and `dst`.
pub fn match_trees(src: &Tree, dst: &Tree) -> Mapping {
    let mut mapping = Mapping::default();
    top_down(src, dst, &mut mapping);
    bottom_up(src, dst, &mut mapping);
    mapping
}

/// Link `s` and all its descendants to `d`'s (isomorphic subtrees).
fn link_subtrees(src: &Tree, dst: &Tree, s: usize, d: usize, mapping: &mut Mapping) {
    mapping.link(s, d);
    let sd = src.nodes[s].children.clone();
    let dd = dst.nodes[d].children.clone();
    debug_assert_eq!(sd.len(), dd.len());
    for (cs, cd) in sd.into_iter().zip(dd) {
        link_subtrees(src, dst, cs, cd, mapping);
    }
}

fn top_down(src: &Tree, dst: &Tree, mapping: &mut Mapping) {
    // Index dst subtrees by hash.
    let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, n) in dst.nodes.iter().enumerate() {
        by_hash.entry(n.hash).or_default().push(i);
    }
    // Visit src nodes largest-first so whole unchanged regions match before
    // their fragments.
    let mut order: Vec<usize> = (0..src.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(src.nodes[i].size));
    for s in order {
        if mapping.src_to_dst.contains_key(&s) {
            continue;
        }
        let Some(cands) = by_hash.get(&src.nodes[s].hash) else {
            continue;
        };
        // Prefer a candidate whose parent is already matched to s's parent
        // (keeps matches positionally coherent); otherwise first free one.
        let parent_match = src.nodes[s]
            .parent
            .and_then(|p| mapping.src_to_dst.get(&p).copied());
        let pick = cands
            .iter()
            .copied()
            .filter(|&d| mapping.both_free(s, d))
            .max_by_key(|&d| {
                let coherent = match (parent_match, dst.nodes[d].parent) {
                    (Some(pm), Some(dp)) => pm == dp,
                    _ => false,
                };
                coherent as u8
            });
        if let Some(d) = pick {
            if src.nodes[s].hash == dst.nodes[d].hash {
                link_subtrees(src, dst, s, d, mapping);
            }
        }
    }
}

fn dice(src: &Tree, dst: &Tree, s: usize, d: usize, mapping: &Mapping) -> f64 {
    let sd = src.descendants(s);
    let dd = dst.descendants(d);
    if sd.is_empty() && dd.is_empty() {
        return if src.nodes[s].label == dst.nodes[d].label {
            1.0
        } else {
            0.0
        };
    }
    let common = sd
        .iter()
        .filter(|&&c| {
            mapping
                .src_to_dst
                .get(&c)
                .map(|m| dd.binary_search_sorted(m))
                .unwrap_or(false)
        })
        .count();
    2.0 * common as f64 / (sd.len() + dd.len()) as f64
}

trait SortedContains {
    fn binary_search_sorted(&self, x: &usize) -> bool;
}

impl SortedContains for Vec<usize> {
    fn binary_search_sorted(&self, x: &usize) -> bool {
        // Descendant lists are pre-order, which is ascending for our
        // construction (children are allocated after parents).
        self.binary_search(x).is_ok()
    }
}

fn bottom_up(src: &Tree, dst: &Tree, mapping: &mut Mapping) {
    // Post-order over src: children first.
    let mut order: Vec<usize> = (0..src.len()).collect();
    order.sort_by_key(|&i| src.nodes[i].size); // leaves first
    for s in order {
        if mapping.src_to_dst.contains_key(&s) || src.nodes[s].children.is_empty() {
            continue;
        }
        // Candidate dst nodes: parents of dst matches of s's matched
        // descendants, with the same label.
        let mut cand_counts: HashMap<usize, usize> = HashMap::new();
        for c in src.descendants(s) {
            if let Some(&dc) = mapping.src_to_dst.get(&c) {
                let mut p = dst.nodes[dc].parent;
                while let Some(pp) = p {
                    if dst.nodes[pp].label == src.nodes[s].label
                        && !mapping.dst_to_src.contains_key(&pp)
                    {
                        *cand_counts.entry(pp).or_default() += 1;
                        break;
                    }
                    p = dst.nodes[pp].parent;
                }
            }
        }
        let best = cand_counts
            .keys()
            .copied()
            .map(|d| (d, dice(src, dst, s, d, mapping)))
            .filter(|&(_, score)| score >= DICE_THRESHOLD)
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
        if let Some((d, _)) = best {
            mapping.link(s, d);
        }
    }
    // Root always maps to root.
    if mapping.both_free(0, 0) {
        mapping.link(0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::program_to_tree;
    use flor_script::parse;

    fn mapping_for(old: &str, new: &str) -> (Tree, Tree, Mapping) {
        let src = program_to_tree(&parse(old).unwrap());
        let dst = program_to_tree(&parse(new).unwrap());
        let m = match_trees(&src, &dst);
        (src, dst, m)
    }

    fn find(t: &Tree, label: &str) -> usize {
        t.nodes
            .iter()
            .position(|n| n.label == label)
            .unwrap_or_else(|| panic!("no node labelled {label}"))
    }

    #[test]
    fn identical_trees_fully_match() {
        let src = "let x = 1;\nfor e in flor.loop(\"ep\", range(0, 3)) { flor.log(\"x\", x); }";
        let (s, _, m) = mapping_for(src, src);
        assert_eq!(m.len(), s.len());
    }

    #[test]
    fn insertion_leaves_rest_matched() {
        let old = "let a = 1;\nlet b = 2;\nlet c = 3;";
        let new = "let a = 1;\nlet b = 2;\nflor.log(\"b\", b);\nlet c = 3;";
        let (s, d, m) = mapping_for(old, new);
        // All old statements matched.
        for label in ["let:a", "let:b", "let:c"] {
            let sn = find(&s, label);
            let dn = find(&d, label);
            assert_eq!(m.src_to_dst.get(&sn), Some(&dn), "{label}");
        }
        // The new log statement is unmatched in dst.
        let log_expr = find(&d, "flor:log");
        let log_stmt = d.enclosing_stmt(log_expr).unwrap();
        assert!(!m.dst_to_src.contains_key(&log_stmt));
    }

    #[test]
    fn edited_loop_body_still_matches_loop() {
        let old = "for e in flor.loop(\"epoch\", range(0, 5)) {\n  let l = train_step(net, data, 0.1);\n}";
        let new = "for e in flor.loop(\"epoch\", range(0, 5)) {\n  let l = train_step(net, data, 0.01);\n  flor.log(\"loss\", l);\n}";
        let (s, d, m) = mapping_for(old, new);
        let s_loop = find(&s, "florloop:epoch:e");
        let d_loop = find(&d, "florloop:epoch:e");
        assert_eq!(m.src_to_dst.get(&s_loop), Some(&d_loop));
        // The train_step let matches despite the changed literal (bottom-up).
        let s_let = find(&s, "let:l");
        let d_let = find(&d, "let:l");
        assert_eq!(m.src_to_dst.get(&s_let), Some(&d_let));
    }

    #[test]
    fn renamed_variable_unmatched_but_siblings_ok() {
        let old = "let a = 1;\nlet b = compute(a);\nlet c = 3;";
        let new = "let a = 1;\nlet renamed = compute(a);\nlet c = 3;";
        let (s, d, m) = mapping_for(old, new);
        assert_eq!(
            m.src_to_dst.get(&find(&s, "let:a")),
            Some(&find(&d, "let:a"))
        );
        assert_eq!(
            m.src_to_dst.get(&find(&s, "let:c")),
            Some(&find(&d, "let:c"))
        );
        // let:b and let:renamed have different labels → unmatched statements.
        assert!(!m.src_to_dst.contains_key(&find(&s, "let:b")));
    }

    #[test]
    fn moved_block_matches_by_hash() {
        let old = "let setup = 1;\nfor x in range(0, 9) {\n  let body = x * 2;\n  flor.log(\"body\", body);\n}";
        let new = "for x in range(0, 9) {\n  let body = x * 2;\n  flor.log(\"body\", body);\n}\nlet setup = 1;";
        let (s, d, m) = mapping_for(old, new);
        let s_for = find(&s, "for:x");
        let d_for = find(&d, "for:x");
        assert_eq!(m.src_to_dst.get(&s_for), Some(&d_for));
        assert_eq!(
            m.src_to_dst.get(&find(&s, "let:setup")),
            Some(&find(&d, "let:setup"))
        );
    }

    #[test]
    fn mapping_is_bijective() {
        let old = "let a = 1;\nlet a2 = 1;\nfor i in range(0, 3) { let x = i; }";
        let new = "let a = 1;\nfor i in range(0, 3) { let x = i; }\nlet extra = 5;";
        let (_, _, m) = mapping_for(old, new);
        // No dst node claimed twice.
        let mut seen = std::collections::HashSet::new();
        for (&s, &d) in &m.src_to_dst {
            assert!(seen.insert(d), "dst {d} matched twice");
            assert_eq!(m.dst_to_src[&d], s);
        }
    }

    #[test]
    fn empty_programs() {
        let (s, _, m) = mapping_for("", "");
        assert!(!m.is_empty()); // root-to-root at minimum
        assert_eq!(s.len(), 2); // root + empty block
    }
}
