//! # flor-ml — the training substrate for the FlorDB reproduction
//!
//! The FlorDB paper's demo (CIDR 2025, §4) trains a page classifier with
//! PyTorch inside `flor.loop`s, checkpoints it via `flor.checkpointing`,
//! and logs `loss` / `acc` / `recall` (Fig. 5). This crate supplies an
//! equivalent — but fully deterministic and dependency-free — trainer:
//!
//! * [`Matrix`]: dense kernels with *bit-exact* text serialization, so a
//!   restored checkpoint resumes to bit-identical results (the invariant
//!   hindsight replay relies on);
//! * [`Mlp`]: softmax regression / one-hidden-layer MLP with mini-batch
//!   SGD and cross-entropy;
//! * [`data`]: seeded generators for Gaussian blobs and the first-page
//!   document classification task (plus label poisoning for the paper's
//!   post-hoc governance scenario);
//! * [`metrics`]: accuracy / recall / precision / F1 over confusion
//!   matrices.

#![warn(missing_docs)]

pub mod data;
pub mod matrix;
pub mod metrics;
pub mod model;

pub use data::{first_page_dataset, gaussian_blobs, poison_labels, PageFeatures};
pub use matrix::Matrix;
pub use metrics::{acc_recall, Confusion};
pub use model::{cross_entropy, Dataset, Mlp};
