//! SGD-trained classifiers: softmax regression and a one-hidden-layer MLP.
//!
//! These stand in for the paper's PyTorch `net` (Fig. 5). What matters for
//! the reproduction: training is *iterative* (epochs × steps), *stateful*
//! (parameters + optimizer state form the checkpoint), and *deterministic*
//! given a seed — so hindsight replay from a checkpoint provably produces
//! bit-identical metrics to the original run.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A supervised dataset: features and integer class labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `n × d` feature matrix.
    pub x: Matrix,
    /// Class label per row.
    pub y: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// A contiguous mini-batch `[start, end)` (clamped).
    pub fn batch(&self, start: usize, end: usize) -> Dataset {
        let end = end.min(self.len());
        let rows: Vec<Vec<f64>> = (start..end).map(|r| self.x.row(r).to_vec()).collect();
        Dataset {
            x: Matrix::from_rows(rows),
            y: self.y[start..end].to_vec(),
            n_classes: self.n_classes,
        }
    }
}

/// A multi-layer perceptron with one hidden ReLU layer and a softmax
/// output, trained by mini-batch SGD with cross-entropy loss.
///
/// `hidden = 0` degenerates to plain softmax (logistic) regression — the
/// baseline model in ablation benches.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    /// Input dimensionality.
    pub d_in: usize,
    /// Hidden width (0 = linear model).
    pub hidden: usize,
    /// Output classes.
    pub d_out: usize,
    /// First-layer weights (`d_in × hidden`, or `d_in × d_out` if linear).
    pub w1: Matrix,
    /// First-layer bias.
    pub b1: Vec<f64>,
    /// Second-layer weights (`hidden × d_out`; empty 0×0 if linear).
    pub w2: Matrix,
    /// Second-layer bias (empty if linear).
    pub b2: Vec<f64>,
    /// SGD steps taken (optimizer state; part of the checkpoint).
    pub steps: u64,
}

impl Mlp {
    /// Initialise with Xavier weights from `seed`.
    pub fn new(d_in: usize, hidden: usize, d_out: usize, seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        if hidden == 0 {
            Mlp {
                d_in,
                hidden,
                d_out,
                w1: Matrix::xavier(d_in, d_out, &mut rng),
                b1: vec![0.0; d_out],
                w2: Matrix::zeros(0, 0),
                b2: vec![],
                steps: 0,
            }
        } else {
            Mlp {
                d_in,
                hidden,
                d_out,
                w1: Matrix::xavier(d_in, hidden, &mut rng),
                b1: vec![0.0; hidden],
                w2: Matrix::xavier(hidden, d_out, &mut rng),
                b2: vec![0.0; d_out],
                steps: 0,
            }
        }
    }

    /// Forward pass returning class probabilities (`n × d_out`).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        if self.hidden == 0 {
            x.matmul(&self.w1).add_row_vec(&self.b1).softmax_rows()
        } else {
            let h = x.matmul(&self.w1).add_row_vec(&self.b1).map(|v| v.max(0.0));
            h.matmul(&self.w2).add_row_vec(&self.b2).softmax_rows()
        }
    }

    /// One SGD step on a mini-batch; returns the batch's mean
    /// cross-entropy loss *before* the update.
    pub fn train_step(&mut self, batch: &Dataset, lr: f64) -> f64 {
        let n = batch.len();
        if n == 0 {
            return 0.0;
        }
        let nf = n as f64;
        if self.hidden == 0 {
            let probs = self.forward(&batch.x);
            let loss = cross_entropy(&probs, &batch.y);
            // dL/dlogits = probs - onehot(y)
            let mut dlogits = probs;
            for (r, &label) in batch.y.iter().enumerate() {
                let v = dlogits.get(r, label);
                dlogits.set(r, label, v - 1.0);
            }
            let dlogits = dlogits.map(|v| v / nf);
            let dw = batch.x.transpose().matmul(&dlogits);
            let db = dlogits.col_sums();
            self.w1.axpy(-lr, &dw);
            for (b, g) in self.b1.iter_mut().zip(&db) {
                *b -= lr * g;
            }
            self.steps += 1;
            loss
        } else {
            // Forward, keeping intermediates.
            let z1 = batch.x.matmul(&self.w1).add_row_vec(&self.b1);
            let h = z1.map(|v| v.max(0.0));
            let probs = h.matmul(&self.w2).add_row_vec(&self.b2).softmax_rows();
            let loss = cross_entropy(&probs, &batch.y);
            let mut dlogits = probs;
            for (r, &label) in batch.y.iter().enumerate() {
                let v = dlogits.get(r, label);
                dlogits.set(r, label, v - 1.0);
            }
            let dlogits = dlogits.map(|v| v / nf);
            let dw2 = h.transpose().matmul(&dlogits);
            let db2 = dlogits.col_sums();
            let dh = dlogits.matmul(&self.w2.transpose());
            let dz1 = dh.zip(&z1, |g, z| if z > 0.0 { g } else { 0.0 });
            let dw1 = batch.x.transpose().matmul(&dz1);
            let db1 = dz1.col_sums();
            self.w1.axpy(-lr, &dw1);
            self.w2.axpy(-lr, &dw2);
            for (b, g) in self.b1.iter_mut().zip(&db1) {
                *b -= lr * g;
            }
            for (b, g) in self.b2.iter_mut().zip(&db2) {
                *b -= lr * g;
            }
            self.steps += 1;
            loss
        }
    }

    /// Predicted class per row.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let probs = self.forward(x);
        (0..probs.rows)
            .map(|r| {
                probs
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Bit-exact text checkpoint of the full training state.
    pub fn to_text(&self) -> String {
        let b1 = Matrix {
            rows: 1,
            cols: self.b1.len(),
            data: self.b1.clone(),
        };
        let b2 = Matrix {
            rows: 1,
            cols: self.b2.len(),
            data: self.b2.clone(),
        };
        format!(
            "mlp {} {} {} {}\nW1 {}\nB1 {}\nW2 {}\nB2 {}",
            self.d_in,
            self.hidden,
            self.d_out,
            self.steps,
            self.w1.to_text(),
            b1.to_text(),
            self.w2.to_text(),
            b2.to_text(),
        )
    }

    /// Restore from [`Mlp::to_text`].
    pub fn from_text(text: &str) -> Result<Mlp, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty checkpoint")?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 5 || parts[0] != "mlp" {
            return Err(format!("bad header {header:?}"));
        }
        let d_in = parts[1].parse().map_err(|e| format!("d_in: {e}"))?;
        let hidden = parts[2].parse().map_err(|e| format!("hidden: {e}"))?;
        let d_out = parts[3].parse().map_err(|e| format!("d_out: {e}"))?;
        let steps = parts[4].parse().map_err(|e| format!("steps: {e}"))?;
        let mut read_mat = |tag: &str| -> Result<Matrix, String> {
            let line = lines.next().ok_or_else(|| format!("missing {tag}"))?;
            let rest = line
                .strip_prefix(tag)
                .ok_or_else(|| format!("expected {tag} line"))?;
            Matrix::from_text(rest.trim())
        };
        let w1 = read_mat("W1")?;
        let b1 = read_mat("B1")?.data;
        let w2 = read_mat("W2")?;
        let b2 = read_mat("B2")?.data;
        Ok(Mlp {
            d_in,
            hidden,
            d_out,
            w1,
            b1,
            w2,
            b2,
            steps,
        })
    }
}

/// Mean cross-entropy of `probs` (`n × k`) against labels.
pub fn cross_entropy(probs: &Matrix, labels: &[usize]) -> f64 {
    let n = labels.len().max(1) as f64;
    labels
        .iter()
        .enumerate()
        .map(|(r, &y)| -(probs.get(r, y).max(1e-12)).ln())
        .sum::<f64>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::gaussian_blobs;

    #[test]
    fn linear_model_learns_blobs() {
        // Seed chosen for well-separated blobs under the vendored RNG.
        let ds = gaussian_blobs(200, 2, 3, 6.0, 9);
        let mut m = Mlp::new(2, 0, 3, 1);
        for _ in 0..200 {
            m.train_step(&ds, 0.5);
        }
        let preds = m.predict(&ds.x);
        let acc = preds.iter().zip(&ds.y).filter(|(p, y)| p == y).count() as f64 / ds.len() as f64;
        assert!(acc > 0.9, "acc={acc}");
    }

    #[test]
    fn mlp_learns_xor() {
        // XOR is not linearly separable; the hidden layer must earn its keep.
        let x = Matrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let ds = Dataset {
            x,
            y: vec![0, 1, 1, 0],
            n_classes: 2,
        };
        let mut m = Mlp::new(2, 16, 2, 3);
        for _ in 0..3000 {
            m.train_step(&ds, 0.5);
        }
        assert_eq!(m.predict(&ds.x), vec![0, 1, 1, 0]);
    }

    #[test]
    fn loss_decreases() {
        let ds = gaussian_blobs(100, 3, 2, 3.0, 5);
        let mut m = Mlp::new(3, 8, 2, 9);
        let first = m.train_step(&ds, 0.1);
        let mut last = first;
        for _ in 0..100 {
            last = m.train_step(&ds, 0.1);
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn checkpoint_round_trip_bit_exact() {
        let ds = gaussian_blobs(50, 4, 2, 2.0, 7);
        let mut m = Mlp::new(4, 6, 2, 2);
        for _ in 0..10 {
            m.train_step(&ds, 0.1);
        }
        let restored = Mlp::from_text(&m.to_text()).unwrap();
        assert_eq!(restored, m);
    }

    #[test]
    fn replay_from_checkpoint_is_deterministic() {
        // Train 20 steps straight vs. checkpoint at 10 then resume: final
        // state must be bit-identical — the invariant hindsight replay
        // depends on.
        let ds = gaussian_blobs(80, 3, 3, 3.0, 13);
        let mut full = Mlp::new(3, 5, 3, 21);
        let mut half = full.clone();
        for _ in 0..20 {
            full.train_step(&ds, 0.2);
        }
        for _ in 0..10 {
            half.train_step(&ds, 0.2);
        }
        let mut resumed = Mlp::from_text(&half.to_text()).unwrap();
        for _ in 0..10 {
            resumed.train_step(&ds, 0.2);
        }
        assert_eq!(resumed, full);
        assert_eq!(resumed.steps, 20);
    }

    #[test]
    fn seeded_init_reproducible() {
        assert_eq!(Mlp::new(4, 8, 2, 42), Mlp::new(4, 8, 2, 42));
        assert_ne!(Mlp::new(4, 8, 2, 42).w1, Mlp::new(4, 8, 2, 43).w1);
    }

    #[test]
    fn batch_slicing() {
        let ds = gaussian_blobs(10, 2, 2, 1.0, 1);
        let b = ds.batch(4, 8);
        assert_eq!(b.len(), 4);
        assert_eq!(b.x.row(0), ds.x.row(4));
        let tail = ds.batch(8, 100);
        assert_eq!(tail.len(), 2);
    }

    #[test]
    fn from_text_rejects_malformed() {
        assert!(Mlp::from_text("").is_err());
        assert!(Mlp::from_text("mlp 1 2").is_err());
        assert!(Mlp::from_text("mlp 1 2 3 0\nW1 bogus").is_err());
    }
}
