//! Synthetic dataset generators.
//!
//! Substitution note (see DESIGN.md): the paper's demo trains on features
//! extracted from real PDFs. We generate a synthetic corpus with the same
//! *shape* — documents of pages, each page carrying text-derived features
//! and a `first_page` label — so the training/inference/feedback loops
//! exercise identical code paths deterministically.

use crate::matrix::Matrix;
use crate::model::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Isotropic Gaussian blobs: `k` classes, `d` dims, centers `spread` apart.
pub fn gaussian_blobs(n: usize, d: usize, k: usize, spread: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..d).map(|_| rng.gen_range(-spread..spread)).collect())
        .collect();
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        let row: Vec<f64> = centers[c].iter().map(|&m| m + gauss(&mut rng)).collect();
        rows.push(row);
        y.push(c);
    }
    Dataset {
        x: Matrix::from_rows(rows),
        y,
        n_classes: k,
    }
}

/// Box–Muller standard normal.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Page-level features for the document-intelligence task (paper Fig. 3/5):
/// the classifier predicts whether a page is the *first page* of a
/// document, from features a featurization stage would extract.
#[derive(Debug, Clone, PartialEq)]
pub struct PageFeatures {
    /// Fraction of lines that look like headings.
    pub heading_density: f64,
    /// Whether a page number was detected.
    pub has_page_number: bool,
    /// Normalised text length.
    pub text_len: f64,
    /// Fraction of lines in title case.
    pub title_case_ratio: f64,
    /// OCR confidence proxy (1.0 for born-digital TXT).
    pub ocr_confidence: f64,
}

impl PageFeatures {
    /// Feature vector (fixed order, length 5).
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.heading_density,
            self.has_page_number as u8 as f64,
            self.text_len,
            self.title_case_ratio,
            self.ocr_confidence,
        ]
    }

    /// Dimensionality of [`PageFeatures::to_vec`].
    pub const DIM: usize = 5;
}

/// Generate plausible features for a page, conditioned on whether it is a
/// document's first page. First pages have more headings, more title case,
/// less body text.
pub fn synth_page_features(is_first: bool, source_is_ocr: bool, rng: &mut StdRng) -> PageFeatures {
    let noise = |rng: &mut StdRng| gauss(rng) * 0.08;
    if is_first {
        PageFeatures {
            heading_density: (0.55 + noise(rng)).clamp(0.0, 1.0),
            has_page_number: rng.gen_bool(0.3),
            text_len: (0.35 + noise(rng)).clamp(0.0, 1.0),
            title_case_ratio: (0.6 + noise(rng)).clamp(0.0, 1.0),
            ocr_confidence: if source_is_ocr {
                (0.75 + noise(rng)).clamp(0.0, 1.0)
            } else {
                1.0
            },
        }
    } else {
        PageFeatures {
            heading_density: (0.12 + noise(rng)).clamp(0.0, 1.0),
            has_page_number: rng.gen_bool(0.85),
            text_len: (0.8 + noise(rng)).clamp(0.0, 1.0),
            title_case_ratio: (0.18 + noise(rng)).clamp(0.0, 1.0),
            ocr_confidence: if source_is_ocr {
                (0.75 + noise(rng)).clamp(0.0, 1.0)
            } else {
                1.0
            },
        }
    }
}

/// Build a labeled first-page classification dataset of `n` pages.
pub fn first_page_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let is_first = rng.gen_bool(0.25);
        let is_ocr = rng.gen_bool(0.4);
        rows.push(synth_page_features(is_first, is_ocr, &mut rng).to_vec());
        y.push(is_first as usize);
    }
    Dataset {
        x: Matrix::from_rows(rows),
        y,
        n_classes: 2,
    }
}

/// Inject label poisoning: flip the labels of the first `frac` of rows —
/// used by the paper's "post-hoc governance" scenario (§4: "detecting a
/// poisoned dataset").
pub fn poison_labels(ds: &mut Dataset, frac: f64) -> usize {
    let n = ((ds.len() as f64) * frac) as usize;
    for label in ds.y.iter_mut().take(n) {
        *label = (*label + 1) % ds.n_classes;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shape_and_determinism() {
        let a = gaussian_blobs(30, 4, 3, 2.0, 9);
        assert_eq!(a.len(), 30);
        assert_eq!(a.x.cols, 4);
        assert_eq!(a.n_classes, 3);
        let b = gaussian_blobs(30, 4, 3, 2.0, 9);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn blobs_balanced_classes() {
        let ds = gaussian_blobs(30, 2, 3, 2.0, 1);
        for c in 0..3 {
            assert_eq!(ds.y.iter().filter(|&&y| y == c).count(), 10);
        }
    }

    #[test]
    fn first_page_dataset_is_learnable_shape() {
        let ds = first_page_dataset(200, 3);
        assert_eq!(ds.x.cols, PageFeatures::DIM);
        let firsts = ds.y.iter().filter(|&&y| y == 1).count();
        assert!(firsts > 20 && firsts < 120, "firsts={firsts}");
        // First pages should have higher mean heading density.
        let mean = |label: usize, col: usize| {
            let rows: Vec<usize> = (0..ds.len()).filter(|&i| ds.y[i] == label).collect();
            rows.iter().map(|&i| ds.x.get(i, col)).sum::<f64>() / rows.len() as f64
        };
        assert!(mean(1, 0) > mean(0, 0) + 0.2);
    }

    #[test]
    fn features_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let f = synth_page_features(true, true, &mut rng);
            for v in f.to_vec() {
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn poisoning_flips_expected_count() {
        let mut ds = first_page_dataset(100, 7);
        let orig = ds.y.clone();
        let flipped = poison_labels(&mut ds, 0.2);
        assert_eq!(flipped, 20);
        let actually: usize = orig.iter().zip(&ds.y).filter(|(a, b)| a != b).count();
        assert_eq!(actually, 20);
    }
}
