//! Dense row-major f64 matrices with the handful of kernels SGD training
//! needs. Deliberately simple: the reproduction's experiments measure
//! record/replay behaviour *around* training, so the trainer must be real
//! and deterministic but need not be fast beyond "epochs take measurable,
//! controllable time".

use rand::Rng;
use std::fmt;

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` long.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from nested vectors (rows of equal length).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Xavier-uniform random init in `[-s, s]`, `s = sqrt(6/(in+out))`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        let s = (6.0 / (rows + cols) as f64).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-s..s))
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise binary zip.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Add a row vector (bias) to every row.
    pub fn add_row_vec(&self, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), self.cols);
        Matrix::from_fn(self.rows, self.cols, |r, c| self.get(r, c) + bias[c])
    }

    /// Column-wise sums (length `cols`).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (acc, v) in out.iter_mut().zip(self.row(r)) {
                *acc += v;
            }
        }
        out
    }

    /// In-place AXPY: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Row-wise softmax (numerically stabilised).
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Serialize to a compact exact text form (`rows cols hex-bit words`).
    /// Bit-exact round trip — checkpoint/restore must not perturb training.
    pub fn to_text(&self) -> String {
        let mut s = format!("{} {}", self.rows, self.cols);
        for v in &self.data {
            s.push(' ');
            s.push_str(&format!("{:016x}", v.to_bits()));
        }
        s
    }

    /// Parse the form produced by [`Matrix::to_text`].
    pub fn from_text(text: &str) -> Result<Matrix, String> {
        let mut it = text.split_whitespace();
        let rows: usize = it
            .next()
            .ok_or("missing rows")?
            .parse()
            .map_err(|e| format!("rows: {e}"))?;
        let cols: usize = it
            .next()
            .ok_or("missing cols")?
            .parse()
            .map_err(|e| format!("cols: {e}"))?;
        let mut data = Vec::with_capacity(rows * cols);
        for tok in it {
            let bits = u64::from_str_radix(tok, 16).map_err(|e| format!("word: {e}"))?;
            data.push(f64::from_bits(bits));
        }
        if data.len() != rows * cols {
            return Err(format!(
                "expected {} words, got {}",
                rows * cols,
                data.len()
            ));
        }
        Ok(Matrix { rows, cols, data })
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            let cells: Vec<String> = self.row(r).iter().map(|v| format!("{v:8.4}")).collect();
            writeln!(f, "  [{}]", cells.join(", "))?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![1000.0, 1000.0, 1000.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        // Stability: huge logits don't produce NaN.
        assert!(s.data.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn text_round_trip_bit_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::xavier(4, 3, &mut rng);
        let back = Matrix::from_text(&m.to_text()).unwrap();
        assert_eq!(m, back);
        for (a, b) in m.data.iter().zip(&back.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn from_text_rejects_malformed() {
        assert!(Matrix::from_text("").is_err());
        assert!(Matrix::from_text("2 2 0000000000000000").is_err()); // too few
        assert!(Matrix::from_text("1 1 zzzz").is_err());
    }

    #[test]
    fn axpy_and_colsums() {
        let mut a = Matrix::from_rows(vec![vec![1.0, 2.0]]);
        let g = Matrix::from_rows(vec![vec![10.0, 20.0]]);
        a.axpy(-0.1, &g);
        assert_eq!(a.data, vec![0.0, 0.0]);
        let b = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(b.col_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn xavier_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        assert_eq!(Matrix::xavier(3, 3, &mut r1), Matrix::xavier(3, 3, &mut r2));
    }

    #[test]
    fn add_row_vec_broadcasts() {
        let a = Matrix::from_rows(vec![vec![1.0, 1.0], vec![2.0, 2.0]]);
        let out = a.add_row_vec(&[10.0, 20.0]);
        assert_eq!(out.data, vec![11.0, 21.0, 12.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
