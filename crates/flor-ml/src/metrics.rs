//! Classification metrics: the `acc` / `recall` values the paper logs in
//! its training loop (Fig. 5, lines 19–21) and queries for checkpoint
//! selection (`flor.dataframe("acc", "recall")`, §4.2).

/// Confusion matrix for `k` classes: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Confusion {
    /// `k × k` counts, row = actual class, column = predicted class.
    pub counts: Vec<Vec<usize>>,
}

impl Confusion {
    /// Tally predictions against ground truth.
    pub fn from_preds(preds: &[usize], truth: &[usize], k: usize) -> Confusion {
        assert_eq!(preds.len(), truth.len());
        let mut counts = vec![vec![0usize; k]; k];
        for (&p, &t) in preds.iter().zip(truth) {
            counts[t][p] += 1;
        }
        Confusion { counts }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Recall of class `c`: `tp / (tp + fn)`; 0 when the class is absent.
    pub fn recall(&self, c: usize) -> f64 {
        let row_total: usize = self.counts[c].iter().sum();
        if row_total == 0 {
            return 0.0;
        }
        self.counts[c][c] as f64 / row_total as f64
    }

    /// Precision of class `c`: `tp / (tp + fp)`; 0 when never predicted.
    pub fn precision(&self, c: usize) -> f64 {
        let col_total: usize = self.counts.iter().map(|r| r[c]).sum();
        if col_total == 0 {
            return 0.0;
        }
        self.counts[c][c] as f64 / col_total as f64
    }

    /// F1 of class `c`.
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean recall over classes (macro recall). The "recall" the
    /// demo logs is the positive-class recall for the binary first-page
    /// task; macro recall generalises it.
    pub fn macro_recall(&self) -> f64 {
        let k = self.counts.len();
        if k == 0 {
            return 0.0;
        }
        (0..k).map(|c| self.recall(c)).sum::<f64>() / k as f64
    }
}

/// Convenience: `(accuracy, recall-of-class-1)` as logged in Fig. 5.
pub fn acc_recall(preds: &[usize], truth: &[usize], k: usize) -> (f64, f64) {
    let c = Confusion::from_preds(preds, truth, k);
    (c.accuracy(), c.recall(1.min(k.saturating_sub(1))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let c = Confusion::from_preds(&[0, 1, 2], &[0, 1, 2], 3);
        assert_eq!(c.accuracy(), 1.0);
        for k in 0..3 {
            assert_eq!(c.recall(k), 1.0);
            assert_eq!(c.precision(k), 1.0);
            assert_eq!(c.f1(k), 1.0);
        }
    }

    #[test]
    fn known_confusion() {
        // truth:  [1, 1, 1, 0, 0]
        // preds:  [1, 0, 1, 0, 1]
        let c = Confusion::from_preds(&[1, 0, 1, 0, 1], &[1, 1, 1, 0, 0], 2);
        assert_eq!(c.counts, vec![vec![1, 1], vec![1, 2]]);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.recall(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absent_class_is_zero_not_nan() {
        let c = Confusion::from_preds(&[0, 0], &[0, 0], 2);
        assert_eq!(c.recall(1), 0.0);
        assert_eq!(c.precision(1), 0.0);
        assert_eq!(c.f1(1), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let c = Confusion::from_preds(&[], &[], 2);
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.macro_recall(), 0.0);
    }

    #[test]
    fn acc_recall_helper() {
        let (acc, rec) = acc_recall(&[1, 1, 0, 0], &[1, 0, 0, 0], 2);
        assert!((acc - 0.75).abs() < 1e-12);
        assert_eq!(rec, 1.0);
    }

    #[test]
    fn macro_recall_averages() {
        let c = Confusion::from_preds(&[0, 0, 1, 1], &[0, 0, 1, 0], 2);
        // class 0: 2/3, class 1: 1/1
        assert!((c.macro_recall() - (2.0 / 3.0 + 1.0) / 2.0).abs() < 1e-12);
    }
}
