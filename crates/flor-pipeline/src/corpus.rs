//! Synthetic document corpus: the stand-in for the demo's PDF folder.
//!
//! Substitution (see DESIGN.md): the paper's PDF Parser splits real PDFs
//! into per-page text/images. We synthesise "PDF files" that each
//! concatenate several logical documents; every page gets generated text
//! whose *surface features* (headings, page numbers, body density) encode
//! whether it starts a logical document. The ML task is exactly the demo's:
//! predict `first_page`, from which page colors (document segmentation,
//! Fig. 6) derive.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a page's text was obtained (Fig. 3: "OCR" or "TXT").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextSrc {
    /// Optical character recognition (noisy).
    Ocr,
    /// Born-digital text (clean).
    Txt,
}

impl TextSrc {
    /// Display form matching the paper's `text_src` values.
    pub fn as_str(&self) -> &'static str {
        match self {
            TextSrc::Ocr => "OCR",
            TextSrc::Txt => "TXT",
        }
    }
}

/// One synthetic page.
#[derive(Debug, Clone)]
pub struct Page {
    /// Rendered text content.
    pub text: String,
    /// Extraction source.
    pub source: TextSrc,
    /// Ground truth: does this page start a logical document?
    pub is_first: bool,
    /// Ground truth: logical document index within the PDF (the
    /// `page_color` of Fig. 6).
    pub color: usize,
}

/// One synthetic "PDF file" (a concatenation of logical documents).
#[derive(Debug, Clone)]
pub struct PdfFile {
    /// File name (`case_007.pdf`).
    pub name: String,
    /// Pages in order.
    pub pages: Vec<Page>,
}

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of PDF files.
    pub n_pdfs: usize,
    /// Logical documents per PDF (upper bound).
    pub max_docs_per_pdf: usize,
    /// Pages per logical document (upper bound).
    pub max_pages_per_doc: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_pdfs: 6,
            max_docs_per_pdf: 3,
            max_pages_per_doc: 4,
            seed: 42,
        }
    }
}

/// The corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All PDF files.
    pub pdfs: Vec<PdfFile>,
}

const TITLE_WORDS: &[&str] = &[
    "Motion",
    "Order",
    "Petition",
    "Declaration",
    "Summary",
    "Report",
    "Exhibit",
    "Notice",
];
const BODY_WORDS: &[&str] = &[
    "the",
    "court",
    "finds",
    "that",
    "party",
    "pursuant",
    "to",
    "section",
    "evidence",
    "submitted",
    "on",
    "record",
    "hearing",
    "date",
    "filed",
    "county",
    "case",
    "defendant",
];

/// Generate a corpus deterministically from `cfg`.
pub fn generate(cfg: &CorpusConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pdfs = Vec::with_capacity(cfg.n_pdfs);
    for p in 0..cfg.n_pdfs {
        let n_docs = rng.gen_range(1..=cfg.max_docs_per_pdf.max(1));
        let mut pages = Vec::new();
        for color in 0..n_docs {
            let n_pages = rng.gen_range(1..=cfg.max_pages_per_doc.max(1));
            for page_in_doc in 0..n_pages {
                let is_first = page_in_doc == 0;
                let source = if rng.gen_bool(0.4) {
                    TextSrc::Ocr
                } else {
                    TextSrc::Txt
                };
                let text = render_page(is_first, page_in_doc, source, &mut rng);
                pages.push(Page {
                    text,
                    source,
                    is_first,
                    color,
                });
            }
        }
        pdfs.push(PdfFile {
            name: format!("case_{p:03}.pdf"),
            pages,
        });
    }
    Corpus { pdfs }
}

/// Render page text whose surface features reflect `is_first`.
fn render_page(is_first: bool, page_in_doc: usize, source: TextSrc, rng: &mut StdRng) -> String {
    let mut lines = Vec::new();
    if is_first {
        // First pages: big title block, several headings, sparse body.
        let title = format!(
            "{} OF THE {}",
            TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())].to_uppercase(),
            TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())].to_uppercase()
        );
        lines.push(title);
        for _ in 0..rng.gen_range(2..5) {
            lines.push(format!(
                "Section {}: {}",
                rng.gen_range(1..9),
                TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())]
            ));
        }
        for _ in 0..rng.gen_range(2..6) {
            lines.push(body_line(rng));
        }
    } else {
        // Continuation pages: dense body, a page number footer.
        for _ in 0..rng.gen_range(8..16) {
            lines.push(body_line(rng));
        }
        if rng.gen_bool(0.9) {
            lines.push(format!("Page {}", page_in_doc + 1));
        }
    }
    let mut text = lines.join("\n");
    if source == TextSrc::Ocr {
        text = ocr_noise(&text, rng);
    }
    text
}

fn body_line(rng: &mut StdRng) -> String {
    let n = rng.gen_range(6..14);
    let words: Vec<&str> = (0..n)
        .map(|_| BODY_WORDS[rng.gen_range(0..BODY_WORDS.len())])
        .collect();
    words.join(" ")
}

/// Corrupt ~2% of characters the way cheap OCR does.
fn ocr_noise(text: &str, rng: &mut StdRng) -> String {
    text.chars()
        .map(|c| {
            if c.is_ascii_alphabetic() && rng.gen_bool(0.02) {
                match rng.gen_range(0..3) {
                    0 => '0',
                    1 => 'l',
                    _ => '~',
                }
            } else {
                c
            }
        })
        .collect()
}

/// Extracted page features (the output of the featurize stage).
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedFeatures {
    /// Lines that look like headings (short, title/upper case).
    pub headings: usize,
    /// Whether a `Page N` footer was found.
    pub has_page_number: bool,
    /// Total lines.
    pub lines: usize,
    /// Mean line length.
    pub mean_line_len: f64,
    /// Fraction of heading-like lines.
    pub heading_density: f64,
}

impl ExtractedFeatures {
    /// Fixed-order feature vector for model input (length 5).
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.heading_density,
            self.has_page_number as u8 as f64,
            (self.lines as f64 / 20.0).min(1.0),
            (self.mean_line_len / 80.0).min(1.0),
            (self.headings as f64 / 6.0).min(1.0),
        ]
    }

    /// Dimensionality of [`ExtractedFeatures::to_vec`].
    pub const DIM: usize = 5;
}

/// The featurizer: `analyze_text` from Fig. 3.
pub fn analyze_text(text: &str) -> ExtractedFeatures {
    let lines: Vec<&str> = text.lines().collect();
    let mut headings = 0usize;
    let mut has_page_number = false;
    let mut total_len = 0usize;
    for line in &lines {
        total_len += line.len();
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Page-number footer: `Page N`.
        if let Some(rest) = trimmed.strip_prefix("Page ") {
            if rest.chars().all(|c| c.is_ascii_digit()) && !rest.is_empty() {
                has_page_number = true;
                continue;
            }
        }
        // Heading-like: short line starting uppercase (titles and
        // `Section N:` lines; body sentences start lowercase).
        let starts_upper = trimmed.chars().next().is_some_and(char::is_uppercase);
        let is_short = trimmed.len() < 45;
        if starts_upper && is_short {
            headings += 1;
        }
    }
    let n = lines.len().max(1);
    ExtractedFeatures {
        headings,
        has_page_number,
        lines: lines.len(),
        mean_line_len: total_len as f64 / n as f64,
        heading_density: headings as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.pdfs.len(), b.pdfs.len());
        for (pa, pb) in a.pdfs.iter().zip(&b.pdfs) {
            assert_eq!(pa.name, pb.name);
            assert_eq!(pa.pages.len(), pb.pages.len());
            for (x, y) in pa.pages.iter().zip(&pb.pages) {
                assert_eq!(x.text, y.text);
            }
        }
    }

    #[test]
    fn every_pdf_starts_with_a_first_page() {
        let corpus = generate(&CorpusConfig::default());
        for pdf in &corpus.pdfs {
            assert!(pdf.pages[0].is_first, "{}", pdf.name);
            assert_eq!(pdf.pages[0].color, 0);
        }
    }

    #[test]
    fn colors_are_cumsum_of_first_pages() {
        // The Fig. 6 invariant: color == cumsum(first_page) - 1.
        let corpus = generate(&CorpusConfig {
            n_pdfs: 10,
            ..Default::default()
        });
        for pdf in &corpus.pdfs {
            let mut acc = 0usize;
            for page in &pdf.pages {
                if page.is_first {
                    acc += 1;
                }
                assert_eq!(page.color, acc - 1);
            }
        }
    }

    #[test]
    fn features_separate_first_pages() {
        let corpus = generate(&CorpusConfig {
            n_pdfs: 20,
            seed: 7,
            ..Default::default()
        });
        let mut first_density = Vec::new();
        let mut rest_density = Vec::new();
        for pdf in &corpus.pdfs {
            for page in &pdf.pages {
                let f = analyze_text(&page.text);
                if page.is_first {
                    first_density.push(f.heading_density);
                } else {
                    rest_density.push(f.heading_density);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&first_density) > mean(&rest_density) + 0.2,
            "first {} vs rest {}",
            mean(&first_density),
            mean(&rest_density)
        );
    }

    #[test]
    fn page_number_detection() {
        let f = analyze_text("the court finds that\nPage 3");
        assert!(f.has_page_number);
        let f2 = analyze_text("Page three");
        assert!(!f2.has_page_number);
    }

    #[test]
    fn ocr_pages_marked() {
        let corpus = generate(&CorpusConfig {
            n_pdfs: 30,
            seed: 3,
            ..Default::default()
        });
        let ocr = corpus
            .pdfs
            .iter()
            .flat_map(|p| &p.pages)
            .filter(|pg| pg.source == TextSrc::Ocr)
            .count();
        let total: usize = corpus.pdfs.iter().map(|p| p.pages.len()).sum();
        assert!(ocr > total / 5, "ocr {ocr}/{total}");
        assert!(ocr < total, "ocr {ocr}/{total}");
    }

    #[test]
    fn feature_vec_bounded() {
        let corpus = generate(&CorpusConfig::default());
        for pdf in &corpus.pdfs {
            for page in &pdf.pages {
                for v in analyze_text(&page.text).to_vec() {
                    assert!((0.0..=1.0).contains(&v), "{v}");
                }
            }
        }
    }
}
