//! The orchestrated pipeline: Fig. 4's Makefile driving the stages, with
//! `build_deps` rows recorded per target, plus the closed feedback loop
//! (run → review → retrain) of §4.4.

use crate::corpus::{generate, Corpus, CorpusConfig};
use crate::stages;
use flor_core::Flor;
use flor_make::Makefile;
use flor_store::StoreResult;
use std::cell::RefCell;
use std::rc::Rc;

/// The document-intelligence pipeline bound to a FlorDB instance.
pub struct PdfPipeline {
    /// The FlorDB instance all stages log into.
    pub flor: Flor,
    /// The synthetic corpus (stands in for the PDFs directory).
    pub corpus: Corpus,
    /// Training hyper-parameters.
    pub train_cfg: stages::TrainConfig,
    /// How many PDFs the expert hand-labels up front.
    pub initial_labeled: usize,
}

impl PdfPipeline {
    /// Build a pipeline over a fresh in-memory FlorDB.
    pub fn new(projid: &str, corpus_cfg: &CorpusConfig) -> PdfPipeline {
        PdfPipeline {
            flor: Flor::new(projid),
            corpus: generate(corpus_cfg),
            train_cfg: stages::TrainConfig::default(),
            initial_labeled: (corpus_cfg.n_pdfs / 2).max(1),
        }
    }

    /// The Fig. 4 Makefile over this pipeline's stages. Each target's
    /// execution/caching is recorded into `build_deps` after a build via
    /// [`PdfPipeline::make`].
    pub fn makefile(&self) -> Makefile {
        let mut mk = Makefile::new();
        let fs = &self.flor.fs;
        // Source stand-ins so staleness has real files to track.
        for f in [
            "pdf_demux.fl",
            "featurize.fl",
            "label_by_hand.fl",
            "train.fl",
            "infer.fl",
        ] {
            if !fs.exists(f) {
                fs.write(f, &format!("// stage source: {f}"));
            }
        }
        let corpus = Rc::new(self.corpus.clone());
        let flor = self.flor.clone();
        let cfg = self.train_cfg;
        let labeled = self.initial_labeled;

        let c = corpus.clone();
        let fl = flor.clone();
        mk.rule("process_pdfs", &["pdf_demux.fl"], move |_fs| {
            stages::process_pdfs(&fl, &c);
            // Each stage is a separate "process": flor.commit() at exit
            // (the paper's atexit hook, §2.1).
            fl.commit("stage process_pdfs").map_err(|e| e.to_string())?;
            Ok(())
        });
        let c = corpus.clone();
        let fl = flor.clone();
        mk.rule("featurize", &["process_pdfs", "featurize.fl"], move |_fs| {
            stages::featurize(&fl, &c);
            fl.commit("stage featurize").map_err(|e| e.to_string())?;
            Ok(())
        });
        let c = corpus.clone();
        let fl = flor.clone();
        mk.rule("hand_label", &["label_by_hand.fl"], move |_fs| {
            stages::hand_label(&fl, &c, labeled);
            fl.commit("stage hand_label").map_err(|e| e.to_string())?;
            Ok(())
        });
        let fl = flor.clone();
        mk.rule(
            "train",
            &["featurize", "hand_label", "train.fl"],
            move |_fs| {
                stages::train(&fl, &cfg).map_err(|e| e.to_string())?;
                fl.commit("stage train").map_err(|e| e.to_string())?;
                Ok(())
            },
        );
        let fl = flor.clone();
        mk.rule("model.ckpt", &["train"], move |fs| {
            // export_ckpt.py: materialise the registry's best model.
            match stages::best_model(&fl).map_err(|e| e.to_string())? {
                Some((m, _)) => {
                    fs.write("model.ckpt", &m.to_text());
                    Ok(())
                }
                None => Err("no trained model in registry".to_string()),
            }
        });
        let c = corpus.clone();
        let fl = flor.clone();
        mk.rule("infer", &["model.ckpt", "infer.fl"], move |_fs| {
            stages::infer(&fl, &c).map_err(|e| e.to_string())?;
            fl.commit("stage infer").map_err(|e| e.to_string())?;
            Ok(())
        });
        let fl = flor;
        mk.rule("run", &["featurize", "infer"], move |_fs| {
            // `flask run`: the app serving predictions; here it just
            // verifies the registry can answer.
            stages::best_model(&fl).map_err(|e| e.to_string())?;
            Ok(())
        });
        mk
    }

    /// Build `target`, record `build_deps` rows (Fig. 1) for every target
    /// touched, and commit. Returns the build report.
    pub fn make(&self, target: &str) -> Result<flor_make::BuildReport, String> {
        let mk = self.makefile();
        let report = mk.build(target, &self.flor.fs).map_err(|e| e.to_string())?;
        let vid_hint = self
            .flor
            .repo
            .head()
            .map(|o| o.0)
            .unwrap_or_else(|| "worktree".to_string());
        for t in mk.topo_order(target).map_err(|e| e.to_string())? {
            let Some(rule) = mk.rule_for(&t) else {
                continue;
            };
            let cached = report.cached.iter().any(|x| x == &t);
            let cmds = match &rule.action {
                flor_make::Action::Cmds(c) => c.clone(),
                flor_make::Action::Func(_) => vec![format!("<builtin stage {t}>")],
            };
            self.flor
                .record_build_dep(&vid_hint, &t, &rule.deps, &cmds, cached)
                .map_err(|e| e.to_string())?;
        }
        self.flor
            .commit(&format!("make {target}"))
            .map_err(|e| e.to_string())?;
        Ok(report)
    }

    /// One feedback round (§4.4): the expert reviews `k` more PDFs via the
    /// UI, then training reruns on the enlarged labeled set and inference
    /// refreshes. Returns prediction accuracy after the round.
    pub fn feedback_round(&self, reviewed: &[&str]) -> StoreResult<f64> {
        stages::feedback(&self.flor, &self.corpus, reviewed)?;
        stages::train(&self.flor, &self.train_cfg)?;
        self.flor.commit("stage train (feedback round)")?;
        stages::infer(&self.flor, &self.corpus)?;
        self.flor.commit("stage infer (feedback round)")?;
        stages::prediction_accuracy(&self.flor, &self.corpus)
    }
}

/// Run the whole demo loop and return accuracy after each feedback round
/// (round 0 = initial training on hand labels only).
pub fn run_demo(
    corpus_cfg: &CorpusConfig,
    feedback_rounds: usize,
) -> Result<(PdfPipeline, Vec<f64>), String> {
    let pipeline = PdfPipeline::new("pdf_parser", corpus_cfg);
    pipeline.make("run")?;
    let mut accs = vec![
        stages::prediction_accuracy(&pipeline.flor, &pipeline.corpus).map_err(|e| e.to_string())?,
    ];
    // Review the not-yet-labeled PDFs, a couple per round.
    let unlabeled: Vec<String> = pipeline
        .corpus
        .pdfs
        .iter()
        .skip(pipeline.initial_labeled)
        .map(|p| p.name.clone())
        .collect();
    let per_round = (unlabeled.len() / feedback_rounds.max(1)).max(1);
    let chunks = RefCell::new(unlabeled.chunks(per_round));
    for _ in 0..feedback_rounds {
        let Some(chunk) = chunks.borrow_mut().next() else {
            break;
        };
        let names: Vec<&str> = chunk.iter().map(String::as_str).collect();
        let acc = pipeline.feedback_round(&names).map_err(|e| e.to_string())?;
        accs.push(acc);
    }
    Ok((pipeline, accs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_df::Value;

    fn small_cfg() -> CorpusConfig {
        CorpusConfig {
            n_pdfs: 6,
            max_docs_per_pdf: 3,
            max_pages_per_doc: 3,
            seed: 11,
        }
    }

    #[test]
    fn full_build_executes_fig4_targets_in_order() {
        let p = PdfPipeline::new("demo", &small_cfg());
        let report = p.make("run").unwrap();
        assert_eq!(
            report.executed,
            vec![
                "process_pdfs",
                "featurize",
                "hand_label",
                "train",
                "model.ckpt",
                "infer",
                "run"
            ]
        );
        // build_deps recorded with cached flags.
        let bd = p.flor.db.scan("build_deps").unwrap();
        assert_eq!(bd.n_rows(), 7);
        assert!(bd
            .column("cached")
            .unwrap()
            .values
            .iter()
            .all(|v| v == &Value::Bool(false)));
    }

    #[test]
    fn incremental_rebuild_is_cached() {
        let p = PdfPipeline::new("demo", &small_cfg());
        p.make("run").unwrap();
        let report = p.make("run").unwrap();
        assert!(report.executed.is_empty());
        assert_eq!(report.cached.len(), 7);
    }

    #[test]
    fn touching_infer_only_reruns_downstream() {
        let p = PdfPipeline::new("demo", &small_cfg());
        p.make("run").unwrap();
        p.flor.fs.write("infer.fl", "// changed inference stage");
        let report = p.make("run").unwrap();
        assert_eq!(report.executed, vec!["infer", "run"]);
        assert!(report.cached.contains(&"train".to_string()));
    }

    #[test]
    fn feature_store_serves_features_post_hoc() {
        let p = PdfPipeline::new("demo", &small_cfg());
        p.make("featurize").unwrap();
        let df = p
            .flor
            .dataframe(&["headings", "page_numbers", "heading_density"])
            .unwrap();
        let total_pages: usize = p.corpus.pdfs.iter().map(|x| x.pages.len()).sum();
        assert_eq!(df.n_rows(), total_pages);
        assert!(df.column("document_value").is_some());
    }

    #[test]
    fn model_registry_returns_best_recall() {
        let p = PdfPipeline::new("demo", &small_cfg());
        p.make("train").unwrap();
        let (model, recall) = stages::best_model(&p.flor).unwrap().unwrap();
        assert!(recall > 0.0);
        assert_eq!(model.d_in, 5);
    }

    #[test]
    fn demo_feedback_improves_or_holds_accuracy() {
        let cfg = CorpusConfig {
            n_pdfs: 10,
            max_docs_per_pdf: 3,
            max_pages_per_doc: 3,
            seed: 5,
        };
        let (_pipeline, accs) = run_demo(&cfg, 2).unwrap();
        assert_eq!(accs.len(), 3);
        assert!(accs[0] > 0.5, "initial acc {accs:?}");
        let last = *accs.last().unwrap();
        assert!(
            last >= accs[0] - 0.05,
            "feedback should not degrade accuracy: {accs:?}"
        );
    }

    #[test]
    fn human_and_model_labels_carry_provenance() {
        let p = PdfPipeline::new("demo", &small_cfg());
        p.make("run").unwrap();
        let name = p.corpus.pdfs.last().unwrap().name.clone();
        p.feedback_round(&[name.as_str()]).unwrap();
        let df = p.flor.dataframe(&["label_src"]).unwrap();
        let srcs: std::collections::HashSet<String> = df
            .column("label_src")
            .unwrap()
            .values
            .iter()
            .filter(|v| !v.is_null())
            .map(|v| v.to_text())
            .collect();
        assert!(srcs.contains("human"));
        assert!(srcs.contains("model"));
    }

    #[test]
    fn get_colors_logic_from_fig6() {
        // Reproduce get_colors(): latest rows for one document; if colors
        // missing, derive from first_page cumsum.
        let p = PdfPipeline::new("demo", &small_cfg());
        p.make("run").unwrap();
        let pdf = &p.corpus.pdfs[0];
        let infer = p
            .flor
            .dataframe(&["first_page_pred", "page_color_pred"])
            .unwrap();
        let infer = infer
            .filter_eq("document_value", &Value::from(pdf.name.as_str()))
            .latest(&["page_iteration"], "tstamp")
            .unwrap()
            .sort_by(&[("page_iteration", true)])
            .unwrap();
        assert_eq!(infer.n_rows(), pdf.pages.len());
        // Colors are consistent with predicted first pages (cumsum logic).
        let firsts: Vec<bool> = infer
            .column("first_page_pred")
            .unwrap()
            .values
            .iter()
            .map(|v| v.as_bool().unwrap())
            .collect();
        let colors: Vec<i64> = infer
            .column("page_color_pred")
            .unwrap()
            .values
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        let mut acc: i64 = -1;
        for (f, c) in firsts.iter().zip(&colors) {
            if *f {
                acc += 1;
            }
            assert_eq!(*c, acc.max(0));
        }
    }
}
