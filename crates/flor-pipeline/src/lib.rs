//! # flor-pipeline — the PDF Parser demo (paper §4) on FlorDB
//!
//! A complete document-intelligence pipeline over synthetic "PDFs":
//! demux → featurize → hand-label → train → export → infer → feedback,
//! orchestrated by the Fig. 4 Makefile via `flor-make`, with every stage
//! logging through the `flor-core` kernel. The takeaways the paper
//! demonstrates map to:
//!
//! * **feature store** — [`stages::featurize`] logs per-page features; any
//!   later stage reads them with `flor.dataframe` (no prior setup);
//! * **model registry** — [`stages::train`] logs metrics + checkpoint;
//!   [`stages::best_model`] answers "highest recall so far" (§4.2);
//! * **training data store** — [`stages::labeled_view`] is Fig. 5's
//!   `flor.dataframe("first_page", "page_color")`;
//! * **feedback management** — [`stages::feedback`] records human
//!   corrections with provenance and transactional visibility (Fig. 6).

#![warn(missing_docs)]

pub mod corpus;
pub mod pipeline;
pub mod stages;

pub use corpus::{
    analyze_text, generate, Corpus, CorpusConfig, ExtractedFeatures, PdfFile, TextSrc,
};
pub use pipeline::{run_demo, PdfPipeline};
pub use stages::{best_model, labeled_view, prediction_accuracy, TrainConfig};
