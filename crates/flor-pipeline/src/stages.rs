//! The pipeline stages of the PDF Parser demo (paper §4, Fig. 4).
//!
//! Each stage is a function over a [`Flor`] instance; stages communicate
//! only through FlorDB (the feature-store / model-registry / label-store
//! behaviour the paper's takeaways describe) and the virtual filesystem.

use crate::corpus::{analyze_text, Corpus, ExtractedFeatures};
use flor_core::Flor;
use flor_df::{DataFrame, Value};
use flor_ml::{acc_recall, Dataset, Matrix, Mlp};
use flor_store::StoreResult;

/// Stage 1 — `pdf_demux.py`: split PDFs into per-page text files under
/// `pages/{pdf}/{i}.txt` and log each page's extraction source.
pub fn process_pdfs(flor: &Flor, corpus: &Corpus) {
    flor.set_filename("pdf_demux.fl");
    flor.for_each(
        "document",
        corpus
            .pdfs
            .iter()
            .map(|p| p.name.clone())
            .collect::<Vec<_>>(),
        |flor, doc_name| {
            // The names were collected from this same corpus, but stay
            // panic-free anyway: an unknown name contributes no pages.
            let Some(pdf) = corpus.pdfs.iter().find(|p| &p.name == doc_name) else {
                return;
            };
            flor.for_each("page", 0..pdf.pages.len(), |flor, &page| {
                let p = &pdf.pages[page];
                flor.fs
                    .write(&format!("pages/{doc_name}/{page}.txt"), &p.text);
                flor.log("text_src", p.source.as_str());
            });
        },
    );
}

/// Stage 2 — `featurize.py` (Fig. 3 verbatim): read each page, run
/// `analyze_text`, and log features. FlorDB *is* the feature store: no
/// schema was declared, yet `flor.dataframe("headings", ...)` will serve
/// these features to any later stage.
pub fn featurize(flor: &Flor, corpus: &Corpus) {
    flor.set_filename("featurize.fl");
    flor.for_each(
        "document",
        corpus
            .pdfs
            .iter()
            .map(|p| p.name.clone())
            .collect::<Vec<_>>(),
        |flor, doc_name| {
            let n = flor.fs.list_dir(&format!("pages/{doc_name}/")).len();
            flor.for_each("page", 0..n, |flor, &page| {
                let text = flor
                    .fs
                    .read(&format!("pages/{doc_name}/{page}.txt"))
                    .unwrap_or_default();
                flor.log("page_text", text.as_str());
                let f = analyze_text(&text);
                flor.log("headings", f.headings);
                flor.log("page_numbers", f.has_page_number);
                flor.log("heading_density", f.heading_density);
                flor.log("lines", f.lines);
                flor.log("mean_line_len", f.mean_line_len);
            });
        },
    );
}

/// Stage 3 — `label_by_hand.py`: an expert labels the first
/// `n_labeled_pdfs` PDFs with ground-truth page colors (and hence
/// `first_page`), Fig. 6 style, with human provenance.
pub fn hand_label(flor: &Flor, corpus: &Corpus, n_labeled_pdfs: usize) {
    flor.set_filename("label_by_hand.fl");
    for pdf in corpus.pdfs.iter().take(n_labeled_pdfs) {
        flor.iteration("document", pdf.name.as_str(), |flor| {
            flor.for_each("page", 0..pdf.pages.len(), |flor, &page| {
                let p = &pdf.pages[page];
                flor.log("first_page", p.is_first);
                flor.log("page_color", p.color as i64);
                flor.log("label_src", "human");
            });
        });
    }
}

/// Rows of the feature store joined with labels: the training view.
///
/// Reads `flor.dataframe("heading_density", ..., "first_page")` and keeps
/// rows where a label exists — the paper's `labeled_data =
/// flor.dataframe("first_page", "page_color")` (Fig. 5 line 1).
pub fn labeled_view(flor: &Flor) -> StoreResult<DataFrame> {
    let features = flor.dataframe(&[
        "heading_density",
        "page_numbers",
        "lines",
        "mean_line_len",
        "headings",
    ])?;
    let labels = flor.dataframe(&["first_page", "label_src"])?;
    if features.n_rows() == 0 || labels.n_rows() == 0 {
        return Ok(DataFrame::new());
    }
    // Labels and features come from different files/runs; join on the
    // document/page dimensions. Use latest label per page.
    let labels = labels
        .latest(&["document_value", "page_iteration"], "tstamp")?
        .select(&[
            "document_value",
            "page_iteration",
            "first_page",
            "label_src",
        ])?;
    let features = features.latest(&["document_value", "page_iteration"], "tstamp")?;
    let mut joined = features.join(
        &labels,
        &["document_value", "page_iteration"],
        flor_df::JoinKind::Inner,
    )?;
    // A page may appear with null label if label row exists but null; drop.
    joined = joined.filter(|r| r.get("first_page").is_some_and(|v| !v.is_null()));
    Ok(joined)
}

/// Convert the labeled view into an ML dataset.
pub fn view_to_dataset(view: &DataFrame) -> Dataset {
    let mut rows = Vec::with_capacity(view.n_rows());
    let mut y = Vec::with_capacity(view.n_rows());
    for r in view.rows() {
        let f = ExtractedFeatures {
            heading_density: r
                .get("heading_density")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            has_page_number: r
                .get("page_numbers")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            lines: r.get("lines").and_then(Value::as_i64).unwrap_or(0) as usize,
            mean_line_len: r
                .get("mean_line_len")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            headings: r.get("headings").and_then(Value::as_i64).unwrap_or(0) as usize,
        };
        rows.push(f.to_vec());
        y.push(
            r.get("first_page")
                .and_then(Value::as_bool)
                .unwrap_or(false) as usize,
        );
    }
    Dataset {
        x: Matrix::from_rows(rows),
        y,
        n_classes: 2,
    }
}

/// Training hyper-parameters (the `flor.arg` block of Fig. 5).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Init seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            hidden: 12,
            epochs: 8,
            lr: 0.8,
            seed: 9,
        }
    }
}

/// Stage 4 — `train.py` (Fig. 5): train on the labeled view, logging
/// `loss` per epoch and `acc`/`recall` at epoch end; the final model
/// checkpoint is logged (spilling to `obj_store`) so FlorDB acts as the
/// model registry.
pub fn train(flor: &Flor, cfg: &TrainConfig) -> StoreResult<Option<Mlp>> {
    let view = labeled_view(flor)?;
    flor.set_filename("train.fl");
    if view.n_rows() < 4 {
        return Ok(None);
    }
    let ds = view_to_dataset(&view);
    let hidden = flor
        .arg("hidden", cfg.hidden as i64)
        .as_i64()
        .unwrap_or(cfg.hidden as i64) as usize;
    let epochs = flor
        .arg("epochs", cfg.epochs as i64)
        .as_i64()
        .unwrap_or(cfg.epochs as i64) as usize;
    let lr = flor.arg("lr", cfg.lr).as_f64().unwrap_or(cfg.lr);
    let seed = flor.arg("seed", cfg.seed as i64).as_i64().unwrap_or(9) as u64;
    let mut net = Mlp::new(ExtractedFeatures::DIM, hidden, 2, seed);
    flor.for_each("epoch", 0..epochs, |flor, &_e| {
        let loss = net.train_step(&ds, lr);
        flor.log("loss", loss);
        let preds = net.predict(&ds.x);
        let (acc, recall) = acc_recall(&preds, &ds.y, 2);
        flor.log("acc", acc);
        flor.log("recall", recall);
    });
    // Model registry: the checkpoint lands in obj_store with a stub in
    // logs — FlorDB as the model repository (Fig. 5 takeaway).
    flor.log_blob("model_ckpt", &net.to_text());
    Ok(Some(net))
}

/// Model-registry lookup (§4.2): "flor.dataframe("acc", "recall") is
/// queried to retrieve the model checkpoint with the highest recall from
/// the execution history."
pub fn best_model(flor: &Flor) -> StoreResult<Option<(Mlp, f64)>> {
    let metrics = flor.dataframe(&["acc", "recall"])?;
    if metrics.n_rows() == 0 {
        return Ok(None);
    }
    let ranked = metrics.sort_by(&[("recall", false), ("tstamp", false)])?;
    let Some(best_ts) = ranked.get(0, "tstamp").and_then(Value::as_i64) else {
        return Ok(None);
    };
    let best_recall = ranked
        .get(0, "recall")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    // Fetch the checkpoint logged in that run: small checkpoints live
    // inline in `logs.value`; large ones spill to `obj_store` behind a
    // `<blob ...>` stub.
    let logs = flor
        .db
        .lookup("logs", "value_name", &Value::from("model_ckpt"))?
        .filter_eq("tstamp", &Value::Int(best_ts));
    let inline = (0..logs.n_rows())
        .rev()
        .find_map(|i| logs.get(i, "value").map(|v| v.to_text()));
    let text = match inline {
        Some(v) if !v.starts_with("<blob") => v,
        _ => {
            let objs = flor
                .db
                .lookup("obj_store", "tstamp", &Value::Int(best_ts))?
                .filter_eq("value_name", &Value::from("model_ckpt"));
            match (0..objs.n_rows())
                .rev()
                .find_map(|i| objs.get(i, "contents").map(|v| v.to_text()))
            {
                Some(t) => t,
                None => return Ok(None),
            }
        }
    };
    match Mlp::from_text(&text) {
        Ok(m) => Ok(Some((m, best_recall))),
        Err(_) => Ok(None),
    }
}

/// Stage 5 — `infer.py`: run the best model over *all* pages, logging
/// predicted `first_page_pred` and derived `page_color_pred` with model
/// provenance.
pub fn infer(flor: &Flor, corpus: &Corpus) -> StoreResult<usize> {
    let Some((net, _)) = best_model(flor)? else {
        return Ok(0);
    };
    let features = flor
        .dataframe(&[
            "heading_density",
            "page_numbers",
            "lines",
            "mean_line_len",
            "headings",
        ])?
        .latest(&["document_value", "page_iteration"], "tstamp")
        .map_err(flor_store::StoreError::Df)?;
    flor.set_filename("infer.fl");
    let mut predictions = 0usize;
    for pdf in &corpus.pdfs {
        flor.iteration("document", pdf.name.as_str(), |flor| {
            // First-page probability per page, then cumsum for colors.
            let page_rows: Vec<usize> = (0..pdf.pages.len()).collect();
            let mut firsts = Vec::with_capacity(page_rows.len());
            for &page in &page_rows {
                let row = features
                    .filter_eq("document_value", &Value::from(pdf.name.as_str()))
                    .filter_eq("page_iteration", &Value::from(page as i64));
                let f = if let Some(r0) = row.rows().next() {
                    ExtractedFeatures {
                        heading_density: r0
                            .get("heading_density")
                            .and_then(Value::as_f64)
                            .unwrap_or(0.0),
                        has_page_number: r0
                            .get("page_numbers")
                            .and_then(Value::as_bool)
                            .unwrap_or(false),
                        lines: r0.get("lines").and_then(Value::as_i64).unwrap_or(0) as usize,
                        mean_line_len: r0
                            .get("mean_line_len")
                            .and_then(Value::as_f64)
                            .unwrap_or(0.0),
                        headings: r0.get("headings").and_then(Value::as_i64).unwrap_or(0) as usize,
                    }
                } else {
                    analyze_text(&pdf.pages[page].text)
                };
                let x = Matrix::from_rows(vec![f.to_vec()]);
                firsts.push(net.predict(&x)[0] == 1);
            }
            // Pages before the first predicted first-page get color 0.
            let mut color: i64 = -1;
            flor.for_each("page", 0..pdf.pages.len(), |flor, &page| {
                if firsts[page] {
                    color += 1;
                }
                flor.log("first_page_pred", firsts[page]);
                flor.log("page_color_pred", color.max(0));
                flor.log("label_src", "model");
                predictions += 1;
            });
        });
    }
    Ok(predictions)
}

/// Stage 6 — the Fig. 6 feedback loop: an expert reviews the predictions
/// for `pdf_names` and submits corrected colors (ground truth), which are
/// logged with human provenance and committed (`save_colors`).
pub fn feedback(flor: &Flor, corpus: &Corpus, pdf_names: &[&str]) -> StoreResult<usize> {
    flor.set_filename("app.fl");
    let mut corrected = 0usize;
    for name in pdf_names {
        let Some(pdf) = corpus.pdfs.iter().find(|p| &p.name.as_str() == name) else {
            continue;
        };
        flor.iteration("document", *name, |flor| {
            flor.for_each("page", 0..pdf.pages.len(), |flor, &page| {
                let p = &pdf.pages[page];
                flor.log("first_page", p.is_first);
                flor.log("page_color", p.color as i64);
                flor.log("label_src", "human");
                corrected += 1;
            });
        });
    }
    flor.commit("save_colors feedback")?;
    Ok(corrected)
}

/// Measure prediction quality against corpus ground truth: accuracy of
/// `first_page_pred` over all pages of the latest inference.
pub fn prediction_accuracy(flor: &Flor, corpus: &Corpus) -> StoreResult<f64> {
    let preds = flor
        .dataframe(&["first_page_pred"])?
        .latest(&["document_value", "page_iteration"], "tstamp")
        .map_err(flor_store::StoreError::Df)?;
    let mut correct = 0usize;
    let mut total = 0usize;
    for pdf in &corpus.pdfs {
        for (page, p) in pdf.pages.iter().enumerate() {
            let row = preds
                .filter_eq("document_value", &Value::from(pdf.name.as_str()))
                .filter_eq("page_iteration", &Value::from(page as i64));
            if row.n_rows() == 0 {
                continue;
            }
            let pred = row
                .get(0, "first_page_pred")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            total += 1;
            if pred == p.is_first {
                correct += 1;
            }
        }
    }
    Ok(if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    })
}
