//! Property-based tests for flor-df invariants.

use flor_df::{AggFn, DataFrame, JoinKind, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000.0f64..1000.0).prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::from),
    ]
}

/// A long-format logs frame: (run, name, value).
fn arb_long() -> impl Strategy<Value = DataFrame> {
    proptest::collection::vec((0i64..6, 0u8..5, arb_value()), 0..60).prop_map(|rows| {
        DataFrame::from_rows(
            vec!["run", "name", "value"],
            rows.into_iter()
                .map(|(r, n, v)| vec![Value::Int(r), Value::from(format!("m{n}")), v])
                .collect(),
        )
        .unwrap()
    })
}

proptest! {
    /// Pivot preserves the last-written value for every (index, name) pair.
    #[test]
    fn pivot_is_last_write_wins(df in arb_long()) {
        let wide = df.pivot(&["run"], "name", "value").unwrap();
        for i in 0..df.n_rows() {
            let run = df.get(i, "run").unwrap().clone();
            let name = df.get(i, "name").unwrap().to_text();
            // Find the last row with this (run, name).
            let last = (0..df.n_rows())
                .rev()
                .find(|&j| df.get(j, "run").unwrap() == &run
                    && df.get(j, "name").unwrap().to_text() == name)
                .unwrap();
            let expected = df.get(last, "value").unwrap();
            let row = (0..wide.n_rows())
                .find(|&r| wide.get(r, "run").unwrap() == &run)
                .expect("pivot must contain every index key");
            prop_assert_eq!(wide.get(row, &name).unwrap(), expected);
        }
    }

    /// Pivot output has one row per distinct index value.
    #[test]
    fn pivot_row_count_is_distinct_keys(df in arb_long()) {
        let wide = df.pivot(&["run"], "name", "value").unwrap();
        let distinct = df.unique_by(&["run"]).unwrap().n_rows();
        prop_assert_eq!(wide.n_rows(), distinct);
    }

    /// melt(pivot(df)) re-pivots to the same wide frame (pivot is a
    /// fixpoint under melt for non-null cells).
    #[test]
    fn pivot_melt_pivot_fixpoint(df in arb_long()) {
        let wide = df.pivot(&["run"], "name", "value").unwrap();
        let value_cols: Vec<&str> = wide.column_names().into_iter()
            .filter(|c| *c != "run").collect();
        let long = wide.melt(&["run"], &value_cols, "name", "value").unwrap();
        let rewide = long.pivot(&["run"], "name", "value").unwrap();
        // Columns may differ if a column was all-null; compare cell-wise on
        // rewide's columns.
        for r in 0..rewide.n_rows() {
            let run = rewide.get(r, "run").unwrap();
            let orig_row = (0..wide.n_rows())
                .find(|&i| wide.get(i, "run").unwrap() == run).unwrap();
            for c in rewide.column_names() {
                if c == "run" { continue; }
                prop_assert_eq!(rewide.get(r, c).unwrap(), wide.get(orig_row, c).unwrap());
            }
        }
    }

    /// Inner self-join on a unique key is the identity (modulo suffixed
    /// duplicate columns).
    #[test]
    fn self_join_on_unique_key_is_identity(n in 0usize..30) {
        let df = DataFrame::from_rows(
            vec!["k", "v"],
            (0..n).map(|i| vec![Value::Int(i as i64), Value::Int((i * 7) as i64)]).collect(),
        ).unwrap();
        let j = df.join(&df, &["k"], JoinKind::Inner).unwrap();
        prop_assert_eq!(j.n_rows(), n);
        for i in 0..n {
            prop_assert_eq!(j.get(i, "v_x").unwrap(), j.get(i, "v_y").unwrap());
        }
    }

    /// Inner join row count equals the sum over keys of |L_k| * |R_k|.
    #[test]
    fn join_cardinality(
        left in proptest::collection::vec(0i64..5, 0..20),
        right in proptest::collection::vec(0i64..5, 0..20),
    ) {
        let l = DataFrame::from_rows(
            vec!["k"], left.iter().map(|&k| vec![Value::Int(k)]).collect()).unwrap();
        let r = DataFrame::from_rows(
            vec!["k"], right.iter().map(|&k| vec![Value::Int(k)]).collect()).unwrap();
        let j = l.join(&r, &["k"], JoinKind::Inner).unwrap();
        let mut expected = 0usize;
        for k in 0..5 {
            let lc = left.iter().filter(|&&x| x == k).count();
            let rc = right.iter().filter(|&&x| x == k).count();
            expected += lc * rc;
        }
        prop_assert_eq!(j.n_rows(), expected);
    }

    /// Left join preserves every left row at least once.
    #[test]
    fn left_join_preserves_left(
        left in proptest::collection::vec(0i64..5, 1..20),
        right in proptest::collection::vec(0i64..5, 0..20),
    ) {
        let l = DataFrame::from_rows(
            vec!["k"], left.iter().map(|&k| vec![Value::Int(k)]).collect()).unwrap();
        let r = DataFrame::from_rows(
            vec!["k", "v"],
            right.iter().map(|&k| vec![Value::Int(k), Value::Int(k)]).collect()).unwrap();
        let j = l.join(&r, &["k"], JoinKind::Left).unwrap();
        prop_assert!(j.n_rows() >= left.len());
    }

    /// Sorting is stable and a permutation of the input.
    #[test]
    fn sort_is_permutation(df in arb_long()) {
        let sorted = df.sort_by(&[("name", true), ("run", false)]).unwrap();
        prop_assert_eq!(sorted.n_rows(), df.n_rows());
        let mut a = df.to_rows();
        let mut b = sorted.to_rows();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// group_by count sums to total row count.
    #[test]
    fn group_counts_sum_to_total(df in arb_long()) {
        prop_assume!(df.n_rows() > 0);
        let g = df.group_by(&["run"], &[("value", AggFn::Count), ("name", AggFn::Count)]).unwrap();
        let total: i64 = g.column("name_count").unwrap().values.iter()
            .map(|v| v.as_i64().unwrap()).sum();
        prop_assert_eq!(total as usize, df.n_rows());
    }

    /// latest() only keeps rows whose timestamp is maximal for their group.
    #[test]
    fn latest_rows_are_maximal(rows in proptest::collection::vec((0i64..4, 0i64..10), 1..40)) {
        let df = DataFrame::from_rows(
            vec!["g", "t"],
            rows.iter().map(|&(g, t)| vec![Value::Int(g), Value::Int(t)]).collect(),
        ).unwrap();
        let l = df.latest(&["g"], "t").unwrap();
        for r in 0..l.n_rows() {
            let g = l.get(r, "g").unwrap().as_i64().unwrap();
            let t = l.get(r, "t").unwrap().as_i64().unwrap();
            let max = rows.iter().filter(|(gg, _)| *gg == g).map(|(_, tt)| *tt).max().unwrap();
            prop_assert_eq!(t, max);
        }
        // Every group present in input appears in output.
        let groups_in: std::collections::HashSet<i64> = rows.iter().map(|(g, _)| *g).collect();
        let groups_out: std::collections::HashSet<i64> = l.column("g").unwrap().values.iter()
            .map(|v| v.as_i64().unwrap()).collect();
        prop_assert_eq!(groups_in, groups_out);
    }

    /// Value text round-trip through (to_text, data_type).
    #[test]
    fn value_text_round_trip(v in arb_value()) {
        let text = v.to_text();
        let back = Value::from_text(&text, v.data_type());
        prop_assert_eq!(back, v);
    }

    /// concat length adds; filter never grows.
    #[test]
    fn concat_and_filter_lengths(df in arb_long()) {
        let doubled = df.concat(&df).unwrap();
        prop_assert_eq!(doubled.n_rows(), df.n_rows() * 2);
        let f = df.filter(|r| r.get("run").unwrap().as_i64().unwrap_or(0) % 2 == 0);
        prop_assert!(f.n_rows() <= df.n_rows());
    }
}
