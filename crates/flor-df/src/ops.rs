//! Relational operators over [`DataFrame`]: hash joins, group-by
//! aggregation, the pivoted wide view used by `flor.dataframe`, and
//! `flor.utils.latest` (paper Fig. 6).

use crate::error::{DfError, DfResult};
use crate::frame::{Column, DataFrame};
use crate::value::Value;
use std::collections::HashMap;

/// Join flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only matching rows.
    Inner,
    /// Keep all left rows; unmatched right columns become null.
    Left,
    /// Keep all rows from both sides.
    Outer,
}

/// Aggregate functions for [`DataFrame::group_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Count of non-null values.
    Count,
    /// Numeric sum (nulls skipped).
    Sum,
    /// Numeric mean (nulls skipped).
    Mean,
    /// Minimum by total value order.
    Min,
    /// Maximum by total value order.
    Max,
    /// First non-null value in row order.
    First,
    /// Last non-null value in row order.
    Last,
}

impl AggFn {
    /// Column-name suffix used for the output (`loss_mean` etc.).
    pub fn suffix(&self) -> &'static str {
        match self {
            AggFn::Count => "count",
            AggFn::Sum => "sum",
            AggFn::Mean => "mean",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::First => "first",
            AggFn::Last => "last",
        }
    }

    fn apply(&self, values: &[&Value]) -> Value {
        let non_null: Vec<&&Value> = values.iter().filter(|v| !v.is_null()).collect();
        match self {
            AggFn::Count => Value::Int(non_null.len() as i64),
            AggFn::Sum => {
                let mut acc = 0.0;
                let mut any_int = true;
                let mut any = false;
                for v in &non_null {
                    if let Some(f) = v.as_f64() {
                        acc += f;
                        any = true;
                        if !matches!(***v, Value::Int(_) | Value::Bool(_)) {
                            any_int = false;
                        }
                    }
                }
                if !any {
                    Value::Null
                } else if any_int {
                    Value::Int(acc as i64)
                } else {
                    Value::Float(acc)
                }
            }
            AggFn::Mean => {
                let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
                if nums.is_empty() {
                    Value::Null
                } else {
                    Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            AggFn::Min => non_null
                .iter()
                .map(|v| (**v).clone())
                .min()
                .unwrap_or(Value::Null),
            AggFn::Max => non_null
                .iter()
                .map(|v| (**v).clone())
                .max()
                .unwrap_or(Value::Null),
            AggFn::First => non_null
                .first()
                .map(|v| (***v).clone())
                .unwrap_or(Value::Null),
            AggFn::Last => non_null
                .last()
                .map(|v| (***v).clone())
                .unwrap_or(Value::Null),
        }
    }
}

impl DataFrame {
    /// Hash join with `other` on the named key columns (same names on both
    /// sides, pandas `merge(on=...)` style). Non-key columns that collide
    /// get `_x` / `_y` suffixes.
    // audit: allow(panic) — every column name used below is checked
    // against this frame at entry (UnknownColumn otherwise), so the
    // lookups cannot fail.
    pub fn join(&self, other: &DataFrame, on: &[&str], kind: JoinKind) -> DfResult<DataFrame> {
        for k in on {
            if self.column(k).is_none() || other.column(k).is_none() {
                return Err(DfError::UnknownColumn((*k).to_string()));
            }
        }
        // Build side: hash the right frame's key tuples.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for i in 0..other.n_rows() {
            let key: Vec<Value> = on
                .iter()
                .map(|k| other.column(k).unwrap().values[i].clone())
                .collect();
            table.entry(key).or_default().push(i);
        }
        let mut left_idx: Vec<usize> = Vec::new();
        let mut right_idx: Vec<Option<usize>> = Vec::new();
        let mut matched_right = vec![false; other.n_rows()];
        for i in 0..self.n_rows() {
            let key: Vec<Value> = on
                .iter()
                .map(|k| self.column(k).unwrap().values[i].clone())
                .collect();
            match table.get(&key) {
                Some(rights) => {
                    for &r in rights {
                        left_idx.push(i);
                        right_idx.push(Some(r));
                        matched_right[r] = true;
                    }
                }
                None => {
                    if matches!(kind, JoinKind::Left | JoinKind::Outer) {
                        left_idx.push(i);
                        right_idx.push(None);
                    }
                }
            }
        }
        let outer_rights: Vec<usize> = if kind == JoinKind::Outer {
            (0..other.n_rows()).filter(|&r| !matched_right[r]).collect()
        } else {
            Vec::new()
        };

        let mut out = Vec::new();
        // Key columns come from the left (or right for outer-only rows).
        for k in on {
            let lc = self.column(k).unwrap();
            let rc = other.column(k).unwrap();
            let mut vals: Vec<Value> = left_idx.iter().map(|&i| lc.values[i].clone()).collect();
            vals.extend(outer_rights.iter().map(|&r| rc.values[r].clone()));
            out.push(Column {
                name: (*k).to_string(),
                values: vals,
            });
        }
        let n_out = left_idx.len() + outer_rights.len();
        for c in self.columns() {
            if on.contains(&c.name.as_str()) {
                continue;
            }
            let name = if other.column(&c.name).is_some() {
                format!("{}_x", c.name)
            } else {
                c.name.clone()
            };
            let mut vals: Vec<Value> = left_idx.iter().map(|&i| c.values[i].clone()).collect();
            vals.resize(n_out, Value::Null);
            out.push(Column { name, values: vals });
        }
        for c in other.columns() {
            if on.contains(&c.name.as_str()) {
                continue;
            }
            let name = if self.column(&c.name).is_some() {
                format!("{}_y", c.name)
            } else {
                c.name.clone()
            };
            let mut vals: Vec<Value> = right_idx
                .iter()
                .map(|r| match r {
                    Some(r) => c.values[*r].clone(),
                    None => Value::Null,
                })
                .collect();
            vals.extend(outer_rights.iter().map(|&r| c.values[r].clone()));
            out.push(Column { name, values: vals });
        }
        DataFrame::from_columns(out)
    }

    /// Group by `keys` and aggregate `(column, fn)` pairs. Output columns
    /// are named `col_fn` (e.g. `loss_mean`). Groups appear in order of
    /// first occurrence.
    // audit: allow(panic) — every column name used below is checked
    // against this frame at entry (UnknownColumn otherwise), so the
    // lookups cannot fail.
    pub fn group_by(&self, keys: &[&str], aggs: &[(&str, AggFn)]) -> DfResult<DataFrame> {
        for k in keys {
            if self.column(k).is_none() {
                return Err(DfError::UnknownColumn((*k).to_string()));
            }
        }
        for (c, _) in aggs {
            if self.column(c).is_none() {
                return Err(DfError::UnknownColumn((*c).to_string()));
            }
        }
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for i in 0..self.n_rows() {
            let key: Vec<Value> = keys
                .iter()
                .map(|k| self.column(k).unwrap().values[i].clone())
                .collect();
            let entry = groups.entry(key.clone()).or_default();
            if entry.is_empty() {
                order.push(key);
            }
            entry.push(i);
        }
        let mut cols: Vec<Column> = keys
            .iter()
            .map(|k| Column {
                name: (*k).to_string(),
                values: Vec::with_capacity(order.len()),
            })
            .collect();
        for key in &order {
            for (c, v) in cols.iter_mut().zip(key) {
                c.values.push(v.clone());
            }
        }
        for (cname, agg) in aggs {
            let src = self.column(cname).unwrap();
            let mut vals = Vec::with_capacity(order.len());
            for key in &order {
                let idxs = &groups[key];
                let group_vals: Vec<&Value> = idxs.iter().map(|&i| &src.values[i]).collect();
                vals.push(agg.apply(&group_vals));
            }
            cols.push(Column {
                name: format!("{cname}_{}", agg.suffix()),
                values: vals,
            });
        }
        DataFrame::from_columns(cols)
    }

    /// Pivot a long `(index..., name, value)` frame into a wide view: one
    /// output row per distinct index tuple, one output column per distinct
    /// value of `name_col`. This is exactly the transformation
    /// `flor.dataframe` applies to the `logs` table (paper §2, Fig. 3):
    /// each logging statement becomes a column.
    ///
    /// When multiple rows share (index, name) the last one wins — matching
    /// the paper's semantics where a re-logged value supersedes.
    // audit: allow(panic) — every column name used below is checked
    // against this frame at entry (UnknownColumn otherwise), so the
    // lookups cannot fail.
    pub fn pivot(&self, index: &[&str], name_col: &str, value_col: &str) -> DfResult<DataFrame> {
        for k in index {
            if self.column(k).is_none() {
                return Err(DfError::UnknownColumn((*k).to_string()));
            }
        }
        let names = self
            .column(name_col)
            .ok_or_else(|| DfError::UnknownColumn(name_col.to_string()))?;
        let values = self
            .column(value_col)
            .ok_or_else(|| DfError::UnknownColumn(value_col.to_string()))?;

        // Distinct output columns in first-seen order.
        let mut col_order: Vec<String> = Vec::new();
        let mut col_pos: HashMap<String, usize> = HashMap::new();
        for v in &names.values {
            let n = v.to_text();
            if !col_pos.contains_key(&n) {
                col_pos.insert(n.clone(), col_order.len());
                col_order.push(n);
            }
        }
        // Distinct index tuples in first-seen order.
        let mut row_order: Vec<Vec<Value>> = Vec::new();
        let mut row_pos: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut cells: Vec<Vec<Value>> = Vec::new();
        for i in 0..self.n_rows() {
            let key: Vec<Value> = index
                .iter()
                .map(|k| self.column(k).unwrap().values[i].clone())
                .collect();
            let r = *row_pos.entry(key.clone()).or_insert_with(|| {
                row_order.push(key);
                cells.push(vec![Value::Null; col_order.len()]);
                row_order.len() - 1
            });
            let c = col_pos[&names.values[i].to_text()];
            cells[r][c] = values.values[i].clone();
        }
        let mut cols: Vec<Column> = index
            .iter()
            .map(|k| Column {
                name: (*k).to_string(),
                values: row_order.iter().map(|key| key[0].clone()).collect(),
            })
            .collect();
        // Fix up: each index column takes its own position from the tuple.
        for (pos, col) in cols.iter_mut().enumerate() {
            col.values = row_order.iter().map(|key| key[pos].clone()).collect();
        }
        for (c, cname) in col_order.iter().enumerate() {
            cols.push(Column {
                name: cname.clone(),
                values: cells.iter().map(|row| row[c].clone()).collect(),
            });
        }
        DataFrame::from_columns(cols)
    }

    /// The inverse of [`DataFrame::pivot`]: melt wide columns back into
    /// long `(index..., name, value)` rows, skipping null cells.
    // audit: allow(panic) — every column name used below is checked
    // against this frame at entry (UnknownColumn otherwise), so the
    // lookups cannot fail.
    pub fn melt(
        &self,
        index: &[&str],
        value_cols: &[&str],
        name_col: &str,
        value_col: &str,
    ) -> DfResult<DataFrame> {
        for k in index.iter().chain(value_cols) {
            if self.column(k).is_none() {
                return Err(DfError::UnknownColumn((*k).to_string()));
            }
        }
        let mut names: Vec<String> = index.iter().map(|s| s.to_string()).collect();
        names.push(name_col.to_string());
        names.push(value_col.to_string());
        let mut rows = Vec::new();
        for i in 0..self.n_rows() {
            for vc in value_cols {
                let v = self.column(vc).unwrap().values[i].clone();
                if v.is_null() {
                    continue;
                }
                let mut row: Vec<Value> = index
                    .iter()
                    .map(|k| self.column(k).unwrap().values[i].clone())
                    .collect();
                row.push(Value::from(*vc));
                row.push(v);
                rows.push(row);
            }
        }
        DataFrame::from_rows(names, rows)
    }

    /// `flor.utils.latest` (paper Fig. 6): keep, for each distinct tuple of
    /// `group` columns, only the rows carrying the maximum `time_col` value.
    // audit: allow(panic) — every column name used below is checked
    // against this frame at entry (UnknownColumn otherwise), so the
    // lookups cannot fail.
    pub fn latest(&self, group: &[&str], time_col: &str) -> DfResult<DataFrame> {
        let tc = self
            .column(time_col)
            .ok_or_else(|| DfError::UnknownColumn(time_col.to_string()))?;
        for k in group {
            if self.column(k).is_none() {
                return Err(DfError::UnknownColumn((*k).to_string()));
            }
        }
        let mut max_ts: HashMap<Vec<Value>, Value> = HashMap::new();
        for i in 0..self.n_rows() {
            let key: Vec<Value> = group
                .iter()
                .map(|k| self.column(k).unwrap().values[i].clone())
                .collect();
            let t = tc.values[i].clone();
            max_ts
                .entry(key)
                .and_modify(|m| {
                    if t > *m {
                        *m = t.clone();
                    }
                })
                .or_insert(t);
        }
        let keep: Vec<usize> = (0..self.n_rows())
            .filter(|&i| {
                let key: Vec<Value> = group
                    .iter()
                    .map(|k| self.column(k).unwrap().values[i].clone())
                    .collect();
                tc.values[i] == max_ts[&key]
            })
            .collect();
        Ok(self.take(&keep))
    }

    /// Column-wise numeric cumulative sum of `col`, as used by the paper's
    /// `get_colors` helper (Fig. 6: `astype(int).cumsum()`).
    pub fn cumsum(&self, col: &str) -> DfResult<Vec<i64>> {
        let c = self
            .column(col)
            .ok_or_else(|| DfError::UnknownColumn(col.to_string()))?;
        let mut acc = 0i64;
        let mut out = Vec::with_capacity(c.len());
        for v in &c.values {
            acc += v.as_i64().unwrap_or(0);
            out.push(acc);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn long_logs() -> DataFrame {
        // (tstamp, name, value) long format like the logs table
        DataFrame::from_rows(
            vec!["tstamp", "name", "value"],
            vec![
                vec![1.into(), "acc".into(), 0.8f64.into()],
                vec![1.into(), "recall".into(), 0.7f64.into()],
                vec![2.into(), "acc".into(), 0.9f64.into()],
                vec![2.into(), "recall".into(), 0.75f64.into()],
                vec![3.into(), "acc".into(), 0.85f64.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn pivot_long_to_wide() {
        let wide = long_logs().pivot(&["tstamp"], "name", "value").unwrap();
        assert_eq!(wide.column_names(), vec!["tstamp", "acc", "recall"]);
        assert_eq!(wide.n_rows(), 3);
        assert_eq!(wide.get(1, "acc"), Some(&Value::Float(0.9)));
        // tstamp 3 never logged recall: sparse null.
        assert_eq!(wide.get(2, "recall"), Some(&Value::Null));
    }

    #[test]
    fn pivot_last_write_wins() {
        let df = DataFrame::from_rows(
            vec!["k", "name", "value"],
            vec![
                vec![1.into(), "v".into(), 10.into()],
                vec![1.into(), "v".into(), 20.into()],
            ],
        )
        .unwrap();
        let wide = df.pivot(&["k"], "name", "value").unwrap();
        assert_eq!(wide.get(0, "v"), Some(&Value::Int(20)));
    }

    #[test]
    fn melt_inverts_pivot() {
        let wide = long_logs().pivot(&["tstamp"], "name", "value").unwrap();
        let long = wide
            .melt(&["tstamp"], &["acc", "recall"], "name", "value")
            .unwrap();
        // Original had 5 non-null entries.
        assert_eq!(long.n_rows(), 5);
        let re_wide = long.pivot(&["tstamp"], "name", "value").unwrap();
        assert_eq!(re_wide, wide);
    }

    #[test]
    fn inner_join_basic() {
        let a = DataFrame::from_rows(
            vec!["k", "va"],
            vec![
                vec![1.into(), "x".into()],
                vec![2.into(), "y".into()],
                vec![3.into(), "z".into()],
            ],
        )
        .unwrap();
        let b = DataFrame::from_rows(
            vec!["k", "vb"],
            vec![vec![2.into(), 20.into()], vec![3.into(), 30.into()]],
        )
        .unwrap();
        let j = a.join(&b, &["k"], JoinKind::Inner).unwrap();
        assert_eq!(j.n_rows(), 2);
        assert_eq!(j.column_names(), vec!["k", "va", "vb"]);
        assert_eq!(j.get(0, "vb"), Some(&Value::Int(20)));
    }

    #[test]
    fn left_join_nulls_unmatched() {
        let a = DataFrame::from_rows(vec!["k"], vec![vec![1.into()], vec![9.into()]]).unwrap();
        let b = DataFrame::from_rows(vec!["k", "v"], vec![vec![1.into(), "hit".into()]]).unwrap();
        let j = a.join(&b, &["k"], JoinKind::Left).unwrap();
        assert_eq!(j.n_rows(), 2);
        assert_eq!(j.get(1, "v"), Some(&Value::Null));
    }

    #[test]
    fn outer_join_keeps_both() {
        let a = DataFrame::from_rows(vec!["k", "va"], vec![vec![1.into(), 10.into()]]).unwrap();
        let b = DataFrame::from_rows(vec!["k", "vb"], vec![vec![2.into(), 20.into()]]).unwrap();
        let j = a.join(&b, &["k"], JoinKind::Outer).unwrap();
        assert_eq!(j.n_rows(), 2);
        assert_eq!(j.get(0, "vb"), Some(&Value::Null));
        assert_eq!(j.get(1, "k"), Some(&Value::Int(2)));
        assert_eq!(j.get(1, "va"), Some(&Value::Null));
        assert_eq!(j.get(1, "vb"), Some(&Value::Int(20)));
    }

    #[test]
    fn join_one_to_many_multiplies() {
        let a = DataFrame::from_rows(vec!["k"], vec![vec![1.into()]]).unwrap();
        let b = DataFrame::from_rows(
            vec!["k", "v"],
            vec![vec![1.into(), 1.into()], vec![1.into(), 2.into()]],
        )
        .unwrap();
        let j = a.join(&b, &["k"], JoinKind::Inner).unwrap();
        assert_eq!(j.n_rows(), 2);
    }

    #[test]
    fn join_suffixes_collisions() {
        let a = DataFrame::from_rows(vec!["k", "v"], vec![vec![1.into(), "a".into()]]).unwrap();
        let b = DataFrame::from_rows(vec!["k", "v"], vec![vec![1.into(), "b".into()]]).unwrap();
        let j = a.join(&b, &["k"], JoinKind::Inner).unwrap();
        assert_eq!(j.column_names(), vec!["k", "v_x", "v_y"]);
    }

    #[test]
    fn group_by_aggregates() {
        let df = DataFrame::from_rows(
            vec!["g", "x"],
            vec![
                vec!["a".into(), 1.into()],
                vec!["a".into(), 3.into()],
                vec!["b".into(), 5.into()],
            ],
        )
        .unwrap();
        let g = df
            .group_by(
                &["g"],
                &[
                    ("x", AggFn::Sum),
                    ("x", AggFn::Mean),
                    ("x", AggFn::Count),
                    ("x", AggFn::Min),
                    ("x", AggFn::Max),
                ],
            )
            .unwrap();
        assert_eq!(g.n_rows(), 2);
        assert_eq!(g.get(0, "x_sum"), Some(&Value::Int(4)));
        assert_eq!(g.get(0, "x_mean"), Some(&Value::Float(2.0)));
        assert_eq!(g.get(0, "x_count"), Some(&Value::Int(2)));
        assert_eq!(g.get(1, "x_min"), Some(&Value::Int(5)));
        assert_eq!(g.get(1, "x_max"), Some(&Value::Int(5)));
    }

    #[test]
    fn group_by_first_last_skip_null() {
        let df = DataFrame::from_rows(
            vec!["g", "x"],
            vec![
                vec!["a".into(), Value::Null],
                vec!["a".into(), 7.into()],
                vec!["a".into(), Value::Null],
            ],
        )
        .unwrap();
        let g = df
            .group_by(&["g"], &[("x", AggFn::First), ("x", AggFn::Last)])
            .unwrap();
        assert_eq!(g.get(0, "x_first"), Some(&Value::Int(7)));
        assert_eq!(g.get(0, "x_last"), Some(&Value::Int(7)));
    }

    #[test]
    fn latest_keeps_max_time_per_group() {
        let df = DataFrame::from_rows(
            vec!["doc", "tstamp", "v"],
            vec![
                vec!["d1".into(), 1.into(), "old".into()],
                vec!["d1".into(), 5.into(), "new".into()],
                vec!["d2".into(), 2.into(), "only".into()],
                vec!["d1".into(), 5.into(), "new2".into()],
            ],
        )
        .unwrap();
        let l = df.latest(&["doc"], "tstamp").unwrap();
        assert_eq!(l.n_rows(), 3); // both tstamp=5 rows of d1 + d2's row
        assert!(l
            .column("v")
            .unwrap()
            .values
            .iter()
            .all(|v| v.to_text() != "old"));
    }

    #[test]
    fn cumsum_matches_fig6_color_logic() {
        // first_page booleans -> page colors, as in get_colors()
        let df = DataFrame::from_rows(
            vec!["first_page"],
            vec![
                vec![true.into()],
                vec![false.into()],
                vec![true.into()],
                vec![false.into()],
            ],
        )
        .unwrap();
        let colors: Vec<i64> = df
            .cumsum("first_page")
            .unwrap()
            .iter()
            .map(|c| c - 1)
            .collect();
        assert_eq!(colors, vec![0, 0, 1, 1]);
    }

    #[test]
    fn unknown_columns_error() {
        let df = long_logs();
        assert!(df.pivot(&["zzz"], "name", "value").is_err());
        assert!(df.group_by(&["zzz"], &[]).is_err());
        assert!(df.latest(&["zzz"], "tstamp").is_err());
        assert!(df.join(&df, &["zzz"], JoinKind::Inner).is_err());
        assert!(df.cumsum("zzz").is_err());
    }
}
