//! Dynamically-typed cell values for DataFrame columns.
//!
//! FlorDB's `logs` table stores every logged value as text plus a type tag
//! (paper Fig. 1, `value_type`). The dataframe layer works with a small
//! dynamic value enum so pivoted views can mix types per column, exactly as
//! `flor.dataframe` does in the paper.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a [`Value`], mirroring the `value_type` tag in the paper's
/// `logs` table (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Absence of a value; pivoted views are sparse.
    Null,
    /// Boolean flag.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// The integer `value_type` tag of paper Fig. 1 for this type.
    pub fn tag(self) -> i64 {
        match self {
            DataType::Null => 0,
            DataType::Bool => 1,
            DataType::Int => 2,
            DataType::Float => 3,
            DataType::Str => 4,
        }
    }

    /// Inverse of [`DataType::tag`]; unknown tags decode as `Str`, the
    /// lossless fallback for text-stored values.
    pub fn from_tag(tag: i64) -> DataType {
        match tag {
            0 => DataType::Null,
            1 => DataType::Bool,
            2 => DataType::Int,
            3 => DataType::Float,
            _ => DataType::Str,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Null => "null",
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A dynamically typed cell value.
///
/// `Value` implements a *total* order and total equality (floats compare by
/// IEEE total ordering) so it can serve as a group-by or join key.
///
/// Strings are `Arc<str>`: cloning a `Value` — which every scan, pivot,
/// delta application and snapshot materialization does per cell — bumps a
/// reference count instead of copying the bytes. One logged string is
/// allocated once and shared by the WAL-recovered row, every segment it
/// is compacted into, every materialized view cell and every query
/// result.
#[derive(Debug, Clone)]
pub enum Value {
    /// Missing / NA.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String (shared; clones are reference-count bumps).
    Str(Arc<str>),
}

impl Value {
    /// The [`DataType`] tag of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// True iff the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints and floats coerce to `f64`, bools to 0/1.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view (no float truncation — floats return `None` unless
    /// exactly integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// String view (only for `Str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(&**s),
            _ => None,
        }
    }

    /// Shared string view (only for `Str`): an `Arc` clone, no byte copy.
    pub fn as_shared_str(&self) -> Option<Arc<str>> {
        match self {
            Value::Str(s) => Some(Arc::clone(s)),
            _ => None,
        }
    }

    /// Boolean view (only for `Bool`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render the value the way the paper's `logs.value` text column stores
    /// it: a plain string with no quoting.
    pub fn to_text(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(s) => s.to_string(),
        }
    }

    /// Parse a `(text, type-tag)` pair back into a `Value`; the inverse of
    /// [`Value::to_text`] given the stored `value_type`.
    pub fn from_text(text: &str, ty: DataType) -> Value {
        match ty {
            DataType::Null => Value::Null,
            DataType::Bool => match text {
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                _ => Value::Null,
            },
            DataType::Int => text.parse().map(Value::Int).unwrap_or(Value::Null),
            DataType::Float => text.parse().map(Value::Float).unwrap_or(Value::Null),
            DataType::Str => Value::Str(Arc::from(text)),
        }
    }

    /// Rank used to order values of different types; matches SQLite's type
    /// affinity order (null < numeric < text).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) | Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

/// Format a float so integral values keep a trailing `.0` and parsing
/// round-trips (`format_float(2.0) == "2.0"`, not `"2"`).
fn format_float(f: f64) -> String {
    if f.is_finite() && f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Bool(a), Int(b)) => (*a as i64).cmp(b),
            (Int(a), Bool(b)) => a.cmp(&(*b as i64)),
            (Bool(a), Float(b)) => ((*a as i64) as f64).total_cmp(b),
            (Float(a), Bool(b)) => a.total_cmp(&((*b as i64) as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                // Bools hash like the integers they compare equal to.
                1u8.hash(state);
                (*b as i64).hash(state);
            }
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() && f.abs() < i64::MAX as f64 {
                    // Integral floats hash like their integer equivalents so
                    // `Int(2) == Float(2.0)` implies equal hashes.
                    1u8.hash(state);
                    (*f as i64).hash(state);
                } else {
                    2u8.hash(state);
                    f.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NaN"), // pandas-style display of missing cells
            other => f.write_str(&other.to_text()),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Float(f as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s))
    }
}
impl From<Arc<str>> for Value {
    fn from(s: Arc<str>) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        match o {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn type_tags() {
        assert_eq!(Value::Null.data_type(), DataType::Null);
        assert_eq!(Value::Bool(true).data_type(), DataType::Bool);
        assert_eq!(Value::Int(3).data_type(), DataType::Int);
        assert_eq!(Value::Float(3.5).data_type(), DataType::Float);
        assert_eq!(Value::Str("x".into()).data_type(), DataType::Str);
    }

    #[test]
    fn tags_round_trip() {
        for ty in [
            DataType::Null,
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Str,
        ] {
            assert_eq!(DataType::from_tag(ty.tag()), ty);
        }
        assert_eq!(DataType::from_tag(99), DataType::Str);
    }

    #[test]
    fn text_round_trip_int() {
        let v = Value::Int(-42);
        assert_eq!(Value::from_text(&v.to_text(), DataType::Int), v);
    }

    #[test]
    fn text_round_trip_float_integral() {
        let v = Value::Float(2.0);
        assert_eq!(v.to_text(), "2.0");
        assert_eq!(Value::from_text(&v.to_text(), DataType::Float), v);
    }

    #[test]
    fn text_round_trip_float_fractional() {
        let v = Value::Float(0.12345);
        assert_eq!(Value::from_text(&v.to_text(), DataType::Float), v);
    }

    #[test]
    fn text_round_trip_bool() {
        for b in [true, false] {
            let v = Value::Bool(b);
            assert_eq!(Value::from_text(&v.to_text(), DataType::Bool), v);
        }
    }

    #[test]
    fn text_round_trip_str() {
        let v = Value::Str("hello world".into());
        assert_eq!(Value::from_text(&v.to_text(), DataType::Str), v);
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(Value::Bool(true), Value::Int(1));
        assert_ne!(Value::Int(2), Value::Float(2.5));
    }

    #[test]
    fn equal_values_hash_equal() {
        let pairs = [
            (Value::Int(7), Value::Float(7.0)),
            (Value::Bool(false), Value::Int(0)),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn ordering_across_types() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(5) < Value::Str("a".into()));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn nan_total_order() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(2.5f64)), Value::Float(2.5));
    }

    #[test]
    fn display_null_is_nan() {
        assert_eq!(Value::Null.to_string(), "NaN");
        assert_eq!(Value::Str("a".into()).to_string(), "a");
    }
}
