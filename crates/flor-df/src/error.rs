//! Error type for dataframe operations.

use std::fmt;

/// Errors produced by [`crate::DataFrame`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfError {
    /// Referenced a column that does not exist.
    UnknownColumn(String),
    /// Two columns with the same name.
    DuplicateColumn(String),
    /// Column lengths disagree.
    LengthMismatch {
        /// Offending column (or row descriptor).
        column: String,
        /// Expected length.
        expected: usize,
        /// Observed length.
        actual: usize,
    },
}

impl fmt::Display for DfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfError::UnknownColumn(c) => write!(f, "unknown column: {c:?}"),
            DfError::DuplicateColumn(c) => write!(f, "duplicate column: {c:?}"),
            DfError::LengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "length mismatch for {column:?}: expected {expected}, got {actual}"
            ),
        }
    }
}

impl std::error::Error for DfError {}

/// Result alias for dataframe operations.
pub type DfResult<T> = Result<T, DfError>;
