//! The [`DataFrame`] type: a small column-oriented table with the operators
//! `flor.dataframe` needs — select, filter, sort, join, group-by, pivot and
//! `latest`.

use crate::error::{DfError, DfResult};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// A named column of [`Value`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name; unique within a frame.
    pub name: String,
    /// Cell values, one per row.
    pub values: Vec<Value>,
}

impl Column {
    /// Create a column from anything convertible to values.
    pub fn new<N: Into<String>, V: Into<Value>>(name: N, values: Vec<V>) -> Self {
        Column {
            name: name.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Count of non-null cells.
    pub fn count_non_null(&self) -> usize {
        self.values.iter().filter(|v| !v.is_null()).count()
    }

    /// True iff any cell is null.
    pub fn has_nulls(&self) -> bool {
        self.values.iter().any(Value::is_null)
    }
}

/// A column-oriented table.
///
/// Invariant: all columns have identical length and unique names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataFrame {
    columns: Vec<Column>,
}

/// A borrowed view of one row, used by filter predicates and row iteration.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    frame: &'a DataFrame,
    idx: usize,
}

impl<'a> RowView<'a> {
    /// Value of the named column at this row, or `None` if the column does
    /// not exist.
    pub fn get(&self, name: &str) -> Option<&'a Value> {
        self.frame.column(name).map(|c| &c.values[self.idx])
    }

    /// Row index within the frame.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// The row as an owned vector, in column order.
    pub fn to_vec(&self) -> Vec<Value> {
        self.frame
            .columns
            .iter()
            .map(|c| c.values[self.idx].clone())
            .collect()
    }
}

impl DataFrame {
    /// An empty frame with no columns and no rows.
    pub fn new() -> Self {
        DataFrame::default()
    }

    /// Build a frame from columns, validating the length/name invariants.
    pub fn from_columns(columns: Vec<Column>) -> DfResult<Self> {
        if let Some(first) = columns.first() {
            let n = first.len();
            for c in &columns {
                if c.len() != n {
                    return Err(DfError::LengthMismatch {
                        column: c.name.clone(),
                        expected: n,
                        actual: c.len(),
                    });
                }
            }
        }
        let mut seen = HashMap::new();
        for c in &columns {
            if seen.insert(c.name.clone(), ()).is_some() {
                return Err(DfError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(DataFrame { columns })
    }

    /// Build a frame from column names plus row-major data.
    pub fn from_rows<N: Into<String>>(names: Vec<N>, rows: Vec<Vec<Value>>) -> DfResult<Self> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let mut cols: Vec<Column> = names
            .iter()
            .map(|n| Column {
                name: n.clone(),
                values: Vec::with_capacity(rows.len()),
            })
            .collect();
        for (i, row) in rows.into_iter().enumerate() {
            if row.len() != cols.len() {
                return Err(DfError::LengthMismatch {
                    column: format!("row {i}"),
                    expected: cols.len(),
                    actual: row.len(),
                });
            }
            for (c, v) in cols.iter_mut().zip(row) {
                c.values.push(v);
            }
        }
        DataFrame::from_columns(cols)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// True iff the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Borrow all columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Cell accessor.
    pub fn get(&self, row: usize, col: &str) -> Option<&Value> {
        self.column(col).and_then(|c| c.values.get(row))
    }

    /// Append a column; must match the row count (or be the first column).
    pub fn add_column(&mut self, col: Column) -> DfResult<()> {
        if !self.columns.is_empty() && col.len() != self.n_rows() {
            return Err(DfError::LengthMismatch {
                column: col.name.clone(),
                expected: self.n_rows(),
                actual: col.len(),
            });
        }
        if self.column(&col.name).is_some() {
            return Err(DfError::DuplicateColumn(col.name));
        }
        self.columns.push(col);
        Ok(())
    }

    /// Insert a column at position `pos` (shifting later columns right);
    /// must match the row count unless the frame is empty. Incremental
    /// view maintenance uses this to keep late-discovered dimension
    /// columns in the same position a from-scratch pivot would put them.
    pub fn insert_column(&mut self, pos: usize, col: Column) -> DfResult<()> {
        if !self.columns.is_empty() && col.len() != self.n_rows() {
            return Err(DfError::LengthMismatch {
                column: col.name.clone(),
                expected: self.n_rows(),
                actual: col.len(),
            });
        }
        if self.column(&col.name).is_some() {
            return Err(DfError::DuplicateColumn(col.name));
        }
        let pos = pos.min(self.columns.len());
        self.columns.insert(pos, col);
        Ok(())
    }

    /// Overwrite one cell in place. Errors on an unknown column; panics on
    /// a row index past the end (same contract as slice indexing).
    pub fn set_cell(&mut self, row: usize, col: &str, value: Value) -> DfResult<()> {
        let n = self.n_rows();
        match self.columns.iter_mut().find(|c| c.name == col) {
            Some(c) => {
                assert!(row < n, "row {row} out of bounds ({n} rows)");
                c.values[row] = value;
                Ok(())
            }
            None => Err(DfError::UnknownColumn(col.to_string())),
        }
    }

    /// Append a row given `(name, value)` pairs; missing columns get null,
    /// unknown names create new null-backfilled columns (NoSQL-style writes,
    /// per the paper's "flexible data writes" goal).
    pub fn push_row(&mut self, entries: &[(&str, Value)]) {
        let n = self.n_rows();
        for (name, _) in entries {
            if self.column(name).is_none() {
                self.columns.push(Column {
                    name: (*name).to_string(),
                    values: vec![Value::Null; n],
                });
            }
        }
        for col in &mut self.columns {
            let v = entries
                .iter()
                .find(|(name, _)| *name == col.name)
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::Null);
            col.values.push(v);
        }
    }

    /// Iterate row views.
    pub fn rows(&self) -> impl Iterator<Item = RowView<'_>> {
        (0..self.n_rows()).map(move |idx| RowView { frame: self, idx })
    }

    /// Project a subset of columns, in the given order.
    pub fn select(&self, names: &[&str]) -> DfResult<DataFrame> {
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            let c = self
                .column(n)
                .ok_or_else(|| DfError::UnknownColumn(n.to_string()))?;
            cols.push(c.clone());
        }
        DataFrame::from_columns(cols)
    }

    /// Drop columns by name (unknown names ignored).
    pub fn drop(&self, names: &[&str]) -> DataFrame {
        DataFrame {
            columns: self
                .columns
                .iter()
                .filter(|c| !names.contains(&c.name.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Rename a column.
    pub fn rename(&mut self, from: &str, to: &str) -> DfResult<()> {
        if self.column(to).is_some() {
            return Err(DfError::DuplicateColumn(to.to_string()));
        }
        match self.columns.iter_mut().find(|c| c.name == from) {
            Some(c) => {
                c.name = to.to_string();
                Ok(())
            }
            None => Err(DfError::UnknownColumn(from.to_string())),
        }
    }

    /// Keep rows where `pred` returns true.
    pub fn filter<F: FnMut(RowView<'_>) -> bool>(&self, mut pred: F) -> DataFrame {
        let keep: Vec<usize> = (0..self.n_rows())
            .filter(|&idx| pred(RowView { frame: self, idx }))
            .collect();
        self.take(&keep)
    }

    /// Keep rows where `col == value` (pandas' `df[df.col == v]`).
    pub fn filter_eq(&self, col: &str, value: &Value) -> DataFrame {
        self.filter(|r| r.get(col) == Some(value))
    }

    /// Keep rows where `keep` accepts the cell of the named column —
    /// the row-level filter the query builder's residual pass and its
    /// from-scratch collect path share. Unlike [`DataFrame::filter_eq`],
    /// an unknown column is an error, so callers choose their own
    /// missing-column semantics explicitly.
    pub fn filter_by<F: Fn(&Value) -> bool>(&self, col: &str, keep: F) -> DfResult<DataFrame> {
        let c = self
            .column(col)
            .ok_or_else(|| DfError::UnknownColumn(col.to_string()))?;
        let idx: Vec<usize> = c
            .values
            .iter()
            .enumerate()
            .filter(|(_, v)| keep(v))
            .map(|(i, _)| i)
            .collect();
        Ok(self.take(&idx))
    }

    /// Materialise the rows at `indices` (in order, duplicates allowed).
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        DataFrame {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    values: indices.iter().map(|&i| c.values[i].clone()).collect(),
                })
                .collect(),
        }
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let idx: Vec<usize> = (0..self.n_rows().min(n)).collect();
        self.take(&idx)
    }

    /// Stable sort by the named key columns, each ascending (`true`) or
    /// descending (`false`).
    // audit: allow(panic) — every column name used below is checked
    // against this frame at entry (UnknownColumn otherwise), so the
    // lookups cannot fail.
    pub fn sort_by(&self, keys: &[(&str, bool)]) -> DfResult<DataFrame> {
        for (k, _) in keys {
            if self.column(k).is_none() {
                return Err(DfError::UnknownColumn((*k).to_string()));
            }
        }
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        idx.sort_by(|&a, &b| {
            for (k, asc) in keys {
                let col = self.column(k).expect("validated above");
                let ord = col.values[a].cmp(&col.values[b]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(self.take(&idx))
    }

    /// Distinct rows over the given key columns, keeping first occurrence.
    // audit: allow(panic) — every column name used below is checked
    // against this frame at entry (UnknownColumn otherwise), so the
    // lookups cannot fail.
    pub fn unique_by(&self, keys: &[&str]) -> DfResult<DataFrame> {
        for k in keys {
            if self.column(k).is_none() {
                return Err(DfError::UnknownColumn((*k).to_string()));
            }
        }
        let mut seen: HashMap<Vec<Value>, ()> = HashMap::new();
        let mut keep = Vec::new();
        for idx in 0..self.n_rows() {
            let key: Vec<Value> = keys
                .iter()
                .map(|k| self.column(k).unwrap().values[idx].clone())
                .collect();
            if seen.insert(key, ()).is_none() {
                keep.push(idx);
            }
        }
        Ok(self.take(&keep))
    }

    /// Vertically concatenate two frames with identical column names
    /// (order-insensitive; `other`'s columns are aligned by name).
    pub fn concat(&self, other: &DataFrame) -> DfResult<DataFrame> {
        if self.columns.is_empty() {
            return Ok(other.clone());
        }
        if other.columns.is_empty() {
            return Ok(self.clone());
        }
        let mut cols = self.columns.clone();
        for c in &mut cols {
            let oc = other
                .column(&c.name)
                .ok_or_else(|| DfError::UnknownColumn(c.name.clone()))?;
            c.values.extend(oc.values.iter().cloned());
        }
        if other.n_cols() != self.n_cols() {
            let extra = other
                .columns
                .iter()
                .find(|c| self.column(&c.name).is_none())
                .map(|c| c.name.clone())
                .unwrap_or_default();
            return Err(DfError::UnknownColumn(extra));
        }
        DataFrame::from_columns(cols)
    }

    /// Row-major dump (useful in tests).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        self.rows().map(|r| r.to_vec()).collect()
    }
}

impl fmt::Display for DataFrame {
    /// Pretty-print as an aligned text table, pandas-style, with a trailing
    /// `[N rows x M columns]` footer.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_ROWS: usize = 30;
        const MAX_WIDTH: usize = 28;
        let clip = |s: String| {
            if s.chars().count() > MAX_WIDTH {
                let cut: String = s.chars().take(MAX_WIDTH - 3).collect();
                format!("{cut}...")
            } else {
                s
            }
        };
        let header: Vec<String> = self.columns.iter().map(|c| clip(c.name.clone())).collect();
        let shown = self.n_rows().min(MAX_ROWS);
        let mut grid: Vec<Vec<String>> = Vec::with_capacity(shown);
        for i in 0..shown {
            grid.push(
                self.columns
                    .iter()
                    .map(|c| clip(c.values[i].to_string()))
                    .collect(),
            );
        }
        let mut widths: Vec<usize> = header.iter().map(String::len).collect();
        for row in &grid {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let idx_w = shown.saturating_sub(1).to_string().len().max(1);
        write!(f, "{:>idx_w$} ", "")?;
        for (h, w) in header.iter().zip(&widths) {
            write!(f, " {h:>w$}")?;
        }
        writeln!(f)?;
        for (i, row) in grid.iter().enumerate() {
            write!(f, "{i:>idx_w$} ")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:>w$}")?;
            }
            writeln!(f)?;
        }
        if self.n_rows() > MAX_ROWS {
            writeln!(f, "...")?;
        }
        write!(f, "[{} rows x {} columns]", self.n_rows(), self.n_cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::new("name", vec!["a", "b", "c", "a"]),
            Column::new("x", vec![1i64, 2, 3, 4]),
            Column::new("y", vec![1.5f64, 2.5, 3.5, 4.5]),
        ])
        .unwrap()
    }

    #[test]
    fn construction_checks_lengths() {
        let err = DataFrame::from_columns(vec![
            Column::new("a", vec![1i64]),
            Column::new("b", vec![1i64, 2]),
        ])
        .unwrap_err();
        assert!(matches!(err, DfError::LengthMismatch { .. }));
    }

    #[test]
    fn construction_checks_duplicates() {
        let err = DataFrame::from_columns(vec![
            Column::new("a", vec![1i64]),
            Column::new("a", vec![2i64]),
        ])
        .unwrap_err();
        assert!(matches!(err, DfError::DuplicateColumn(_)));
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![
            vec![Value::Int(1), Value::Str("x".into())],
            vec![Value::Int(2), Value::Str("y".into())],
        ];
        let df = DataFrame::from_rows(vec!["i", "s"], rows.clone()).unwrap();
        assert_eq!(df.to_rows(), rows);
    }

    #[test]
    fn select_projects_in_order() {
        let df = sample().select(&["y", "name"]).unwrap();
        assert_eq!(df.column_names(), vec!["y", "name"]);
        assert_eq!(df.n_rows(), 4);
    }

    #[test]
    fn select_unknown_errors() {
        assert!(matches!(
            sample().select(&["zzz"]),
            Err(DfError::UnknownColumn(_))
        ));
    }

    #[test]
    fn filter_eq_matches() {
        let df = sample().filter_eq("name", &Value::from("a"));
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.get(1, "x"), Some(&Value::Int(4)));
    }

    #[test]
    fn filter_by_predicate_and_unknown_column() {
        let df = sample()
            .filter_by("x", |v| v.as_i64().unwrap() > 2)
            .unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.get(0, "name"), Some(&Value::from("c")));
        assert!(matches!(
            sample().filter_by("zzz", |_| true),
            Err(DfError::UnknownColumn(_))
        ));
    }

    #[test]
    fn sort_desc_then_asc() {
        let df = sample().sort_by(&[("name", false), ("x", true)]).unwrap();
        let names: Vec<_> = df
            .column("name")
            .unwrap()
            .values
            .iter()
            .map(|v| v.to_text())
            .collect();
        assert_eq!(names, vec!["c", "b", "a", "a"]);
        assert_eq!(df.get(2, "x"), Some(&Value::Int(1)));
    }

    #[test]
    fn push_row_backfills_nulls() {
        let mut df = DataFrame::new();
        df.push_row(&[("a", Value::Int(1))]);
        df.push_row(&[("a", Value::Int(2)), ("b", Value::from("hi"))]);
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.get(0, "b"), Some(&Value::Null));
        assert_eq!(df.get(1, "b"), Some(&Value::from("hi")));
    }

    #[test]
    fn unique_by_keeps_first() {
        let df = sample().unique_by(&["name"]).unwrap();
        assert_eq!(df.n_rows(), 3);
        assert_eq!(df.get(0, "x"), Some(&Value::Int(1)));
    }

    #[test]
    fn concat_aligns_by_name() {
        let a = sample();
        let b = sample().select(&["y", "x", "name"]).unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.n_rows(), 8);
        assert_eq!(c.column_names(), vec!["name", "x", "y"]);
        assert_eq!(c.get(4, "x"), Some(&Value::Int(1)));
    }

    #[test]
    fn concat_mismatch_errors() {
        let a = sample();
        let b = DataFrame::from_columns(vec![Column::new("other", vec![1i64])]).unwrap();
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn head_and_take() {
        let df = sample().head(2);
        assert_eq!(df.n_rows(), 2);
        let df2 = sample().take(&[3, 0, 0]);
        assert_eq!(df2.get(0, "x"), Some(&Value::Int(4)));
        assert_eq!(df2.get(2, "x"), Some(&Value::Int(1)));
    }

    #[test]
    fn rename_and_drop() {
        let mut df = sample();
        df.rename("x", "x2").unwrap();
        assert!(df.column("x2").is_some());
        assert!(df.rename("missing", "z").is_err());
        assert!(df.rename("y", "x2").is_err());
        let dropped = df.drop(&["x2", "nope"]);
        assert_eq!(dropped.column_names(), vec!["name", "y"]);
    }

    #[test]
    fn display_formats() {
        let s = sample().to_string();
        assert!(s.contains("name"));
        assert!(s.contains("[4 rows x 3 columns]"));
    }

    #[test]
    fn display_clips_long_cells() {
        let long = "x".repeat(100);
        let df = DataFrame::from_columns(vec![Column::new("c", vec![long.as_str()])]).unwrap();
        let s = df.to_string();
        assert!(s.contains("..."));
        assert!(!s.contains(&long));
    }

    #[test]
    fn insert_column_positions_and_validates() {
        let mut df = sample();
        df.insert_column(1, Column::new("z", vec![9i64, 8, 7, 6]))
            .unwrap();
        assert_eq!(df.column_names(), vec!["name", "z", "x", "y"]);
        assert!(df
            .insert_column(0, Column::new("z", vec![1i64, 2, 3, 4]))
            .is_err());
        assert!(df.insert_column(0, Column::new("w", vec![1i64])).is_err());
        // Past-the-end position clamps to append.
        df.insert_column(99, Column::new("tail", vec![0i64, 0, 0, 0]))
            .unwrap();
        assert_eq!(df.column_names().last(), Some(&"tail"));
    }

    #[test]
    fn set_cell_overwrites() {
        let mut df = sample();
        df.set_cell(2, "x", Value::Int(99)).unwrap();
        assert_eq!(df.get(2, "x"), Some(&Value::Int(99)));
        assert!(df.set_cell(0, "missing", Value::Null).is_err());
    }

    #[test]
    fn add_column_validates() {
        let mut df = sample();
        assert!(df.add_column(Column::new("z", vec![1i64, 2, 3, 4])).is_ok());
        assert!(df.add_column(Column::new("w", vec![1i64])).is_err());
        assert!(df
            .add_column(Column::new("z", vec![1i64, 2, 3, 4]))
            .is_err());
    }
}
