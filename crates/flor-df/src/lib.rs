//! # flor-df — columnar DataFrames for FlorDB
//!
//! A compact, dependency-free DataFrame library providing the relational
//! view layer of FlorDB (CIDR 2025). The paper exposes log data "directly as
//! tabular data using standard Python dataframes"; this crate is the Rust
//! equivalent, implementing exactly the operators `flor.dataframe` relies
//! on:
//!
//! * dynamic [`Value`] cells matching the `value_type`-tagged text storage
//!   of the paper's `logs` table (Fig. 1);
//! * projection, filtering, sorting, vertical concat;
//! * hash [`DataFrame::join`] (inner/left/outer) for `logs ⋈ loops ⋈ ts2vid`;
//! * [`DataFrame::group_by`] aggregation;
//! * [`DataFrame::pivot`] — the long→wide transform that turns each logging
//!   statement into a column (paper §2, Fig. 3);
//! * [`DataFrame::latest`] — `flor.utils.latest` (paper Fig. 6).
//!
//! ```
//! use flor_df::{DataFrame, Value};
//! let logs = DataFrame::from_rows(
//!     vec!["tstamp", "value_name", "value"],
//!     vec![
//!         vec![1.into(), "acc".into(), 0.8.into()],
//!         vec![1.into(), "recall".into(), 0.7.into()],
//!         vec![2.into(), "acc".into(), 0.9.into()],
//!     ],
//! ).unwrap();
//! let wide = logs.pivot(&["tstamp"], "value_name", "value").unwrap();
//! assert_eq!(wide.get(1, "acc"), Some(&Value::Float(0.9)));
//! ```

#![warn(missing_docs)]

mod error;
mod frame;
mod ops;
mod value;

pub use error::{DfError, DfResult};
pub use frame::{Column, DataFrame, RowView};
pub use ops::{AggFn, JoinKind};
pub use value::{DataType, Value};
