//! Git-style content-addressed objects: blobs, trees and commits.
//!
//! Encodings are deliberately textual (like git's loose objects) so they are
//! debuggable; object ids are the SHA-256 of the encoded bytes, giving the
//! usual properties: identical content deduplicates, any change changes the
//! id, and parent links form a tamper-evident history — the substrate for
//! the paper's Change context (§3, "FlorDB manages change context using Git
//! version control").

use crate::sha256::sha256_hex;
use std::collections::BTreeMap;
use std::fmt;

/// A content-addressed object id (lowercase hex SHA-256).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub String);

impl Oid {
    /// Short prefix for display (like `git log --oneline`).
    pub fn short(&self) -> &str {
        &self.0[..self.0.len().min(8)]
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Any storable object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Object {
    /// File contents.
    Blob(Blob),
    /// Directory listing: name → blob id.
    Tree(Tree),
    /// A committed snapshot with ancestry.
    Commit(Commit),
}

/// File contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blob {
    /// Raw text.
    pub data: String,
}

/// A flat snapshot of the working tree: path → blob oid.
///
/// Unlike git we do not nest trees; FlorDB projects are small script
/// collections and a flat sorted map hashes deterministically.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tree {
    /// Sorted path → blob id entries.
    pub entries: BTreeMap<String, Oid>,
}

/// A commit: tree + ancestry + metadata. `vid` in the paper's data model
/// (Fig. 1: `git(vid, filename, parent_vid, contents)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commit {
    /// Snapshot taken by this commit.
    pub tree: Oid,
    /// Parent commit, `None` for the root.
    pub parent: Option<Oid>,
    /// Human-readable message.
    pub message: String,
    /// Logical timestamp (FlorDB's `tstamp` at commit time).
    pub tstamp: u64,
    /// Author tag (the `projid` in our usage).
    pub author: String,
}

impl Object {
    /// Serialize to the canonical byte form that is hashed.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::new();
        match self {
            Object::Blob(b) => {
                out.push_str("blob\n");
                out.push_str(&b.data);
            }
            Object::Tree(t) => {
                out.push_str("tree\n");
                for (path, oid) in &t.entries {
                    // Paths cannot contain newlines (enforced at insert).
                    out.push_str(&format!("{oid} {path}\n"));
                }
            }
            Object::Commit(c) => {
                out.push_str("commit\n");
                out.push_str(&format!("tree {}\n", c.tree));
                if let Some(p) = &c.parent {
                    out.push_str(&format!("parent {p}\n"));
                }
                out.push_str(&format!("tstamp {}\n", c.tstamp));
                out.push_str(&format!("author {}\n", c.author));
                out.push('\n');
                out.push_str(&c.message);
            }
        }
        out.into_bytes()
    }

    /// Parse the canonical byte form. Inverse of [`Object::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Object, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
        let (kind, rest) = text
            .split_once('\n')
            .ok_or_else(|| "missing object header".to_string())?;
        match kind {
            "blob" => Ok(Object::Blob(Blob {
                data: rest.to_string(),
            })),
            "tree" => {
                let mut entries = BTreeMap::new();
                for line in rest.lines() {
                    if line.is_empty() {
                        continue;
                    }
                    let (oid, path) = line
                        .split_once(' ')
                        .ok_or_else(|| format!("bad tree entry: {line:?}"))?;
                    entries.insert(path.to_string(), Oid(oid.to_string()));
                }
                Ok(Object::Tree(Tree { entries }))
            }
            "commit" => {
                let (header, message) = rest.split_once("\n\n").unwrap_or((rest, ""));
                let mut tree = None;
                let mut parent = None;
                let mut tstamp = 0u64;
                let mut author = String::new();
                for line in header.lines() {
                    match line.split_once(' ') {
                        Some(("tree", v)) => tree = Some(Oid(v.to_string())),
                        Some(("parent", v)) => parent = Some(Oid(v.to_string())),
                        Some(("tstamp", v)) => {
                            tstamp = v.parse().map_err(|_| format!("bad tstamp {v:?}"))?
                        }
                        Some(("author", v)) => author = v.to_string(),
                        _ => return Err(format!("bad commit header line: {line:?}")),
                    }
                }
                Ok(Object::Commit(Commit {
                    tree: tree.ok_or_else(|| "commit missing tree".to_string())?,
                    parent,
                    message: message.to_string(),
                    tstamp,
                    author,
                }))
            }
            other => Err(format!("unknown object kind {other:?}")),
        }
    }

    /// Content id: SHA-256 of the encoding.
    pub fn id(&self) -> Oid {
        Oid(sha256_hex(&self.encode()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_round_trip() {
        let b = Object::Blob(Blob {
            data: "for epoch in flor.loop(\"epoch\", ...) {}\n".to_string(),
        });
        assert_eq!(Object::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn tree_round_trip() {
        let mut entries = BTreeMap::new();
        entries.insert("train.fl".to_string(), Oid("aa".into()));
        entries.insert("infer.fl".to_string(), Oid("bb".into()));
        let t = Object::Tree(Tree { entries });
        assert_eq!(Object::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn commit_round_trip_with_parent() {
        let c = Object::Commit(Commit {
            tree: Oid("t1".into()),
            parent: Some(Oid("p1".into())),
            message: "add recall logging\nsecond line".to_string(),
            tstamp: 42,
            author: "pdf_parser".to_string(),
        });
        assert_eq!(Object::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn commit_round_trip_root() {
        let c = Object::Commit(Commit {
            tree: Oid("t1".into()),
            parent: None,
            message: String::new(),
            tstamp: 0,
            author: "p".to_string(),
        });
        assert_eq!(Object::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn ids_are_content_addressed() {
        let a = Object::Blob(Blob { data: "x".into() });
        let b = Object::Blob(Blob { data: "x".into() });
        let c = Object::Blob(Blob { data: "y".into() });
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn tree_order_is_canonical() {
        let mut e1 = BTreeMap::new();
        e1.insert("a".to_string(), Oid("1".into()));
        e1.insert("b".to_string(), Oid("2".into()));
        let mut e2 = BTreeMap::new();
        e2.insert("b".to_string(), Oid("2".into()));
        e2.insert("a".to_string(), Oid("1".into()));
        assert_eq!(
            Object::Tree(Tree { entries: e1 }).id(),
            Object::Tree(Tree { entries: e2 }).id()
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Object::decode(b"wat\nxxx").is_err());
        assert!(Object::decode(b"").is_err());
        assert!(Object::decode(b"tree\nmalformed-line-without-space-but-see").is_err());
    }

    #[test]
    fn short_oid() {
        let oid = Oid("0123456789abcdef".to_string());
        assert_eq!(oid.short(), "01234567");
    }
}
