//! The repository: object store + refs + commit/checkout/log/diff.
//!
//! `flor.commit()` (paper §2.1) "writes a log file, commits changes to git,
//! and increments the tstamp". This module provides the `commits changes to
//! git` half: every FlorDB commit snapshots the virtual working tree here
//! and the resulting `vid` is recorded in the `ts2vid` table.

use crate::diff::{diff_lines, DiffOp};
use crate::objects::{Blob, Commit, Object, Oid, Tree};
use crate::vfs::VirtualFs;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Errors from repository operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GitError {
    /// Object id not present in the store.
    MissingObject(Oid),
    /// Expected a different object kind.
    WrongKind {
        /// The offending object.
        oid: Oid,
        /// What was expected.
        expected: &'static str,
    },
    /// Codec failure.
    Corrupt(String),
}

impl std::fmt::Display for GitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GitError::MissingObject(o) => write!(f, "missing object {o}"),
            GitError::WrongKind { oid, expected } => {
                write!(f, "object {oid} is not a {expected}")
            }
            GitError::Corrupt(m) => write!(f, "corrupt object: {m}"),
        }
    }
}

impl std::error::Error for GitError {}

/// Result alias.
pub type GitResult<T> = Result<T, GitError>;

/// A change to one file between two trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileChange {
    /// File added in the newer tree.
    Added(String),
    /// File removed.
    Removed(String),
    /// File contents modified, with a line-level edit script.
    Modified {
        /// Path of the modified file.
        path: String,
        /// Line diff (old → new).
        ops: Vec<DiffOp>,
    },
}

impl FileChange {
    /// The path this change touches.
    pub fn path(&self) -> &str {
        match self {
            FileChange::Added(p) | FileChange::Removed(p) => p,
            FileChange::Modified { path, .. } => path,
        }
    }
}

#[derive(Debug, Default)]
struct RepoInner {
    objects: HashMap<Oid, Vec<u8>>,
    head: Option<Oid>,
}

/// An in-memory content-addressed repository (gitlite).
#[derive(Debug, Clone, Default)]
pub struct Repository {
    inner: Arc<RwLock<RepoInner>>,
}

impl Repository {
    /// Empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store an object, returning its id (idempotent).
    pub fn put(&self, obj: &Object) -> Oid {
        let oid = obj.id();
        self.inner
            .write()
            .objects
            .entry(oid.clone())
            .or_insert_with(|| obj.encode());
        oid
    }

    /// Load an object by id.
    pub fn get(&self, oid: &Oid) -> GitResult<Object> {
        let g = self.inner.read();
        let bytes = g
            .objects
            .get(oid)
            .ok_or_else(|| GitError::MissingObject(oid.clone()))?;
        Object::decode(bytes).map_err(GitError::Corrupt)
    }

    /// Number of stored objects (blobs dedupe across versions).
    pub fn object_count(&self) -> usize {
        self.inner.read().objects.len()
    }

    /// The current HEAD commit, if any.
    pub fn head(&self) -> Option<Oid> {
        self.inner.read().head.clone()
    }

    /// Commit a snapshot of `fs`, advancing HEAD. Returns the new `vid`.
    pub fn commit(&self, fs: &VirtualFs, message: &str, tstamp: u64, author: &str) -> Oid {
        let mut entries = BTreeMap::new();
        for (path, entry) in fs.snapshot() {
            let blob_oid = self.put(&Object::Blob(Blob {
                data: entry.contents,
            }));
            entries.insert(path, blob_oid);
        }
        let tree_oid = self.put(&Object::Tree(Tree { entries }));
        let parent = self.head();
        let commit_oid = self.put(&Object::Commit(Commit {
            tree: tree_oid,
            parent,
            message: message.to_string(),
            tstamp,
            author: author.to_string(),
        }));
        self.inner.write().head = Some(commit_oid.clone());
        commit_oid
    }

    /// Load a commit object.
    pub fn commit_obj(&self, vid: &Oid) -> GitResult<Commit> {
        match self.get(vid)? {
            Object::Commit(c) => Ok(c),
            _ => Err(GitError::WrongKind {
                oid: vid.clone(),
                expected: "commit",
            }),
        }
    }

    /// The flat file map (`path → contents`) at a commit.
    pub fn files_at(&self, vid: &Oid) -> GitResult<BTreeMap<String, String>> {
        let commit = self.commit_obj(vid)?;
        let tree = match self.get(&commit.tree)? {
            Object::Tree(t) => t,
            _ => {
                return Err(GitError::WrongKind {
                    oid: commit.tree,
                    expected: "tree",
                })
            }
        };
        let mut out = BTreeMap::new();
        for (path, blob_oid) in tree.entries {
            match self.get(&blob_oid)? {
                Object::Blob(b) => {
                    out.insert(path, b.data);
                }
                _ => {
                    return Err(GitError::WrongKind {
                        oid: blob_oid,
                        expected: "blob",
                    })
                }
            }
        }
        Ok(out)
    }

    /// One file's contents at a commit, if present.
    pub fn file_at(&self, vid: &Oid, path: &str) -> GitResult<Option<String>> {
        Ok(self.files_at(vid)?.remove(path))
    }

    /// Restore the working tree to the snapshot at `vid`.
    pub fn checkout(&self, vid: &Oid, fs: &VirtualFs) -> GitResult<()> {
        let files = self.files_at(vid)?;
        fs.restore(&files);
        Ok(())
    }

    /// Commit history from `vid` back to the root (newest first).
    pub fn log(&self, vid: &Oid) -> GitResult<Vec<(Oid, Commit)>> {
        let mut out = Vec::new();
        let mut cur = Some(vid.clone());
        while let Some(oid) = cur {
            let c = self.commit_obj(&oid)?;
            cur = c.parent.clone();
            out.push((oid, c));
        }
        Ok(out)
    }

    /// History from HEAD (newest first); empty if no commits.
    pub fn log_head(&self) -> GitResult<Vec<(Oid, Commit)>> {
        match self.head() {
            Some(h) => self.log(&h),
            None => Ok(Vec::new()),
        }
    }

    /// File-level diff between two commits (old → new), with line-level
    /// edit scripts for modified files.
    pub fn diff(&self, old_vid: &Oid, new_vid: &Oid) -> GitResult<Vec<FileChange>> {
        let old = self.files_at(old_vid)?;
        let new = self.files_at(new_vid)?;
        let mut changes = Vec::new();
        for (path, new_contents) in &new {
            match old.get(path) {
                None => changes.push(FileChange::Added(path.clone())),
                Some(old_contents) if old_contents != new_contents => {
                    changes.push(FileChange::Modified {
                        path: path.clone(),
                        ops: diff_lines(old_contents, new_contents),
                    });
                }
                Some(_) => {}
            }
        }
        for path in old.keys() {
            if !new.contains_key(path) {
                changes.push(FileChange::Removed(path.clone()));
            }
        }
        changes.sort_by(|a, b| a.path().cmp(b.path()));
        Ok(changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Repository, VirtualFs) {
        (Repository::new(), VirtualFs::new())
    }

    #[test]
    fn commit_and_checkout_round_trip() {
        let (repo, fs) = setup();
        fs.write("train.fl", "v1");
        fs.write("infer.fl", "i1");
        let v1 = repo.commit(&fs, "first", 1, "proj");
        fs.write("train.fl", "v2");
        let v2 = repo.commit(&fs, "second", 2, "proj");
        assert_ne!(v1, v2);
        repo.checkout(&v1, &fs).unwrap();
        assert_eq!(fs.read("train.fl").unwrap(), "v1");
        repo.checkout(&v2, &fs).unwrap();
        assert_eq!(fs.read("train.fl").unwrap(), "v2");
        assert_eq!(fs.read("infer.fl").unwrap(), "i1");
    }

    #[test]
    fn head_advances_and_parents_chain() {
        let (repo, fs) = setup();
        fs.write("a", "1");
        let v1 = repo.commit(&fs, "c1", 1, "p");
        fs.write("a", "2");
        let v2 = repo.commit(&fs, "c2", 2, "p");
        assert_eq!(repo.head(), Some(v2.clone()));
        let log = repo.log_head().unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, v2);
        assert_eq!(log[1].0, v1);
        assert_eq!(log[0].1.parent, Some(v1));
        assert_eq!(log[1].1.parent, None);
    }

    #[test]
    fn identical_snapshots_share_blobs() {
        let (repo, fs) = setup();
        fs.write("big.fl", "same contents");
        repo.commit(&fs, "c1", 1, "p");
        let count_before = repo.object_count();
        fs.write("other.fl", "new file");
        repo.commit(&fs, "c2", 2, "p");
        // One new blob, one new tree, one new commit — big.fl's blob reused.
        assert_eq!(repo.object_count(), count_before + 3);
    }

    #[test]
    fn diff_reports_add_remove_modify() {
        let (repo, fs) = setup();
        fs.write("keep", "same");
        fs.write("mod", "line1\nline2\n");
        fs.write("gone", "bye");
        let v1 = repo.commit(&fs, "c1", 1, "p");
        fs.remove("gone");
        fs.write("mod", "line1\nline2changed\n");
        fs.write("fresh", "hi");
        let v2 = repo.commit(&fs, "c2", 2, "p");
        let changes = repo.diff(&v1, &v2).unwrap();
        let paths: Vec<&str> = changes.iter().map(|c| c.path()).collect();
        assert_eq!(paths, vec!["fresh", "gone", "mod"]);
        assert!(matches!(changes[0], FileChange::Added(_)));
        assert!(matches!(changes[1], FileChange::Removed(_)));
        assert!(matches!(changes[2], FileChange::Modified { .. }));
    }

    #[test]
    fn missing_object_errors() {
        let repo = Repository::new();
        let err = repo.get(&Oid("deadbeef".into())).unwrap_err();
        assert!(matches!(err, GitError::MissingObject(_)));
    }

    #[test]
    fn file_at_specific_version() {
        let (repo, fs) = setup();
        fs.write("train.fl", "alpha");
        let v1 = repo.commit(&fs, "c1", 1, "p");
        assert_eq!(repo.file_at(&v1, "train.fl").unwrap().unwrap(), "alpha");
        assert_eq!(repo.file_at(&v1, "nope").unwrap(), None);
    }

    #[test]
    fn commit_metadata_preserved() {
        let (repo, fs) = setup();
        fs.write("a", "1");
        let v = repo.commit(&fs, "message here", 99, "pdf_parser");
        let c = repo.commit_obj(&v).unwrap();
        assert_eq!(c.message, "message here");
        assert_eq!(c.tstamp, 99);
        assert_eq!(c.author, "pdf_parser");
    }

    #[test]
    fn wrong_kind_detected() {
        let (repo, fs) = setup();
        fs.write("a", "1");
        let v = repo.commit(&fs, "c", 1, "p");
        let c = repo.commit_obj(&v).unwrap();
        // A tree oid is not a commit.
        assert!(matches!(
            repo.commit_obj(&c.tree),
            Err(GitError::WrongKind { .. })
        ));
    }
}
