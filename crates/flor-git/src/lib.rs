//! # flor-git — gitlite, the change-context substrate of FlorDB
//!
//! The FlorDB paper (CIDR 2025) manages *change context* — "version
//! histories of both data and code" — with git (§3, Fig. 1: the `git` and
//! `ts2vid` tables). This crate is a from-scratch, in-memory git-alike
//! providing exactly the capabilities FlorDB consumes:
//!
//! * content-addressed object store (own [`sha256`](fn@sha256) implementation pinned
//!   to NIST vectors) with [`objects::Blob`]/[`objects::Tree`]/
//!   [`objects::Commit`] objects;
//! * [`Repository::commit`] snapshots of a [`VirtualFs`] working tree —
//!   invoked by `flor.commit()` at every transaction boundary;
//! * [`Repository::checkout`]/[`Repository::file_at`] to materialise any
//!   prior version for hindsight replay;
//! * [`Repository::diff`] with line-level LCS edit scripts (module
//!   [`diff`]), the coarse layer under AST-level statement propagation.
//!
//! ```
//! use flor_git::{Repository, VirtualFs};
//! let fs = VirtualFs::new();
//! let repo = Repository::new();
//! fs.write("train.fl", "flor.log(\"loss\", 0.5);");
//! let v1 = repo.commit(&fs, "first run", 1, "demo");
//! fs.write("train.fl", "flor.log(\"loss\", 0.5);\nflor.log(\"acc\", 0.9);");
//! let v2 = repo.commit(&fs, "add acc", 2, "demo");
//! assert_eq!(repo.diff(&v1, &v2).unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod diff;
pub mod objects;
pub mod repo;
pub mod sha256;
pub mod vfs;

pub use diff::{diff_lines, DiffOp};
pub use objects::{Commit, Object, Oid};
pub use repo::{FileChange, GitError, GitResult, Repository};
pub use sha256::{sha256, sha256_hex, Sha256};
pub use vfs::{FileEntry, Mtime, VirtualFs};
