//! A virtual filesystem: the "working directory" FlorDB versions.
//!
//! The reproduction runs thousands of pipeline executions in-process; a real
//! on-disk tree would be slow and flaky under parallel tests. `VirtualFs`
//! models exactly what the paper's substrate needs: named text files with
//! logical modification times (for Make-style staleness checks) and
//! snapshotting (for gitlite commits).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Logical clock tick used as an mtime. Monotonic per filesystem.
pub type Mtime = u64;

/// One file's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// File contents (text; the substrate versions source files and small
    /// artifacts — large binaries go to the object store instead).
    pub contents: String,
    /// Logical modification time.
    pub mtime: Mtime,
}

#[derive(Debug, Default)]
struct VfsInner {
    files: BTreeMap<String, FileEntry>,
    clock: Mtime,
}

/// A shareable, thread-safe virtual filesystem.
#[derive(Debug, Clone, Default)]
pub struct VirtualFs {
    inner: Arc<RwLock<VfsInner>>,
}

impl VirtualFs {
    /// Empty filesystem with clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write (create or overwrite) a file, bumping the clock.
    pub fn write(&self, path: &str, contents: &str) -> Mtime {
        let mut g = self.inner.write();
        g.clock += 1;
        let mtime = g.clock;
        g.files.insert(
            path.to_string(),
            FileEntry {
                contents: contents.to_string(),
                mtime,
            },
        );
        mtime
    }

    /// Touch a file: bump its mtime without changing contents. Creates an
    /// empty file if missing (like `touch`, used by the paper's Makefile
    /// stamp targets, Fig. 4).
    pub fn touch(&self, path: &str) -> Mtime {
        let mut g = self.inner.write();
        g.clock += 1;
        let mtime = g.clock;
        g.files
            .entry(path.to_string())
            .and_modify(|e| e.mtime = mtime)
            .or_insert(FileEntry {
                contents: String::new(),
                mtime,
            });
        mtime
    }

    /// Read a file's contents.
    pub fn read(&self, path: &str) -> Option<String> {
        self.inner
            .read()
            .files
            .get(path)
            .map(|e| e.contents.clone())
    }

    /// A file's mtime, or `None` if absent.
    pub fn mtime(&self, path: &str) -> Option<Mtime> {
        self.inner.read().files.get(path).map(|e| e.mtime)
    }

    /// Whether the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.read().files.contains_key(path)
    }

    /// Delete a file; returns true if it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.inner.write().files.remove(path).is_some()
    }

    /// All paths in sorted order.
    pub fn paths(&self) -> Vec<String> {
        self.inner.read().files.keys().cloned().collect()
    }

    /// Paths under a directory prefix (`"data/"`), sorted. The paper's
    /// featurization loop iterates `os.listdir(...)` (Fig. 3); this is the
    /// equivalent.
    pub fn list_dir(&self, prefix: &str) -> Vec<String> {
        self.inner
            .read()
            .files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Current logical clock value.
    pub fn now(&self) -> Mtime {
        self.inner.read().clock
    }

    /// Snapshot of all files (path → entry), used by gitlite commits.
    pub fn snapshot(&self) -> BTreeMap<String, FileEntry> {
        self.inner.read().files.clone()
    }

    /// Replace the whole tree from a snapshot of `path → contents`
    /// (checkout). Every restored file gets a fresh mtime, which is the
    /// conservative Make-correct behaviour.
    pub fn restore(&self, files: &BTreeMap<String, String>) {
        let mut g = self.inner.write();
        g.clock += 1;
        let mtime = g.clock;
        g.files = files
            .iter()
            .map(|(p, c)| {
                (
                    p.clone(),
                    FileEntry {
                        contents: c.clone(),
                        mtime,
                    },
                )
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let fs = VirtualFs::new();
        fs.write("train.py", "print(1)");
        assert_eq!(fs.read("train.py").unwrap(), "print(1)");
        assert!(fs.exists("train.py"));
        assert!(!fs.exists("infer.py"));
    }

    #[test]
    fn mtimes_are_monotonic() {
        let fs = VirtualFs::new();
        let t1 = fs.write("a", "1");
        let t2 = fs.write("b", "2");
        let t3 = fs.touch("a");
        assert!(t1 < t2 && t2 < t3);
        assert_eq!(fs.mtime("a"), Some(t3));
        assert_eq!(fs.mtime("b"), Some(t2));
    }

    #[test]
    fn touch_preserves_contents() {
        let fs = VirtualFs::new();
        fs.write("f", "data");
        fs.touch("f");
        assert_eq!(fs.read("f").unwrap(), "data");
    }

    #[test]
    fn touch_creates_empty() {
        let fs = VirtualFs::new();
        fs.touch("stamp");
        assert_eq!(fs.read("stamp").unwrap(), "");
    }

    #[test]
    fn list_dir_filters_by_prefix() {
        let fs = VirtualFs::new();
        fs.write("data/d1.txt", "");
        fs.write("data/d2.txt", "");
        fs.write("src/train.py", "");
        assert_eq!(fs.list_dir("data/"), vec!["data/d1.txt", "data/d2.txt"]);
    }

    #[test]
    fn remove_works() {
        let fs = VirtualFs::new();
        fs.write("f", "x");
        assert!(fs.remove("f"));
        assert!(!fs.remove("f"));
        assert!(!fs.exists("f"));
    }

    #[test]
    fn restore_replaces_tree() {
        let fs = VirtualFs::new();
        fs.write("old", "gone");
        let mut snap = BTreeMap::new();
        snap.insert("new".to_string(), "here".to_string());
        fs.restore(&snap);
        assert!(!fs.exists("old"));
        assert_eq!(fs.read("new").unwrap(), "here");
    }

    #[test]
    fn clone_shares_state() {
        let fs = VirtualFs::new();
        let fs2 = fs.clone();
        fs.write("shared", "yes");
        assert_eq!(fs2.read("shared").unwrap(), "yes");
    }
}
