//! Line-level diffing (longest-common-subsequence edit scripts).
//!
//! Used for two things in the reproduction: human-readable version diffs
//! (change context), and as the coarse pre-filter before AST-level
//! differencing in `flor-diff` (per the paper, statement propagation uses
//! "techniques adapted from code diffing \[6\]").

/// One step of an edit script transforming `old` into `new`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOp {
    /// Line occurs in both (old index, new index).
    Equal {
        /// Index into the old line array.
        old_index: usize,
        /// Index into the new line array.
        new_index: usize,
    },
    /// Line deleted from old.
    Delete {
        /// Index into the old line array.
        old_index: usize,
    },
    /// Line inserted in new.
    Insert {
        /// Index into the new line array.
        new_index: usize,
    },
}

/// Compute a line-level LCS edit script from `old` to `new`.
///
/// Classic O(n·m) dynamic programming; file sizes here are scripts of at
/// most a few hundred lines, where DP beats Myers on constant factors and
/// is trivially correct.
pub fn diff_lines(old: &str, new: &str) -> Vec<DiffOp> {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    diff_slices(&a, &b)
}

/// LCS edit script over arbitrary comparable slices.
pub fn diff_slices<T: PartialEq>(a: &[T], b: &[T]) -> Vec<DiffOp> {
    let n = a.len();
    let m = b.len();
    // lcs[i][j] = LCS length of a[i..] and b[j..]
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut ops = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push(DiffOp::Equal {
                old_index: i,
                new_index: j,
            });
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            ops.push(DiffOp::Delete { old_index: i });
            i += 1;
        } else {
            ops.push(DiffOp::Insert { new_index: j });
            j += 1;
        }
    }
    while i < n {
        ops.push(DiffOp::Delete { old_index: i });
        i += 1;
    }
    while j < m {
        ops.push(DiffOp::Insert { new_index: j });
        j += 1;
    }
    ops
}

/// Summary counts of an edit script: (equal, deleted, inserted).
pub fn summarize(ops: &[DiffOp]) -> (usize, usize, usize) {
    let mut eq = 0;
    let mut del = 0;
    let mut ins = 0;
    for op in ops {
        match op {
            DiffOp::Equal { .. } => eq += 1,
            DiffOp::Delete { .. } => del += 1,
            DiffOp::Insert { .. } => ins += 1,
        }
    }
    (eq, del, ins)
}

/// Render a unified-diff-like text for human inspection.
pub fn render(old: &str, new: &str) -> String {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let mut out = String::new();
    for op in diff_slices(&a, &b) {
        match op {
            DiffOp::Equal { old_index, .. } => {
                out.push_str("  ");
                out.push_str(a[old_index]);
                out.push('\n');
            }
            DiffOp::Delete { old_index } => {
                out.push_str("- ");
                out.push_str(a[old_index]);
                out.push('\n');
            }
            DiffOp::Insert { new_index } => {
                out.push_str("+ ");
                out.push_str(b[new_index]);
                out.push('\n');
            }
        }
    }
    out
}

/// Apply an edit script produced by [`diff_slices`] to reconstruct `new`
/// from `old` — used to verify edit scripts in tests and property checks.
pub fn apply<'a, T: Clone>(old: &'a [T], new: &'a [T], ops: &[DiffOp]) -> Vec<T> {
    let mut out = Vec::new();
    for op in ops {
        match op {
            DiffOp::Equal { old_index, .. } => out.push(old[*old_index].clone()),
            DiffOp::Delete { .. } => {}
            DiffOp::Insert { new_index } => out.push(new[*new_index].clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_all_equal() {
        let ops = diff_lines("a\nb\nc", "a\nb\nc");
        assert_eq!(summarize(&ops), (3, 0, 0));
    }

    #[test]
    fn pure_insert() {
        let ops = diff_lines("a\nc", "a\nb\nc");
        assert_eq!(summarize(&ops), (2, 0, 1));
    }

    #[test]
    fn pure_delete() {
        let ops = diff_lines("a\nb\nc", "a\nc");
        assert_eq!(summarize(&ops), (2, 1, 0));
    }

    #[test]
    fn replace_is_delete_plus_insert() {
        let ops = diff_lines("a\nOLD\nc", "a\nNEW\nc");
        assert_eq!(summarize(&ops), (2, 1, 1));
    }

    #[test]
    fn empty_inputs() {
        assert!(diff_lines("", "").is_empty());
        assert_eq!(summarize(&diff_lines("", "x\ny")), (0, 0, 2));
        assert_eq!(summarize(&diff_lines("x\ny", "")), (0, 2, 0));
    }

    #[test]
    fn apply_reconstructs_new() {
        let old: Vec<&str> = "fn a\nfn b\nfn c".lines().collect();
        let new: Vec<&str> = "fn a\nfn x\nfn c\nfn d".lines().collect();
        let ops = diff_slices(&old, &new);
        assert_eq!(apply(&old, &new, &ops), new);
    }

    #[test]
    fn render_marks_changes() {
        let r = render("a\nb", "a\nc");
        assert!(r.contains("  a"));
        assert!(r.contains("- b"));
        assert!(r.contains("+ c"));
    }

    #[test]
    fn lcs_prefers_longest_match() {
        // The LCS of these is "flor.log" + closing brace lines — 2 lines kept.
        let old = "for e in loop {\n  train()\n  flor.log(\"loss\", l)\n}";
        let new = "for e in loop {\n  train2()\n  flor.log(\"loss\", l)\n  flor.log(\"acc\", a)\n}";
        let (eq, del, ins) = summarize(&diff_lines(old, new));
        assert_eq!(eq, 3); // for-line, log-loss line, closing brace
        assert_eq!(del, 1);
        assert_eq!(ins, 2);
    }
}
