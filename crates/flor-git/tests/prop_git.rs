//! Property tests for gitlite: hashing, object codecs, diff/apply, and
//! commit/checkout round-trips.

use flor_git::diff::{apply, diff_slices, summarize};
use flor_git::objects::{Blob, Commit, Object, Oid, Tree};
use flor_git::{Repository, VirtualFs};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_path() -> impl Strategy<Value = String> {
    "[a-z]{1,8}(\\.fl)?".prop_map(|s| s)
}

proptest! {
    /// Objects decode to what was encoded.
    #[test]
    fn blob_codec_round_trip(data in "[ -~\\n]{0,200}") {
        let obj = Object::Blob(Blob { data });
        prop_assert_eq!(Object::decode(&obj.encode()).unwrap(), obj);
    }

    #[test]
    fn commit_codec_round_trip(
        msg in "[ -~\\n]{0,100}",
        tstamp in any::<u64>(),
        has_parent in any::<bool>(),
    ) {
        let obj = Object::Commit(Commit {
            tree: Oid("abc123".into()),
            parent: if has_parent { Some(Oid("def456".into())) } else { None },
            message: msg,
            tstamp,
            author: "proj".into(),
        });
        prop_assert_eq!(Object::decode(&obj.encode()).unwrap(), obj);
    }

    #[test]
    fn tree_codec_round_trip(paths in proptest::collection::btree_set("[a-z/._-]{1,12}", 0..10)) {
        let entries: BTreeMap<String, Oid> = paths.into_iter()
            .map(|p| (p.clone(), Oid(flor_git::sha256_hex(p.as_bytes()))))
            .collect();
        let obj = Object::Tree(Tree { entries });
        prop_assert_eq!(Object::decode(&obj.encode()).unwrap(), obj);
    }

    /// Distinct data gives distinct ids; same data same id.
    #[test]
    fn content_addressing(a in "[a-z]{0,50}", b in "[a-z]{0,50}") {
        let ida = Object::Blob(Blob { data: a.clone() }).id();
        let idb = Object::Blob(Blob { data: b.clone() }).id();
        prop_assert_eq!(a == b, ida == idb);
    }

    /// diff then apply reconstructs the new sequence exactly.
    #[test]
    fn diff_apply_reconstructs(
        old in proptest::collection::vec(0u8..6, 0..40),
        new in proptest::collection::vec(0u8..6, 0..40),
    ) {
        let ops = diff_slices(&old, &new);
        prop_assert_eq!(apply(&old, &new, &ops), new);
    }

    /// Edit script accounting: equal+deleted = |old|, equal+inserted = |new|.
    #[test]
    fn diff_counts_consistent(
        old in proptest::collection::vec(0u8..4, 0..30),
        new in proptest::collection::vec(0u8..4, 0..30),
    ) {
        let (eq, del, ins) = summarize(&diff_slices(&old, &new));
        prop_assert_eq!(eq + del, old.len());
        prop_assert_eq!(eq + ins, new.len());
    }

    /// Committing then checking out restores every file exactly.
    #[test]
    fn commit_checkout_round_trip(
        files in proptest::collection::btree_map(arb_path(), "[ -~]{0,60}", 1..8),
        extra in "[a-z]{1,10}",
    ) {
        let fs = VirtualFs::new();
        let repo = Repository::new();
        for (p, c) in &files {
            fs.write(p, c);
        }
        let v1 = repo.commit(&fs, "snap", 1, "prop");
        // Mutate the tree arbitrarily.
        fs.write("mutant", &extra);
        for p in files.keys().take(2) {
            fs.remove(p);
        }
        repo.commit(&fs, "mutated", 2, "prop");
        // Restore v1.
        repo.checkout(&v1, &fs).unwrap();
        let snap = fs.snapshot();
        prop_assert_eq!(snap.len(), files.len());
        for (p, c) in &files {
            prop_assert_eq!(&fs.read(p).unwrap(), c);
        }
    }

    /// diff(v, v) is empty; diff is consistent with the file sets.
    #[test]
    fn diff_self_is_empty(
        files in proptest::collection::btree_map(arb_path(), "[ -~]{0,40}", 1..6),
    ) {
        let fs = VirtualFs::new();
        let repo = Repository::new();
        for (p, c) in &files {
            fs.write(p, c);
        }
        let v = repo.commit(&fs, "snap", 1, "prop");
        prop_assert!(repo.diff(&v, &v).unwrap().is_empty());
    }
}

#[test]
fn log_traverses_whole_history() {
    let fs = VirtualFs::new();
    let repo = Repository::new();
    let mut vids = Vec::new();
    for i in 0..10 {
        fs.write("f", &format!("version {i}"));
        vids.push(repo.commit(&fs, &format!("c{i}"), i, "p"));
    }
    let log = repo.log_head().unwrap();
    assert_eq!(log.len(), 10);
    // Newest first.
    for (entry, vid) in log.iter().zip(vids.iter().rev()) {
        assert_eq!(&entry.0, vid);
    }
}

#[test]
fn checkout_old_version_enables_hindsight_workflow() {
    // The core change-context workflow: run vN, go back to v1, re-read code.
    let fs = VirtualFs::new();
    let repo = Repository::new();
    fs.write("train.fl", "let lr = 0.1;");
    let v1 = repo.commit(&fs, "v1", 1, "p");
    fs.write("train.fl", "let lr = 0.01;\nflor.log(\"lr\", lr);");
    repo.commit(&fs, "v2", 2, "p");
    let old_code = repo.file_at(&v1, "train.fl").unwrap().unwrap();
    assert_eq!(old_code, "let lr = 0.1;");
    // Current worktree is untouched by file_at.
    assert!(fs.read("train.fl").unwrap().contains("0.01"));
}
