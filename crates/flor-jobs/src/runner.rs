//! The worker pool: prioritized unit scheduling, durable transitions,
//! cancellation, and crash-resume.
//!
//! A [`JobRunner`] owns a priority queue of [`UnitSpec`]s and a lazily
//! spawned pool of worker threads. Submitting a job asks its
//! [`JobExecutor`] to decompose the work into units (for backfill: one
//! per prior version), persists a `Queued` transition, and enqueues the
//! units; workers then repeatedly pop the highest-priority unit, run its
//! compute phase without holding any lock, and finally — under the
//! runner's ingest lock — stage the unit's store writes *and* the job's
//! progress transition into one transaction and commit. That atomicity is
//! the crash-safety contract: a unit is either fully ingested and marked
//! done, or invisible; a process killed between units resumes from the
//! persisted `done_keys` cursor and converges to the uninterrupted
//! result.
//!
//! Results are therefore visible incrementally: every unit commit flows
//! through the store's change feed, so materialized views refresh while
//! the job is still running rather than when it ends.
//!
//! Concurrency contract: the store has one logical write transaction, so
//! a unit commit also flushes rows other threads have staged but not yet
//! committed (and a failed staging rolls them back). Readers are
//! unaffected; writers should follow the store's single-logical-writer
//! model — commit foreground transactions before background jobs run.

use crate::job::{JobId, JobRecord, JobSpec, JobState, UnitSpec};
use flor_obs::{Counter, Histogram, MetricsRegistry, Span};
use flor_store::{Database, StoreResult};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Pre-bound handles into the database's metrics registry — the runner
/// shares it, so the kernel's one snapshot covers storage and jobs
/// alike. `jobs.unit.queue_wait_nanos` vs `jobs.unit.run_nanos` is the
/// scheduling-pressure signal: wait growing while run holds steady means
/// the pool is too small (or a higher-priority job is starving this one).
struct JobsMetrics {
    registry: MetricsRegistry,
    /// `jobs.unit.queue_wait_nanos` — enqueue → worker pop.
    queue_wait: Arc<Histogram>,
    /// `jobs.unit.run_nanos` — the compute phase (`run_unit`).
    run: Arc<Histogram>,
    /// `jobs.unit.done` — units fully committed.
    done: Arc<Counter>,
    /// `jobs.unit.failed` — units whose compute or staging failed.
    failed: Arc<Counter>,
}

impl JobsMetrics {
    fn new(registry: MetricsRegistry) -> JobsMetrics {
        JobsMetrics {
            queue_wait: registry.histogram("jobs.unit.queue_wait_nanos"),
            run: registry.histogram("jobs.unit.run_nanos"),
            done: registry.counter("jobs.unit.done"),
            failed: registry.counter("jobs.unit.failed"),
            registry,
        }
    }
}

/// Per-job cancellation token and fine-grained progress counter, shared
/// between the scheduler, the [`JobHandle`], and the executor's compute
/// (for backfill the counter is wired into `flor_record::ReplayControl`,
/// so it ticks once per replayed iteration).
#[derive(Debug, Clone, Default)]
pub struct JobControl {
    cancel: Arc<AtomicBool>,
    ticks: Arc<AtomicUsize>,
}

impl JobControl {
    /// Fresh control: not cancelled, zero ticks.
    pub fn new() -> JobControl {
        JobControl::default()
    }

    /// Request cancellation.
    // audit: ordering — cold control-plane flag: SeqCst guarantees the
    // executor sees the cancel no later than any board state written
    // after it, and costs nothing at this frequency.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    // audit: ordering — polled once per work unit; SeqCst pairs with
    // the store in `cancel` for a simple total order.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// The shared cancellation flag, for wiring into executor internals.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// The shared progress counter, for wiring into executor internals.
    pub fn tick_counter(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.ticks)
    }

    /// Executor-defined fine-grained progress (backfill: iterations
    /// replayed so far).
    // audit: ordering — progress counter read for display; SeqCst keeps
    // it monotone with respect to the cancel flag it is reported beside.
    pub fn ticks(&self) -> usize {
        self.ticks.load(Ordering::SeqCst)
    }
}

/// How a job's work is decomposed and executed. Implemented by the layer
/// that owns the domain (flor-core implements it for hindsight backfill);
/// the scheduler stays domain-agnostic.
///
/// `O` is the per-unit outcome type surfaced on the [`JobHandle`].
pub trait JobExecutor<O>: Send + Sync {
    /// Decompose `spec` into schedulable units. Re-invoked on resume (the
    /// runner subtracts already-done units by key), so it must derive the
    /// unit list from durable state, not in-memory context.
    fn plan(&self, spec: &JobSpec) -> Result<Vec<UnitSpec>, String>;

    /// The unit's compute phase. Runs concurrently with other units and
    /// with foreground reads; MUST NOT stage or commit store writes.
    /// Should poll `ctl` and bail out early when cancelled.
    fn run_unit(&self, spec: &JobSpec, unit: &UnitSpec, ctl: &JobControl) -> Result<O, String>;

    /// Stage (insert, without committing) the unit's store writes. Called
    /// under the runner's ingest lock; the runner commits them atomically
    /// with the job's progress transition.
    fn stage_unit(&self, spec: &JobSpec, unit: &UnitSpec, outcome: &O) -> Result<(), String>;
}

/// A queued unit, ordered by (priority desc, job_id asc, unit key asc) —
/// strict priority first, then submission order, then oldest version
/// first within a job.
struct QueuedUnit {
    priority: i64,
    job_id: JobId,
    unit: UnitSpec,
    /// When this unit was enqueued; `None` while metrics are disabled.
    /// Deliberately excluded from the ordering below.
    enqueued_at: Option<Instant>,
}

impl PartialEq for QueuedUnit {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for QueuedUnit {}
impl PartialOrd for QueuedUnit {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedUnit {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.job_id.cmp(&self.job_id))
            .then_with(|| other.unit.key.cmp(&self.unit.key))
    }
}

struct ActiveJob<O> {
    spec: JobSpec,
    /// `jobs.done.<kind>` — per-kind unit throughput, resolved once at
    /// admit so completions never touch the registry's name map.
    kind_done: Arc<Counter>,
    /// Dropped at terminal transitions (and on crash) so the executor's
    /// captured context — for backfill, a whole kernel — is not kept
    /// alive by finished jobs.
    executor: Option<Arc<dyn JobExecutor<O>>>,
    state: JobState,
    units_total: usize,
    done_keys: Vec<i64>,
    outcomes: Vec<O>,
    detail: String,
    /// Units still in the queue.
    pending: usize,
    /// Units currently executing on a worker.
    inflight: usize,
    /// Last persisted transition seq.
    seq: i64,
    control: JobControl,
}

impl<O> ActiveJob<O> {
    fn record(&self, job_id: JobId) -> JobRecord {
        JobRecord {
            job_id,
            seq: self.seq,
            kind: self.spec.kind.clone(),
            priority: self.spec.priority,
            state: self.state,
            // The payload is immutable per job, so only the first
            // transition persists it (for backfill it carries the whole
            // script source — repeating it on every progress row would
            // grow the WAL by O(units × |source|)). The recovery folds
            // ([`crate::recover_records`], [`crate::JobBoard`]) merge it
            // back into the latest-wins record.
            payload: if self.seq == 1 {
                self.spec.payload.clone()
            } else {
                String::new()
            },
            units_total: self.units_total,
            units_done: self.done_keys.len(),
            done_keys: self.done_keys.clone(),
            detail: self.detail.clone(),
        }
    }
}

struct RunnerState<O> {
    queue: BinaryHeap<QueuedUnit>,
    jobs: HashMap<JobId, ActiveJob<O>>,
    next_job: JobId,
    live_workers: usize,
    target_workers: usize,
    /// Test/bench instrumentation: simulate process death after this many
    /// further unit completions (the completion itself still commits).
    crash_in: Option<u64>,
    crashed: bool,
}

struct RunnerInner<O> {
    db: Database,
    metrics: JobsMetrics,
    state: Mutex<RunnerState<O>>,
    cv: Condvar,
    /// Serializes unit ingestion: `stage_unit` + the progress transition
    /// must land in one transaction with no other job commit interleaved.
    /// Compute (`run_unit`) runs outside this lock, so worker-count
    /// scaling comes from the expensive phase.
    ingest: Mutex<()>,
}

/// A snapshot of one job's progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobProgress {
    /// Current lifecycle state.
    pub state: JobState,
    /// Planned unit count.
    pub units_total: usize,
    /// Completed unit count.
    pub units_done: usize,
    /// Executor-defined fine-grained progress (backfill: iterations
    /// replayed), live even mid-unit.
    pub ticks: usize,
}

/// Terminal summary returned by [`JobHandle::wait`].
#[derive(Debug, Clone)]
pub struct JobReport<O> {
    /// State at the time the wait returned (terminal, unless the runner
    /// crash hook fired).
    pub state: JobState,
    /// Per-unit outcomes, in completion order.
    pub outcomes: Vec<O>,
    /// Failure detail, if any.
    pub detail: String,
}

/// A handle on one submitted job: status, progress, incremental per-unit
/// outcomes, blocking wait, and cancellation. Cloneable; all clones
/// observe the same job.
pub struct JobHandle<O> {
    job_id: JobId,
    inner: Arc<RunnerInner<O>>,
}

impl<O> Clone for JobHandle<O> {
    fn clone(&self) -> Self {
        JobHandle {
            job_id: self.job_id,
            inner: Arc::clone(&self.inner),
        }
    }
}

fn lock<'a, O>(m: &'a Mutex<RunnerState<O>>) -> MutexGuard<'a, RunnerState<O>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<O: Clone> JobHandle<O> {
    /// The job's durable id.
    pub fn job_id(&self) -> JobId {
        self.job_id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.with_job(|j| j.state)
    }

    /// Current progress snapshot.
    pub fn progress(&self) -> JobProgress {
        self.with_job(|j| JobProgress {
            state: j.state,
            units_total: j.units_total,
            units_done: j.done_keys.len(),
            ticks: j.control.ticks(),
        })
    }

    /// Per-unit outcomes completed so far, in completion order — results
    /// stream onto the handle as units finish, not only at the end.
    pub fn outcomes(&self) -> Vec<O> {
        self.with_job(|j| j.outcomes.clone())
    }

    /// Failure detail, if the job failed.
    pub fn detail(&self) -> String {
        self.with_job(|j| j.detail.clone())
    }

    /// Request cancellation: queued units are dropped, running units are
    /// asked to stop via their [`JobControl`], and a `Cancelled`
    /// transition is persisted immediately (so a resume after restart
    /// will not revive the job).
    pub fn cancel(&self) {
        let record = {
            let mut st = lock(&self.inner.state);
            let Some(job) = st.jobs.get_mut(&self.job_id) else {
                return;
            };
            if job.state.is_terminal() {
                return;
            }
            job.control.cancel();
            job.state = JobState::Cancelled;
            job.executor = None;
            job.seq += 1;
            job.record(self.job_id)
        };
        let _ = persist(&self.inner, &[record]);
        self.inner.cv.notify_all();
    }

    /// Block until the job reaches a terminal state (or the runner's
    /// crash hook fires), returning the final report.
    pub fn wait(&self) -> JobReport<O> {
        let mut st = lock(&self.inner.state);
        loop {
            // audit: allow(panic) — jobs are never evicted from the map
            // (terminal jobs persist for reporting), and this handle was
            // created from a successful submit of this id.
            let job = st.jobs.get(&self.job_id).expect("handle to live job");
            if job.state.is_terminal() || st.crashed {
                return JobReport {
                    state: job.state,
                    outcomes: job.outcomes.clone(),
                    detail: job.detail.clone(),
                };
            }
            st = self
                .inner
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn with_job<R>(&self, f: impl FnOnce(&ActiveJob<O>) -> R) -> R {
        let st = lock(&self.inner.state);
        // audit: allow(panic) — same invariant as `wait`: submitted jobs
        // stay in the map for their whole lifetime.
        f(st.jobs.get(&self.job_id).expect("handle to live job"))
    }
}

/// The durable, multi-worker background scheduler. Cloning shares the
/// same runner (queue, workers, and job table writer).
pub struct JobRunner<O> {
    inner: Arc<RunnerInner<O>>,
}

impl<O> Clone for JobRunner<O> {
    fn clone(&self) -> Self {
        JobRunner {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<O: Clone + Send + 'static> JobRunner<O> {
    /// A runner persisting to `db`'s `jobs` table, with up to `workers`
    /// concurrent unit executions. Threads are spawned lazily on submit
    /// and exit when the queue drains.
    pub fn new(db: Database, workers: usize) -> JobRunner<O> {
        let metrics = JobsMetrics::new(db.metrics_registry());
        JobRunner {
            inner: Arc::new(RunnerInner {
                db,
                metrics,
                state: Mutex::new(RunnerState {
                    queue: BinaryHeap::new(),
                    jobs: HashMap::new(),
                    next_job: 1,
                    live_workers: 0,
                    target_workers: workers.max(1),
                    crash_in: None,
                    crashed: false,
                }),
                cv: Condvar::new(),
                ingest: Mutex::new(()),
            }),
        }
    }

    /// Change the worker-pool size (applies to subsequent spawns).
    pub fn set_workers(&self, n: usize) {
        lock(&self.inner.state).target_workers = n.max(1);
    }

    /// Submit a new job: plan it, persist a `Queued` transition, enqueue
    /// its units, and return a handle. A planning failure persists a
    /// `Failed` job (the handle reports it) rather than erroring here.
    pub fn submit(
        &self,
        spec: JobSpec,
        executor: Arc<dyn JobExecutor<O>>,
    ) -> StoreResult<JobHandle<O>> {
        self.admit(None, spec, executor)
    }

    /// Re-admit a recovered job: re-plan, subtract the units already in
    /// `record.done_keys`, and continue from there. No-op completion (a
    /// `Done` transition) if nothing remains.
    pub fn resume(
        &self,
        record: &JobRecord,
        executor: Arc<dyn JobExecutor<O>>,
    ) -> StoreResult<JobHandle<O>> {
        self.admit(Some(record), record.spec(), executor)
    }

    fn admit(
        &self,
        resumed: Option<&JobRecord>,
        spec: JobSpec,
        executor: Arc<dyn JobExecutor<O>>,
    ) -> StoreResult<JobHandle<O>> {
        let planned = executor.plan(&spec);
        let kind_done = self
            .inner
            .metrics
            .registry
            .counter(&format!("jobs.done.{}", spec.kind));
        // One clock read stamps the whole batch of units (None while
        // metrics are disabled, so the hot pop path skips the math too).
        let enqueued_at = self.inner.metrics.registry.enabled().then(Instant::now);
        let (job_id, record) = {
            let mut st = lock(&self.inner.state);
            let (job_id, done_keys, seq) = match resumed {
                Some(r) => (r.job_id, r.done_keys.clone(), r.seq),
                None => {
                    let id = self.fresh_job_id(&mut st)?;
                    (id, Vec::new(), 0)
                }
            };
            let mut job = ActiveJob {
                spec,
                kind_done,
                executor: Some(executor),
                state: JobState::Queued,
                units_total: 0,
                done_keys,
                outcomes: Vec::new(),
                detail: String::new(),
                pending: 0,
                inflight: 0,
                seq: seq + 1,
                control: JobControl::new(),
            };
            match planned {
                Err(e) => {
                    job.state = JobState::Failed;
                    job.detail = e;
                    job.executor = None;
                }
                Ok(units) => {
                    job.units_total = units.len();
                    let remaining: Vec<UnitSpec> = units
                        .into_iter()
                        .filter(|u| !job.done_keys.contains(&u.key))
                        .collect();
                    if remaining.is_empty() {
                        job.state = JobState::Done;
                        job.executor = None;
                    } else {
                        if resumed.is_some() {
                            // Resumed mid-run: skip straight to Running.
                            job.state = JobState::Running;
                        }
                        job.pending = remaining.len();
                        for unit in remaining {
                            st.queue.push(QueuedUnit {
                                priority: job.spec.priority,
                                job_id,
                                unit,
                                enqueued_at,
                            });
                        }
                    }
                }
            }
            let record = job.record(job_id);
            st.jobs.insert(job_id, job);
            (job_id, record)
        };
        persist(&self.inner, &[record])?;
        self.ensure_workers();
        self.inner.cv.notify_all();
        Ok(JobHandle {
            job_id,
            inner: Arc::clone(&self.inner),
        })
    }

    /// A job id greater than anything live or persisted.
    fn fresh_job_id(&self, st: &mut RunnerState<O>) -> StoreResult<JobId> {
        let persisted_max = self
            .inner
            .db
            .scan("jobs")?
            .column("job_id")
            .map(|c| {
                c.values
                    .iter()
                    .filter_map(flor_df::Value::as_i64)
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        let id = st.next_job.max(persisted_max + 1);
        st.next_job = id + 1;
        Ok(id)
    }

    /// The handle for a live (this-process) job, if any.
    pub fn handle(&self, job_id: JobId) -> Option<JobHandle<O>> {
        let st = lock(&self.inner.state);
        st.jobs.contains_key(&job_id).then(|| JobHandle {
            job_id,
            inner: Arc::clone(&self.inner),
        })
    }

    /// Test/bench instrumentation: simulate a process crash after `n`
    /// more unit completions. The `n`-th completion still commits its
    /// transaction (a crash *between* versions); then every worker halts
    /// without writing further transitions, leaving non-terminal jobs for
    /// [`JobRunner::resume`] after reopen.
    pub fn crash_after_units(&self, n: u64) {
        let mut st = lock(&self.inner.state);
        if n == 0 {
            st.crashed = true;
            for job in st.jobs.values_mut() {
                job.executor = None;
            }
        } else {
            st.crash_in = Some(n);
        }
        drop(st);
        self.inner.cv.notify_all();
    }

    /// Whether the crash hook has fired.
    pub fn is_crashed(&self) -> bool {
        lock(&self.inner.state).crashed
    }

    /// Drop the retained per-unit outcomes and payload of every terminal
    /// job, returning how many jobs were pruned. Handles stay valid —
    /// state, progress and detail survive; only `outcomes()` turns empty.
    /// Long-lived embedders call this between job waves so finished jobs
    /// don't accumulate their recovered data in memory forever.
    pub fn prune_terminal(&self) -> usize {
        let mut st = lock(&self.inner.state);
        let mut pruned = 0;
        for job in st.jobs.values_mut() {
            if job.state.is_terminal() && !(job.outcomes.is_empty() && job.spec.payload.is_empty())
            {
                job.outcomes = Vec::new();
                job.spec.payload = String::new();
                pruned += 1;
            }
        }
        pruned
    }

    /// Block until every worker has exited (the queue drained or the
    /// crash hook fired). Jobs may still be non-terminal after a crash.
    pub fn wait_idle(&self) {
        let mut st = lock(&self.inner.state);
        while st.live_workers > 0 {
            st = self
                .inner
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn ensure_workers(&self) {
        let spawn_n = {
            let mut st = lock(&self.inner.state);
            if st.queue.is_empty() || st.crashed {
                0
            } else {
                let want = st.target_workers.min(st.queue.len());
                let n = want.saturating_sub(st.live_workers);
                st.live_workers += n;
                n
            }
        };
        for _ in 0..spawn_n {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || worker_loop(inner));
        }
    }
}

/// Append transition rows and commit them, serialized by the ingest lock.
fn persist<O>(inner: &RunnerInner<O>, records: &[JobRecord]) -> StoreResult<()> {
    let _g = inner.ingest.lock().unwrap_or_else(PoisonError::into_inner);
    for r in records {
        inner.db.insert("jobs", r.row())?;
    }
    inner.db.commit()?;
    Ok(())
}

enum Step<O> {
    Exit,
    Task {
        job_id: JobId,
        spec: JobSpec,
        unit: UnitSpec,
        executor: Arc<dyn JobExecutor<O>>,
        control: JobControl,
    },
}

fn worker_loop<O: Clone + Send + 'static>(inner: Arc<RunnerInner<O>>) {
    loop {
        match next_step(&inner) {
            Step::Exit => {
                inner.cv.notify_all();
                return;
            }
            Step::Task {
                job_id,
                spec,
                unit,
                executor,
                control,
            } => {
                // Compute phase: no locks held; this is where the
                // worker-count scaling comes from.
                let result = {
                    let m = &inner.metrics;
                    let _run = Span::enter(&m.registry, &m.run);
                    executor.run_unit(&spec, &unit, &control)
                };
                complete_unit(&inner, job_id, &spec, &unit, executor, result);
                inner.cv.notify_all();
            }
        }
    }
}

/// Pop the next runnable unit, skipping units of terminal jobs; exit when
/// the queue is empty or the crash hook fired.
fn next_step<O>(inner: &RunnerInner<O>) -> Step<O> {
    let mut st = lock(&inner.state);
    loop {
        if st.crashed {
            st.live_workers -= 1;
            return Step::Exit;
        }
        let Some(queued) = st.queue.pop() else {
            st.live_workers -= 1;
            return Step::Exit;
        };
        // audit: allow(panic) — queue entries are created only for jobs
        // in the map, and jobs are never removed from it.
        let job = st.jobs.get_mut(&queued.job_id).expect("queued job exists");
        job.pending -= 1;
        if job.state.is_terminal() || job.control.is_cancelled() {
            continue; // dropped unit of a cancelled/failed job
        }
        if job.state == JobState::Queued {
            // Durable Running state piggybacks on the first progress
            // commit; flipping it here is enough for observers, and a
            // crash before any completion correctly resumes from Queued.
            job.state = JobState::Running;
        }
        job.inflight += 1;
        // Queue wait ends the moment the unit is handed to a worker.
        if let Some(t0) = queued.enqueued_at {
            inner.metrics.queue_wait.record_duration(t0.elapsed());
        }
        return Step::Task {
            job_id: queued.job_id,
            spec: job.spec.clone(),
            unit: queued.unit,
            // audit: allow(panic) — the terminal/cancelled check above
            // skipped this unit; non-terminal jobs keep their executor.
            executor: Arc::clone(job.executor.as_ref().expect("non-terminal job")),
            control: job.control.clone(),
        };
    }
}

/// Apply one finished unit: stage its writes + progress transition in one
/// transaction, then finalize the job if it was the last unit.
fn complete_unit<O: Clone>(
    inner: &RunnerInner<O>,
    job_id: JobId,
    spec: &JobSpec,
    unit: &UnitSpec,
    executor: Arc<dyn JobExecutor<O>>,
    result: Result<O, String>,
) {
    match result {
        Ok(outcome) => {
            let ig = inner.ingest.lock().unwrap_or_else(PoisonError::into_inner);
            // Decide under the state lock, write under the ingest lock.
            let (rows, finalizes, kind_done) = {
                let mut st = lock(&inner.state);
                let crashed = st.crashed;
                // audit: allow(panic) — this worker holds an inflight unit
                // of job_id, and jobs are never removed from the map.
                let job = st.jobs.get_mut(&job_id).expect("inflight job exists");
                job.inflight -= 1;
                if job.state.is_terminal() || job.control.is_cancelled() || crashed {
                    // Cancelled/failed/crashed while we were computing:
                    // discard the outcome; nothing may be staged.
                    return;
                }
                let kind_done = Arc::clone(&job.kind_done);
                job.done_keys.push(unit.key);
                job.outcomes.push(outcome.clone());
                job.seq += 1;
                let mut rows = vec![job.record(job_id)];
                let crash_now = match st.crash_in.as_mut() {
                    Some(n) => {
                        *n -= 1;
                        *n == 0
                    }
                    None => false,
                };
                let mut finalizes = false;
                if crash_now {
                    // This completion still commits (a crash lands
                    // *between* versions); no further transitions after.
                    st.crashed = true;
                    for j in st.jobs.values_mut() {
                        j.executor = None;
                    }
                } else {
                    let job = st.jobs.get_mut(&job_id).expect("still live"); // audit: allow(panic) — same map invariant
                    if job.pending == 0 && job.inflight == 0 {
                        // Persist the Done transition with this commit,
                        // but flip the in-memory state only after the
                        // commit lands — a waiter woken at `Done` must be
                        // able to read the job's last rows.
                        finalizes = true;
                        job.seq += 1;
                        let mut done = job.record(job_id);
                        done.state = JobState::Done;
                        rows.push(done);
                    }
                }
                (rows, finalizes, kind_done)
            };
            // Stage the unit's data-plane writes and its control-plane
            // transition(s), then commit once: atomic unit completion.
            let committed = executor.stage_unit(spec, unit, &outcome).is_ok()
                && rows
                    .iter()
                    .all(|r| inner.db.insert("jobs", r.row()).is_ok())
                && inner.db.commit().is_ok();
            if !committed {
                // Discard whatever half-staged; the job fails fast. The
                // unit's in-memory completion must unwind too, or the
                // Failed record and report would claim rolled-back work.
                inner.db.rollback();
                let mut st = lock(&inner.state);
                if let Some(job) = st.jobs.get_mut(&job_id) {
                    if let Some(pos) = job.done_keys.iter().position(|k| *k == unit.key) {
                        job.done_keys.remove(pos);
                        job.outcomes.remove(pos);
                    }
                }
            }
            drop(ig);
            let m = &inner.metrics;
            if !committed {
                if m.registry.enabled() {
                    m.failed.inc();
                    m.registry.event_at(
                        flor_obs::Level::Error,
                        "job.unit_failed",
                        format!("job={job_id} unit={} staging/commit failed", unit.key),
                    );
                }
                fail_job(inner, job_id, "unit staging/commit failed");
            } else if m.registry.enabled() {
                m.done.inc();
                kind_done.inc();
            }
            if committed && finalizes {
                let mut st = lock(&inner.state);
                if let Some(job) = st.jobs.get_mut(&job_id) {
                    if !job.state.is_terminal() {
                        job.state = JobState::Done;
                        job.executor = None;
                    }
                }
            }
        }
        Err(e) => {
            let mut st = lock(&inner.state);
            // audit: allow(panic) — error path of the same inflight unit;
            // the map never drops jobs.
            let job = st.jobs.get_mut(&job_id).expect("inflight job exists");
            job.inflight -= 1;
            let cancelled = job.control.is_cancelled() || job.state == JobState::Cancelled;
            drop(st);
            if !cancelled {
                let m = &inner.metrics;
                if m.registry.enabled() {
                    m.failed.inc();
                    m.registry.event_at(
                        flor_obs::Level::Error,
                        "job.unit_failed",
                        format!("job={job_id} unit={}: {e}", unit.key),
                    );
                }
                fail_job(inner, job_id, &e);
            }
        }
    }
}

/// Fail fast: persist a `Failed` transition and stop the job's remaining
/// units (queued ones are dropped on pop; running ones see the cancel
/// flag).
fn fail_job<O>(inner: &RunnerInner<O>, job_id: JobId, detail: &str) {
    let record = {
        let mut st = lock(&inner.state);
        let Some(job) = st.jobs.get_mut(&job_id) else {
            return;
        };
        if job.state.is_terminal() {
            return;
        }
        job.state = JobState::Failed;
        job.detail = detail.to_string();
        job.control.cancel();
        job.executor = None;
        job.seq += 1;
        job.record(job_id)
    };
    let _ = persist(inner, &[record]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::recover_records;
    use flor_store::flor_schema;
    use std::time::Duration;

    /// Toy executor: squares the unit key; a shared gate lets tests hold
    /// workers mid-unit, and a log records completion order.
    struct Toy {
        gate: Arc<Mutex<()>>,
        log: Arc<Mutex<Vec<(JobId, i64)>>>,
        units: i64,
        fail_on: Option<i64>,
    }

    impl Toy {
        fn new(units: i64) -> Toy {
            Toy {
                gate: Arc::new(Mutex::new(())),
                log: Arc::new(Mutex::new(Vec::new())),
                units,
                fail_on: None,
            }
        }
    }

    impl JobExecutor<i64> for Toy {
        fn plan(&self, spec: &JobSpec) -> Result<Vec<UnitSpec>, String> {
            if spec.payload == "bad" {
                return Err("unplannable".into());
            }
            Ok((1..=self.units)
                .map(|k| UnitSpec {
                    key: k,
                    label: format!("u{k}"),
                })
                .collect())
        }

        fn run_unit(&self, spec: &JobSpec, u: &UnitSpec, ctl: &JobControl) -> Result<i64, String> {
            drop(self.gate.lock().unwrap());
            if ctl.is_cancelled() {
                return Err("cancelled".into());
            }
            if self.fail_on == Some(u.key) {
                return Err(format!("unit {} exploded", u.key));
            }
            self.log.lock().unwrap().push((spec.priority, u.key));
            Ok(u.key * u.key)
        }

        fn stage_unit(&self, _: &JobSpec, _: &UnitSpec, _: &i64) -> Result<(), String> {
            Ok(())
        }
    }

    fn spec(priority: i64) -> JobSpec {
        JobSpec {
            kind: "toy".into(),
            priority,
            payload: String::new(),
        }
    }

    #[test]
    fn submit_runs_all_units_and_persists_done() {
        let db = Database::in_memory(flor_schema());
        let runner: JobRunner<i64> = JobRunner::new(db.clone(), 2);
        let h = runner.submit(spec(0), Arc::new(Toy::new(4))).unwrap();
        let report = h.wait();
        assert_eq!(report.state, JobState::Done);
        let mut got = report.outcomes;
        got.sort_unstable();
        assert_eq!(got, vec![1, 4, 9, 16]);
        let recs = recover_records(&db).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].state, JobState::Done);
        assert_eq!(recs[0].units_done, 4);
        runner.wait_idle();
    }

    #[test]
    fn higher_priority_job_preempts_queued_units() {
        let db = Database::in_memory(flor_schema());
        let runner: JobRunner<i64> = JobRunner::new(db.clone(), 1);
        let toy_low = Toy::new(2);
        let gate = Arc::clone(&toy_low.gate);
        let log = Arc::clone(&toy_low.log);
        let toy_high = Toy {
            gate: Arc::clone(&gate),
            log: Arc::clone(&log),
            units: 1,
            fail_on: None,
        };
        // Hold the single worker inside low's first unit while high queues.
        let held = gate.lock().unwrap();
        let low = runner.submit(spec(0), Arc::new(toy_low)).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let high = runner.submit(spec(10), Arc::new(toy_high)).unwrap();
        drop(held);
        low.wait();
        high.wait();
        let order: Vec<(i64, i64)> = log.lock().unwrap().clone();
        // Low's unit 1 was already running; high's unit jumps the rest.
        assert_eq!(order, vec![(0, 1), (10, 1), (0, 2)]);
    }

    #[test]
    fn cancel_drops_queued_units_and_is_durable() {
        let db = Database::in_memory(flor_schema());
        let runner: JobRunner<i64> = JobRunner::new(db.clone(), 1);
        let toy = Toy::new(50);
        let gate = Arc::clone(&toy.gate);
        let held = gate.lock().unwrap();
        let h = runner.submit(spec(0), Arc::new(toy)).unwrap();
        h.cancel();
        drop(held);
        let report = h.wait();
        assert_eq!(report.state, JobState::Cancelled);
        assert!(report.outcomes.len() < 50, "queued units were dropped");
        runner.wait_idle();
        // The cancellation is persisted: a recovery sees a terminal job.
        let recs = recover_records(&db).unwrap();
        assert_eq!(recs[0].state, JobState::Cancelled);
    }

    #[test]
    fn plan_failure_is_a_failed_job() {
        let db = Database::in_memory(flor_schema());
        let runner: JobRunner<i64> = JobRunner::new(db.clone(), 1);
        let h = runner
            .submit(
                JobSpec {
                    kind: "toy".into(),
                    priority: 0,
                    payload: "bad".into(),
                },
                Arc::new(Toy::new(1)),
            )
            .unwrap();
        let report = h.wait();
        assert_eq!(report.state, JobState::Failed);
        assert_eq!(report.detail, "unplannable");
        assert_eq!(recover_records(&db).unwrap()[0].state, JobState::Failed);
    }

    #[test]
    fn unit_failure_fails_the_job_fast() {
        let db = Database::in_memory(flor_schema());
        let runner: JobRunner<i64> = JobRunner::new(db.clone(), 1);
        let toy = Toy {
            fail_on: Some(2),
            ..Toy::new(5)
        };
        let h = runner.submit(spec(0), Arc::new(toy)).unwrap();
        let report = h.wait();
        assert_eq!(report.state, JobState::Failed);
        assert!(report.detail.contains("unit 2 exploded"));
        assert_eq!(report.outcomes, vec![1], "only unit 1 completed");
    }

    #[test]
    fn crash_between_units_resumes_from_done_keys() {
        let db = Database::in_memory(flor_schema());
        let runner: JobRunner<i64> = JobRunner::new(db.clone(), 1);
        let toy = Toy::new(3);
        let log = Arc::clone(&toy.log);
        runner.crash_after_units(1);
        let h = runner.submit(spec(0), Arc::new(toy)).unwrap();
        runner.wait_idle();
        assert!(runner.is_crashed());
        assert_eq!(h.progress().units_done, 1);
        // "Reopen": a fresh runner over the same (shared) database.
        let recovered = recover_records(&db).unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(!recovered[0].state.is_terminal());
        assert_eq!(recovered[0].done_keys, vec![1]);
        let runner2: JobRunner<i64> = JobRunner::new(db.clone(), 1);
        let toy2 = Toy {
            gate: Arc::new(Mutex::new(())),
            log: Arc::clone(&log),
            units: 3,
            fail_on: None,
        };
        let h2 = runner2.resume(&recovered[0], Arc::new(toy2)).unwrap();
        let report = h2.wait();
        assert_eq!(report.state, JobState::Done);
        // Unit 1 is not re-run; the resumed job finishes 2 and 3.
        let keys: Vec<i64> = log.lock().unwrap().iter().map(|(_, k)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3], "no unit ran twice");
        let final_rec = recover_records(&db).unwrap();
        assert_eq!(final_rec[0].state, JobState::Done);
        assert_eq!(final_rec[0].units_done, 3);
    }

    #[test]
    fn prune_terminal_drops_outcomes_but_keeps_status() {
        let db = Database::in_memory(flor_schema());
        let runner: JobRunner<i64> = JobRunner::new(db.clone(), 1);
        let h = runner.submit(spec(0), Arc::new(Toy::new(3))).unwrap();
        h.wait();
        runner.wait_idle();
        assert_eq!(h.outcomes().len(), 3);
        assert_eq!(runner.prune_terminal(), 1);
        assert!(h.outcomes().is_empty(), "outcomes released");
        assert_eq!(h.state(), JobState::Done);
        assert_eq!(h.progress().units_done, 3, "status survives pruning");
        assert_eq!(runner.prune_terminal(), 0, "idempotent");
    }

    #[test]
    fn resume_with_nothing_left_finalizes() {
        let db = Database::in_memory(flor_schema());
        let runner: JobRunner<i64> = JobRunner::new(db.clone(), 1);
        let rec = JobRecord {
            job_id: 9,
            seq: 4,
            kind: "toy".into(),
            priority: 0,
            state: JobState::Running,
            payload: String::new(),
            units_total: 2,
            units_done: 2,
            done_keys: vec![1, 2],
            detail: String::new(),
        };
        let h = runner.resume(&rec, Arc::new(Toy::new(2))).unwrap();
        assert_eq!(h.wait().state, JobState::Done);
    }
}
