//! Job identity, state machine, and the persisted transition-row form.
//!
//! The store is append-only, so a job's lifecycle is recorded as a
//! sequence of rows in the `jobs` table — one per transition, stamped
//! with a monotonically increasing `seq`. The row with the maximum `seq`
//! per `job_id` *is* the job's current state (latest-wins, the same
//! discipline `flor.utils.latest` applies to log rows). [`recover_records`]
//! folds the table back into one [`JobRecord`] per job; the incremental
//! equivalent lives in [`crate::JobBoard`].

use flor_df::Value;
use flor_store::{Database, StoreResult};
use std::collections::HashMap;
use std::fmt;

/// Identifies one background job across process restarts.
pub type JobId = i64;

/// Column order of the `jobs` table (see `flor_store::flor_schema`).
pub const JOB_COLS: [&str; 10] = [
    "job_id",
    "seq",
    "kind",
    "priority",
    "state",
    "payload",
    "units_total",
    "units_done",
    "done_keys",
    "detail",
];

/// A job's lifecycle state. `Queued → Running → {Done, Failed, Cancelled}`;
/// the three right-hand states are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Admitted and persisted; no unit has completed yet.
    Queued,
    /// At least one unit has been picked up by a worker.
    Running,
    /// Every unit completed.
    Done,
    /// A unit hard-failed (or planning failed); see the record's `detail`.
    Failed,
    /// Cancelled by the submitter; queued units were dropped.
    Cancelled,
}

impl JobState {
    /// Whether no further transitions can occur.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Stable text form, as stored in the `jobs.state` column.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parse the stored text form; unknown text reads as `Failed` so a
    /// corrupted row can never resurrect as runnable work.
    pub fn parse(s: &str) -> JobState {
        match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "cancelled" => JobState::Cancelled,
            _ => JobState::Failed,
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What to run: an executor-interpreted description of one job.
///
/// The scheduler treats `payload` as opaque; the [`crate::JobExecutor`]
/// that planned the job decodes it. It is persisted verbatim so a job can
/// be resumed by a fresh process that has lost all in-memory context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Executor-dispatch tag (e.g. `"backfill"`).
    pub kind: String,
    /// Scheduling priority: higher runs first.
    pub priority: i64,
    /// Opaque executor payload, persisted with the job.
    pub payload: String,
}

/// One schedulable unit of a job (for backfill: one prior version).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitSpec {
    /// Stable unit key (for backfill: the run's tstamp). Persisted in
    /// `done_keys` on completion — the resume cursor.
    pub key: i64,
    /// Human-readable label (for backfill: the version id).
    pub label: String,
}

/// The latest-wins materialized state of one job — what one `jobs`-table
/// row encodes, and what [`recover_records`] / [`crate::JobBoard`] return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// The job's id.
    pub job_id: JobId,
    /// Transition sequence number (max per job wins).
    pub seq: i64,
    /// Executor-dispatch tag.
    pub kind: String,
    /// Scheduling priority.
    pub priority: i64,
    /// Lifecycle state at this transition.
    pub state: JobState,
    /// Opaque executor payload.
    pub payload: String,
    /// Planned unit count.
    pub units_total: usize,
    /// Completed unit count.
    pub units_done: usize,
    /// Keys of completed units — the resume cursor.
    pub done_keys: Vec<i64>,
    /// Failure detail or progress note.
    pub detail: String,
}

impl JobRecord {
    /// Encode as a `jobs`-table row in [`JOB_COLS`] order.
    pub fn row(&self) -> Vec<Value> {
        let done_keys = self
            .done_keys
            .iter()
            .map(i64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        vec![
            Value::Int(self.job_id),
            Value::Int(self.seq),
            Value::from(self.kind.as_str()),
            Value::Int(self.priority),
            Value::from(self.state.as_str()),
            Value::from(self.payload.as_str()),
            Value::Int(self.units_total as i64),
            Value::Int(self.units_done as i64),
            Value::from(done_keys),
            Value::from(self.detail.as_str()),
        ]
    }

    /// Decode a `jobs`-table row ([`JOB_COLS`] order); `None` on arity or
    /// type mismatch.
    pub fn from_row(row: &[Value]) -> Option<JobRecord> {
        if row.len() != JOB_COLS.len() {
            return None;
        }
        let done_text = row[8].to_text();
        let done_keys: Vec<i64> = done_text
            .split(',')
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.parse().ok())
            .collect();
        Some(JobRecord {
            job_id: row[0].as_i64()?,
            seq: row[1].as_i64()?,
            kind: row[2].to_text(),
            priority: row[3].as_i64()?,
            state: JobState::parse(&row[4].to_text()),
            payload: row[5].to_text(),
            units_total: row[6].as_i64()? as usize,
            units_done: row[7].as_i64()? as usize,
            done_keys,
            detail: row[9].to_text(),
        })
    }

    /// The job's spec, reconstructed for resumption.
    pub fn spec(&self) -> JobSpec {
        JobSpec {
            kind: self.kind.clone(),
            priority: self.priority,
            payload: self.payload.clone(),
        }
    }
}

/// Queue-depth observability: job counts by state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Jobs admitted but not yet started.
    pub queued: usize,
    /// Jobs with at least one completed unit, not yet terminal.
    pub running: usize,
    /// Completed jobs.
    pub done: usize,
    /// Failed jobs.
    pub failed: usize,
    /// Cancelled jobs.
    pub cancelled: usize,
}

impl JobStats {
    /// Count `state` into the matching bucket.
    pub fn count(&mut self, state: JobState) {
        match state {
            JobState::Queued => self.queued += 1,
            JobState::Running => self.running += 1,
            JobState::Done => self.done += 1,
            JobState::Failed => self.failed += 1,
            JobState::Cancelled => self.cancelled += 1,
        }
    }
}

/// Fold the append-only `jobs` table into one latest-wins [`JobRecord`]
/// per job, ordered by `job_id`. The full-scan equivalent of the
/// incrementally maintained [`crate::JobBoard`]; `Flor::open` uses it to
/// find incomplete jobs to resume.
///
/// The payload is persisted only on a job's first transition (it is
/// immutable and can be large), so the fold carries it forward into the
/// latest record.
pub fn recover_records(db: &Database) -> StoreResult<Vec<JobRecord>> {
    let df = db.scan("jobs")?;
    let mut best: HashMap<JobId, JobRecord> = HashMap::new();
    let mut payloads: HashMap<JobId, String> = HashMap::new();
    for row in df.rows() {
        if let Some(rec) = JobRecord::from_row(&row.to_vec()) {
            if !rec.payload.is_empty() {
                payloads
                    .entry(rec.job_id)
                    .or_insert_with(|| rec.payload.clone());
            }
            match best.get(&rec.job_id) {
                Some(prev) if prev.seq >= rec.seq => {}
                _ => {
                    best.insert(rec.job_id, rec);
                }
            }
        }
    }
    let mut out: Vec<JobRecord> = best.into_values().collect();
    for rec in &mut out {
        if rec.payload.is_empty() {
            if let Some(p) = payloads.get(&rec.job_id) {
                rec.payload = p.clone();
            }
        }
    }
    out.sort_by_key(|r| r.job_id);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_store::flor_schema;

    fn rec(job_id: i64, seq: i64, state: JobState) -> JobRecord {
        JobRecord {
            job_id,
            seq,
            kind: "backfill".into(),
            priority: 5,
            state,
            payload: "train.fl\u{1f}acc".into(),
            units_total: 3,
            units_done: 1,
            done_keys: vec![4],
            detail: String::new(),
        }
    }

    #[test]
    fn row_round_trip() {
        let r = rec(7, 2, JobState::Running);
        assert_eq!(JobRecord::from_row(&r.row()), Some(r));
    }

    #[test]
    fn state_text_round_trip() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::parse(s.as_str()), s);
        }
        assert_eq!(JobState::parse("garbled"), JobState::Failed);
        assert!(JobState::Done.is_terminal());
        assert!(!JobState::Running.is_terminal());
    }

    #[test]
    fn recover_folds_latest_wins() {
        let db = Database::in_memory(flor_schema());
        db.insert("jobs", rec(1, 1, JobState::Queued).row())
            .unwrap();
        db.insert("jobs", rec(1, 2, JobState::Running).row())
            .unwrap();
        db.insert("jobs", rec(2, 1, JobState::Queued).row())
            .unwrap();
        db.insert("jobs", rec(1, 3, JobState::Done).row()).unwrap();
        db.commit().unwrap();
        let recs = recover_records(&db).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].job_id, 1);
        assert_eq!(recs[0].state, JobState::Done);
        assert_eq!(recs[1].state, JobState::Queued);
    }

    #[test]
    fn recover_carries_first_payload_forward() {
        // The payload is persisted only on the first transition; later
        // rows carry it empty and the fold restores it.
        let db = Database::in_memory(flor_schema());
        db.insert("jobs", rec(1, 1, JobState::Queued).row())
            .unwrap();
        let mut progress = rec(1, 2, JobState::Running);
        progress.payload = String::new();
        db.insert("jobs", progress.row()).unwrap();
        db.commit().unwrap();
        let recs = recover_records(&db).unwrap();
        assert_eq!(recs[0].seq, 2);
        assert_eq!(recs[0].payload, "train.fl\u{1f}acc");
    }
}
