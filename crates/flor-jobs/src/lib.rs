//! # flor-jobs — durable background jobs over the FlorDB store
//!
//! The control plane the ROADMAP's heavy-traffic goal needs: long-running
//! retroactive work (hindsight backfill above all) runs as *scheduled,
//! resumable background jobs* instead of blocking calls, while foreground
//! reads keep flowing.
//!
//! * [`JobRunner`] — a prioritized multi-worker pool. A [`JobExecutor`]
//!   decomposes each job into [`UnitSpec`]s; every completed unit commits
//!   its store writes atomically with a progress transition, so results
//!   become visible (and materialized views refresh, via the change feed)
//!   per unit, not per job.
//! * **Durability** — the store has no in-place update, so job state is an
//!   append-only sequence of `jobs`-table rows, folded latest-wins by
//!   `seq` ([`recover_records`]). A process killed mid-job resumes from
//!   the persisted `done_keys` cursor ([`JobRunner::resume`]) and
//!   converges to the uninterrupted result.
//! * [`JobHandle`] — status, live progress, incremental per-unit
//!   outcomes, blocking `wait`, and durable `cancel`.
//! * [`JobBoard`] — an incrementally maintained listing of every job's
//!   latest state, reusing the flor-view change-feed + `LatestState`
//!   machinery.
//!
//! ```
//! use flor_jobs::{JobControl, JobExecutor, JobRunner, JobSpec, JobState, UnitSpec};
//! use flor_store::{flor_schema, Database};
//! use std::sync::Arc;
//!
//! struct Squares;
//! impl JobExecutor<i64> for Squares {
//!     fn plan(&self, spec: &JobSpec) -> Result<Vec<UnitSpec>, String> {
//!         let n: i64 = spec.payload.parse().map_err(|_| "bad payload".to_string())?;
//!         Ok((1..=n).map(|k| UnitSpec { key: k, label: format!("sq {k}") }).collect())
//!     }
//!     fn run_unit(&self, _: &JobSpec, u: &UnitSpec, _: &JobControl) -> Result<i64, String> {
//!         Ok(u.key * u.key)
//!     }
//!     fn stage_unit(&self, _: &JobSpec, _: &UnitSpec, _: &i64) -> Result<(), String> {
//!         Ok(()) // a real executor stages store rows here
//!     }
//! }
//!
//! let db = Database::in_memory(flor_schema());
//! let runner: JobRunner<i64> = JobRunner::new(db.clone(), 2);
//! let spec = JobSpec { kind: "squares".into(), priority: 0, payload: "4".into() };
//! let handle = runner.submit(spec, Arc::new(Squares)).unwrap();
//! let report = handle.wait();
//! assert_eq!(report.state, JobState::Done);
//! let mut squares = report.outcomes;
//! squares.sort();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! // Every transition was persisted to the `jobs` table:
//! assert!(db.row_count("jobs").unwrap() >= 2);
//! ```

#![warn(missing_docs)]

pub mod board;
pub mod job;
pub mod runner;

pub use board::JobBoard;
pub use job::{recover_records, JobId, JobRecord, JobSpec, JobState, JobStats, UnitSpec};
pub use runner::{JobControl, JobExecutor, JobHandle, JobProgress, JobReport, JobRunner};
