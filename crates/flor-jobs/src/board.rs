//! The job board: an incrementally maintained listing of every job's
//! latest state, fed by the store's change feed.
//!
//! This is the observability half of the scheduler, and it deliberately
//! reuses the flor-view machinery instead of re-inventing it: transition
//! rows arrive through a [`flor_store::Subscription`] exactly like log
//! rows do for materialized views, and the latest-wins fold per `job_id`
//! is a [`flor_view::LatestState`] keyed by the `seq` column. A consumer
//! that falls behind the feed's queue bound observes an epoch gap and
//! transparently rebuilds from a consistent snapshot — the same
//! slow-consumer discipline the view catalog applies.

use crate::job::{JobRecord, JobStats, JOB_COLS};
use flor_df::{DataFrame, Value};
use flor_store::{Database, StoreResult, Subscription};
use flor_view::LatestState;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct BoardInner {
    /// Created on first access so idle kernels don't queue deltas.
    sub: Option<Subscription>,
    /// Accumulated `jobs` transition rows, in commit order.
    frame: DataFrame,
    /// Latest-wins fold: per `job_id`, the rows at max `seq`.
    latest: LatestState,
    /// Per-job payload, persisted only on the first transition and
    /// carried forward into the latest-wins record here.
    payloads: HashMap<i64, String>,
    epoch: u64,
    rebuilds: u64,
}

/// An incrementally maintained `jobs`-table listing.
///
/// Cloning shares the same board (and its single feed subscription).
#[derive(Clone)]
pub struct JobBoard {
    db: Database,
    inner: Arc<Mutex<BoardInner>>,
}

impl JobBoard {
    /// A board over `db`'s `jobs` table.
    pub fn new(db: Database) -> JobBoard {
        JobBoard {
            db,
            inner: Arc::new(Mutex::new(BoardInner {
                sub: None,
                frame: DataFrame::new(),
                latest: LatestState::keyed(&["job_id"], "seq"),
                payloads: HashMap::new(),
                epoch: 0,
                rebuilds: 0,
            })),
        }
    }

    /// Every job's latest state, ordered by `job_id`.
    pub fn list(&self) -> StoreResult<Vec<JobRecord>> {
        let mut g = self.inner.lock();
        self.refresh(&mut g)?;
        let mut out: Vec<JobRecord> = g
            .latest
            .surviving_rows()
            .into_iter()
            .filter_map(|r| JobRecord::from_row(&row_at(&g.frame, r)))
            .collect();
        for rec in &mut out {
            if rec.payload.is_empty() {
                if let Some(p) = g.payloads.get(&rec.job_id) {
                    rec.payload = p.clone();
                }
            }
        }
        out.sort_by_key(|r| r.job_id);
        Ok(out)
    }

    /// Job counts by state.
    pub fn stats(&self) -> StoreResult<JobStats> {
        let mut stats = JobStats::default();
        for rec in self.list()? {
            stats.count(rec.state);
        }
        Ok(stats)
    }

    /// How many times a feed gap forced a snapshot rebuild.
    pub fn rebuilds(&self) -> u64 {
        self.inner.lock().rebuilds
    }

    /// Drain the feed into the maintained frame; rebuild on a gap.
    fn refresh(&self, g: &mut BoardInner) -> StoreResult<()> {
        if g.sub.is_none() {
            g.sub = Some(self.db.subscribe());
            return self.rebuild(g);
        }
        // audit: allow(panic) — the is_none branch above either filled
        // `sub` or returned, so it is Some here.
        let batches = g.sub.as_ref().expect("just checked").poll();
        for batch in &batches {
            if batch.epoch <= g.epoch {
                continue;
            }
            if batch.first_epoch() != g.epoch + 1 {
                // Slow consumer: the feed shed batches we never polled
                // (coalesced batches widen `span` instead, and stay
                // contiguous).
                return self.rebuild(g);
            }
            for delta in batch.deltas.iter() {
                if delta.table == "jobs" {
                    apply_row(g, &delta.row);
                }
            }
            g.epoch = batch.epoch;
        }
        Ok(())
    }

    /// Reset from an epoch-stamped consistent snapshot. Any commit newer
    /// than the snapshot is still queued on the subscription and will be
    /// applied as a delta (batches at or below the epoch are skipped).
    fn rebuild(&self, g: &mut BoardInner) -> StoreResult<()> {
        let (epoch, mut frames) = self.db.snapshot(&["jobs"])?;
        // audit: allow(panic) — `snapshot` returns exactly one frame per
        // requested table and we asked for exactly one.
        let frame = frames.pop().expect("one table requested");
        let mut latest = LatestState::keyed(&["job_id"], "seq");
        let all: Vec<usize> = (0..frame.n_rows()).collect();
        latest.observe(&frame, &all);
        g.payloads.clear();
        for r in 0..frame.n_rows() {
            remember_payload(&mut g.payloads, &row_at(&frame, r));
        }
        g.frame = frame;
        g.latest = latest;
        g.epoch = epoch;
        g.rebuilds += 1;
        Ok(())
    }
}

fn apply_row(g: &mut BoardInner, row: &[Value]) {
    if row.len() != JOB_COLS.len() {
        return;
    }
    remember_payload(&mut g.payloads, row);
    let entries: Vec<(&str, Value)> = JOB_COLS.iter().copied().zip(row.iter().cloned()).collect();
    g.frame.push_row(&entries);
    let pos = g.frame.n_rows() - 1;
    g.latest.observe(&g.frame, &[pos]);
}

/// Record a transition row's payload for its job (first non-empty wins).
fn remember_payload(payloads: &mut HashMap<i64, String>, row: &[Value]) {
    if row.len() != JOB_COLS.len() {
        return;
    }
    let (Some(job_id), payload) = (row[0].as_i64(), row[5].to_text()) else {
        return;
    };
    if !payload.is_empty() {
        payloads.entry(job_id).or_insert(payload);
    }
}

fn row_at(frame: &DataFrame, r: usize) -> Vec<Value> {
    JOB_COLS
        .iter()
        .map(|c| frame.get(r, c).cloned().unwrap_or(Value::Null))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobState};
    use flor_store::flor_schema;

    fn transition(job_id: JobId, seq: i64, state: JobState) -> Vec<Value> {
        JobRecord {
            job_id,
            seq,
            kind: "k".into(),
            priority: 0,
            state,
            payload: String::new(),
            units_total: 2,
            units_done: if state == JobState::Done { 2 } else { 0 },
            done_keys: Vec::new(),
            detail: String::new(),
        }
        .row()
    }

    #[test]
    fn board_tracks_latest_state_incrementally() {
        let db = Database::in_memory(flor_schema());
        let board = JobBoard::new(db.clone());
        assert!(board.list().unwrap().is_empty());
        db.insert("jobs", transition(1, 1, JobState::Queued))
            .unwrap();
        db.commit().unwrap();
        assert_eq!(board.list().unwrap()[0].state, JobState::Queued);
        db.insert("jobs", transition(1, 2, JobState::Running))
            .unwrap();
        db.insert("jobs", transition(2, 1, JobState::Queued))
            .unwrap();
        db.commit().unwrap();
        let listed = board.list().unwrap();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].state, JobState::Running);
        let stats = board.stats().unwrap();
        assert_eq!((stats.running, stats.queued), (1, 1));
        assert_eq!(board.rebuilds(), 1, "only the initial snapshot build");
    }

    #[test]
    fn board_carries_payload_forward() {
        // The payload lands only on seq 1; the board restores it on the
        // latest record, both on the delta path and after a rebuild.
        let db = Database::in_memory(flor_schema());
        let board = JobBoard::new(db.clone());
        let mut rec = JobRecord {
            job_id: 3,
            seq: 1,
            kind: "k".into(),
            priority: 0,
            state: JobState::Queued,
            payload: "spec".into(),
            units_total: 1,
            units_done: 0,
            done_keys: Vec::new(),
            detail: String::new(),
        };
        db.insert("jobs", rec.row()).unwrap();
        db.commit().unwrap();
        board.list().unwrap();
        rec.seq = 2;
        rec.state = JobState::Done;
        rec.payload = String::new();
        db.insert("jobs", rec.row()).unwrap();
        db.commit().unwrap();
        let listed = board.list().unwrap();
        assert_eq!(listed[0].state, JobState::Done);
        assert_eq!(listed[0].payload, "spec");
        // A fresh board (snapshot rebuild path) agrees.
        let fresh = JobBoard::new(db.clone());
        assert_eq!(fresh.list().unwrap()[0].payload, "spec");
    }

    #[test]
    fn board_absorbs_batch_overflow_without_rebuild() {
        // Past the feed's batch-count bound the queue coalesces adjacent
        // batches instead of shedding, so the board keeps applying deltas
        // — no gap, no rebuild (only the initial snapshot build counts).
        use flor_store::feed::MAX_PENDING_BATCHES;
        let db = Database::in_memory(flor_schema());
        let board = JobBoard::new(db.clone());
        board.list().unwrap(); // subscribe
        for seq in 1..=(MAX_PENDING_BATCHES as i64 + 20) {
            db.insert("jobs", transition(1, seq, JobState::Running))
                .unwrap();
            db.commit().unwrap();
        }
        let listed = board.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].seq, MAX_PENDING_BATCHES as i64 + 20);
        assert_eq!(board.rebuilds(), 1, "coalescing keeps the feed gap-free");
    }

    #[test]
    fn board_rebuilds_once_on_feed_gap() {
        // Overflowing the queue's hard delta bound forces a shed; the
        // board detects the gap and rebuilds exactly once.
        use flor_store::feed::MAX_PENDING_DELTAS;
        let db = Database::in_memory(flor_schema());
        let board = JobBoard::new(db.clone());
        board.list().unwrap(); // subscribe
        let per_commit = 64i64;
        let commits = MAX_PENDING_DELTAS as i64 / per_commit + 40;
        let mut seq = 0i64;
        for _ in 0..commits {
            for _ in 0..per_commit {
                seq += 1;
                db.insert("jobs", transition(1, seq, JobState::Running))
                    .unwrap();
            }
            db.commit().unwrap();
        }
        let listed = board.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].seq, seq);
        assert_eq!(board.rebuilds(), 2, "one gap, one rebuild");
        // And deltas apply again afterwards.
        db.insert("jobs", transition(1, 999_999, JobState::Done))
            .unwrap();
        db.commit().unwrap();
        assert_eq!(board.list().unwrap()[0].state, JobState::Done);
        assert_eq!(board.rebuilds(), 2);
    }
}
