//! Delta operators: incremental maintenance of the pivoted context view.
//!
//! [`PivotState`] holds the wide `flor.dataframe` result and applies
//! change-feed batches to it instead of rebuilding. Per log row the work
//! is: resolve the loop-context chain against a cumulative ctx map
//! (incremental join with `loops`), widen the schema if the row carries a
//! never-seen loop dimension or `value_name` (new-column discovery), and
//! upsert one cell keyed by the row's index tuple (incremental
//! group-by/pivot). [`LatestState`] layers `flor.utils.latest` on top via
//! a per-group-key max-timestamp upsert.
//!
//! The invariant, enforced by `tests/prop_view.rs` against the kernel's
//! from-scratch recompute as oracle: after any interleaving of inserts,
//! commits and backfills, the maintained frame is cell-for-cell identical
//! to a full rebuild — including column order, row order, and nulls.

use crate::plan::FIXED_COLS as FIXED;
use flor_df::{Column, DataFrame, DataType, Value};
use flor_store::{CommitBatch, Predicate, RowDelta};
use std::collections::HashMap;
use std::sync::Arc;

// Column positions in the Fig. 1 `logs` and `loops` schemas.
const LOG_PROJID: usize = 0;
const LOG_TSTAMP: usize = 1;
const LOG_FILENAME: usize = 2;
const LOG_CTX: usize = 3;
const LOG_NAME: usize = 4;
const LOG_VALUE: usize = 5;
const LOG_TYPE: usize = 6;
const LOG_ARITY: usize = 7;
const LOOP_CTX: usize = 3;
const LOOP_PARENT: usize = 4;
const LOOP_NAME: usize = 5;
const LOOP_ITER: usize = 6;
const LOOP_VALUE: usize = 7;
const LOOP_ARITY: usize = 8;

/// Why a delta batch could not be applied; the catalog reacts by falling
/// back to a full rebuild of the view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// Batches arrived out of order (a feed epoch was skipped).
    EpochGap {
        /// The view's current epoch.
        have: u64,
        /// The batch that arrived.
        got: u64,
    },
    /// A delta row does not match the expected table schema.
    Malformed(String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::EpochGap { have, got } => {
                write!(f, "epoch gap: view at {have}, batch at {got}")
            }
            DeltaError::Malformed(m) => write!(f, "malformed delta: {m}"),
        }
    }
}

impl std::error::Error for DeltaError {}

#[derive(Debug, Clone)]
struct CtxRow {
    parent: i64,
    loop_name: String,
    iteration: i64,
    value: String,
}

/// Incrementally maintained pivoted view over `logs ⋈ loops`, projected
/// onto a set of requested `value_name`s.
#[derive(Debug, Clone)]
pub struct PivotState {
    names: Vec<String>,
    /// Pushdown predicates over the fixed context columns, enforced at
    /// materialization time: rows failing any predicate are skipped at the
    /// upsert — but still participate in schema discovery, because the
    /// from-scratch oracle's column set and order are determined by *all*
    /// matching-name rows, filtered or not. Fixed columns are part of the
    /// row key, so an excluded log row can never share a pivot row with an
    /// included one and last-write-wins stays intact.
    pushdown: Vec<Predicate>,
    /// Cumulative loop-context map (incremental join state).
    ctx: HashMap<i64, CtxRow>,
    /// Dimension columns after the three fixed ones, in first-seen order —
    /// the same order a from-scratch long-frame build discovers them.
    dim_cols: Vec<String>,
    /// Index tuple (fixed + dims, nulls for absent dims) → row position.
    row_pos: HashMap<Vec<Value>, usize>,
    /// The maintained wide frame. Shared out to readers; deltas mutate in
    /// place via `Arc::make_mut` (copy-on-write only while a reader still
    /// holds an old snapshot).
    frame: Arc<DataFrame>,
    epoch: u64,
}

impl PivotState {
    /// Empty view at epoch `epoch` for the given projection.
    pub fn new(names: &[&str], epoch: u64) -> PivotState {
        PivotState::filtered(names, &[], epoch)
    }

    /// Empty view with pushdown predicates over the fixed context columns
    /// (see the `pushdown` field docs): the maintained frame holds only
    /// rows satisfying every predicate. The caller (the query planner's
    /// [`crate::QueryPlan::split_predicates`]) guarantees predicate
    /// columns are fixed context columns; a predicate over any other
    /// column conservatively matches nothing.
    pub fn filtered(names: &[&str], pushdown: &[Predicate], epoch: u64) -> PivotState {
        PivotState {
            names: names.iter().map(|s| s.to_string()).collect(),
            pushdown: pushdown.to_vec(),
            ctx: HashMap::new(),
            dim_cols: Vec::new(),
            row_pos: HashMap::new(),
            frame: Arc::new(DataFrame::new()),
            epoch,
        }
    }

    /// Build from a consistent `(epoch, logs, loops)` snapshot by feeding
    /// every historical row through the same delta path a live batch
    /// takes. Insertion order is preserved, so the result is identical to
    /// an incremental build that watched the log grow row by row.
    pub fn from_snapshot(
        names: &[&str],
        epoch: u64,
        logs: &DataFrame,
        loops: &DataFrame,
    ) -> Result<PivotState, DeltaError> {
        PivotState::from_snapshot_filtered(names, &[], epoch, logs, loops)
    }

    /// [`PivotState::from_snapshot`] with pushdown predicates (see
    /// [`PivotState::filtered`]).
    pub fn from_snapshot_filtered(
        names: &[&str],
        pushdown: &[Predicate],
        epoch: u64,
        logs: &DataFrame,
        loops: &DataFrame,
    ) -> Result<PivotState, DeltaError> {
        let mut state = PivotState::filtered(names, pushdown, epoch);
        for row in loops.rows() {
            state.apply_loop_row(&row.to_vec())?;
        }
        for row in logs.rows() {
            state.apply_log_row(&row.to_vec())?;
        }
        Ok(state)
    }

    /// The epoch this view reflects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The requested projection.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Whether `col` is an index column of the maintained frame — one of
    /// the three fixed context columns or a discovered loop dimension.
    /// Index cells are written once when their row is created and never
    /// rewritten by an upsert; value columns can be.
    pub fn is_index_col(&self, col: &str) -> bool {
        FIXED.contains(&col) || self.dim_cols.iter().any(|d| d == col)
    }

    /// Shared snapshot of the maintained frame. Cheap (`Arc` clone).
    pub fn frame(&self) -> Arc<DataFrame> {
        Arc::clone(&self.frame)
    }

    /// Apply one commit batch. Returns the positions of rows added or
    /// updated (deduplicated, ascending). Batches at or below the view's
    /// epoch are skipped (already reflected by the snapshot the view was
    /// built from); a skipped-ahead epoch is an [`DeltaError::EpochGap`].
    pub fn apply(&mut self, batch: &CommitBatch) -> Result<Vec<usize>, DeltaError> {
        if batch.epoch <= self.epoch {
            return Ok(Vec::new());
        }
        // A coalesced batch spans `first_epoch()..=epoch`; it applies
        // cleanly only when its first commit is the view's next one. A
        // later first commit means batches were shed (an epoch gap); an
        // earlier one would straddle the view's snapshot — also a rebuild.
        if batch.first_epoch() != self.epoch + 1 {
            return Err(DeltaError::EpochGap {
                have: self.epoch,
                got: batch.first_epoch(),
            });
        }
        // Loop rows first: within a transaction a log row may reference a
        // ctx minted earlier in the same transaction, and the full-rebuild
        // oracle resolves chains against the complete loops table.
        for delta in batch.deltas.iter() {
            if delta.table == "loops" {
                self.apply_loop_row(&delta.row)?;
            }
        }
        let mut changed = Vec::new();
        for delta in batch.deltas.iter() {
            if delta.table == "logs" {
                if let Some(pos) = self.apply_log_row(&delta.row)? {
                    changed.push(pos);
                }
            }
        }
        self.epoch = batch.epoch;
        changed.sort_unstable();
        changed.dedup();
        Ok(changed)
    }

    /// Total deltas in `batch` this view would look at (logs + loops).
    pub fn relevant_deltas(batch: &CommitBatch) -> usize {
        batch
            .deltas
            .iter()
            .filter(|d: &&RowDelta| d.table == "logs" || d.table == "loops")
            .count()
    }

    fn apply_loop_row(&mut self, row: &[Value]) -> Result<(), DeltaError> {
        if row.len() != LOOP_ARITY {
            return Err(DeltaError::Malformed(format!(
                "loops row has {} columns, expected {LOOP_ARITY}",
                row.len()
            )));
        }
        let ctx_id = row[LOOP_CTX].as_i64().unwrap_or(0);
        self.ctx.insert(
            ctx_id,
            CtxRow {
                parent: row[LOOP_PARENT].as_i64().unwrap_or(0),
                loop_name: row[LOOP_NAME].to_text(),
                iteration: row[LOOP_ITER].as_i64().unwrap_or(0),
                value: row[LOOP_VALUE].to_text(),
            },
        );
        Ok(())
    }

    fn apply_log_row(&mut self, row: &[Value]) -> Result<Option<usize>, DeltaError> {
        if row.len() != LOG_ARITY {
            return Err(DeltaError::Malformed(format!(
                "logs row has {} columns, expected {LOG_ARITY}",
                row.len()
            )));
        }
        let name = row[LOG_NAME].to_text();
        if !self.names.contains(&name) {
            return Ok(None);
        }
        // Resolve the ctx chain outward, then reverse to outermost-first —
        // mirroring the kernel's full-recompute walk (a missing link
        // truncates the chain there, exactly as the oracle does).
        let mut chain: Vec<&CtxRow> = Vec::new();
        let mut cur = row[LOG_CTX].as_i64().unwrap_or(0);
        while cur != 0 {
            let Some(c) = self.ctx.get(&cur) else { break };
            chain.push(c);
            cur = c.parent;
        }
        chain.reverse();
        let dims: Vec<(String, Value)> = chain
            .iter()
            .flat_map(|c| {
                [
                    (
                        format!("{}_iteration", c.loop_name),
                        Value::Int(c.iteration),
                    ),
                    (
                        format!("{}_value", c.loop_name),
                        Value::from(c.value.as_str()),
                    ),
                ]
            })
            .collect();
        // Decode the text-stored value via its type tag, as the oracle does.
        let tag = row[LOG_TYPE].as_i64().unwrap_or(DataType::Str.tag());
        let value = Value::from_text(&row[LOG_VALUE].to_text(), DataType::from_tag(tag));

        let frame = Arc::make_mut(&mut self.frame);
        // Schema discovery below runs for every projected log row — even
        // one the pushdown gate will exclude — because the from-scratch
        // oracle's column set and column order are determined by all
        // matching-name rows, filtered or not.
        if frame.n_cols() == 0 {
            for f in FIXED {
                frame
                    .add_column(Column {
                        name: f.to_string(),
                        values: Vec::new(),
                    })
                    // audit: allow(panic) — the frame has zero columns, so
                    // adding a fresh named column cannot collide or mismatch.
                    .expect("empty frame accepts the fixed columns");
            }
        }
        // New-dimension discovery: a never-seen loop name widens the index
        // region (inserted before the value columns, nulls backfilled) and
        // extends every existing index key with a null.
        for (d, _) in &dims {
            if !self.dim_cols.contains(d) {
                let pos = FIXED.len() + self.dim_cols.len();
                frame
                    .insert_column(
                        pos,
                        Column {
                            name: d.clone(),
                            values: vec![Value::Null; frame.n_rows()],
                        },
                    )
                    .map_err(|e| DeltaError::Malformed(e.to_string()))?;
                self.dim_cols.push(d.clone());
                self.row_pos = self
                    .row_pos
                    .drain()
                    .map(|(mut key, pos)| {
                        key.push(Value::Null);
                        (key, pos)
                    })
                    .collect();
            }
        }
        // New-column discovery for the value: appended after all existing
        // columns, in first-seen order of value_name.
        if frame.column(&name).is_none() {
            frame
                .add_column(Column {
                    name: name.clone(),
                    values: vec![Value::Null; frame.n_rows()],
                })
                .map_err(|e| DeltaError::Malformed(e.to_string()))?;
        }
        // Pushdown gate: rows failing a maintained predicate are excluded
        // from materialization (discovery above already happened). The
        // predicate columns are fixed context columns by caller contract;
        // anything else conservatively matches nothing.
        let excluded = self.pushdown.iter().any(|p| {
            let cell = match p.col.as_str() {
                c if c == FIXED[0] => &row[LOG_PROJID],
                c if c == FIXED[1] => &row[LOG_TSTAMP],
                c if c == FIXED[2] => &row[LOG_FILENAME],
                _ => return true,
            };
            !p.matches(cell)
        });
        if excluded {
            return Ok(None);
        }
        // Upsert keyed by the index tuple.
        let mut key: Vec<Value> = vec![
            row[LOG_PROJID].clone(),
            row[LOG_TSTAMP].clone(),
            row[LOG_FILENAME].clone(),
        ];
        for d in &self.dim_cols {
            let v = dims
                .iter()
                .find(|(n, _)| n == d)
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::Null);
            key.push(v);
        }
        match self.row_pos.get(&key) {
            Some(&pos) => {
                // Same context re-logged the value: last write wins.
                frame
                    .set_cell(pos, &name, value)
                    .map_err(|e| DeltaError::Malformed(e.to_string()))?;
                Ok(Some(pos))
            }
            None => {
                let mut entries: Vec<(&str, Value)> = vec![
                    (FIXED[0], row[LOG_PROJID].clone()),
                    (FIXED[1], row[LOG_TSTAMP].clone()),
                    (FIXED[2], row[LOG_FILENAME].clone()),
                ];
                for (d, v) in &dims {
                    entries.push((d.as_str(), v.clone()));
                }
                entries.push((name.as_str(), value));
                frame.push_row(&entries);
                let pos = frame.n_rows() - 1;
                self.row_pos.insert(key, pos);
                Ok(Some(pos))
            }
        }
    }
}

/// Incremental `flor.utils.latest`: for each distinct group-key, keep the
/// rows carrying the maximum `tstamp`. Maintained by per-key upsert from
/// the pivot's changed-row reports.
#[derive(Debug, Clone)]
pub struct LatestState {
    group: Vec<String>,
    /// The column whose maximum decides the winner per group key
    /// (`tstamp` for log views; `seq` for the flor-jobs board).
    ts_col: String,
    /// group key → (max ts_col value, row positions at that value).
    best: HashMap<Vec<Value>, (Value, Vec<usize>)>,
}

impl LatestState {
    /// Empty state for the given group columns, keyed by `tstamp`.
    pub fn new(group: &[&str]) -> LatestState {
        LatestState::keyed(group, "tstamp")
    }

    /// Empty state keyed by an arbitrary latest-wins column: the rows
    /// surviving are those carrying the maximum `ts_col` per group key.
    /// This is what lets non-log consumers (the flor-jobs board folds
    /// append-only job transitions by max `seq`) reuse the upsert state.
    pub fn keyed(group: &[&str], ts_col: &str) -> LatestState {
        LatestState {
            group: group.iter().map(|s| s.to_string()).collect(),
            ts_col: ts_col.to_string(),
            best: HashMap::new(),
        }
    }

    /// The group columns.
    pub fn group(&self) -> &[String] {
        &self.group
    }

    /// Observe added or upserted rows of the pivot frame (per-key upsert).
    pub fn observe(&mut self, frame: &DataFrame, added_rows: &[usize]) {
        for &r in added_rows {
            let key: Vec<Value> = self
                .group
                .iter()
                .map(|g| frame.get(r, g).cloned().unwrap_or(Value::Null))
                .collect();
            let ts = frame.get(r, &self.ts_col).cloned().unwrap_or(Value::Null);
            match self.best.get_mut(&key) {
                None => {
                    self.best.insert(key, (ts, vec![r]));
                }
                Some((max, rows)) => {
                    if ts > *max {
                        *max = ts;
                        rows.clear();
                        rows.push(r);
                    } else if ts == *max && !rows.contains(&r) {
                        // `changed` includes in-place upserts: a row already
                        // tracked at the max timestamp must not be pushed
                        // again, or the materialized view duplicates it.
                        rows.push(r);
                    }
                }
            }
        }
    }

    /// Row positions surviving the latest-filter, ascending — the rows a
    /// from-scratch `frame.latest(group, "tstamp")` would keep.
    pub fn surviving_rows(&self) -> Vec<usize> {
        let mut keep: Vec<usize> = self
            .best
            .values()
            .flat_map(|(_, rows)| rows.iter().copied())
            .collect();
        keep.sort_unstable();
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_store::{flor_schema, Database};

    fn log_row(ts: i64, ctx: i64, name: &str, value: &str, tag: i64) -> Vec<Value> {
        vec![
            "p".into(),
            ts.into(),
            "f.fl".into(),
            ctx.into(),
            name.into(),
            value.into(),
            tag.into(),
        ]
    }

    fn loop_row(ts: i64, ctx: i64, parent: i64, name: &str, iter: i64, val: &str) -> Vec<Value> {
        vec![
            "p".into(),
            ts.into(),
            "f.fl".into(),
            ctx.into(),
            parent.into(),
            name.into(),
            iter.into(),
            val.into(),
        ]
    }

    #[test]
    fn pivot_state_builds_and_applies() {
        let db = Database::in_memory(flor_schema());
        let sub = db.subscribe();
        let mut view = PivotState::new(&["loss", "acc"], 0);

        db.insert("logs", log_row(1, 0, "loss", "0.5", 3)).unwrap();
        db.insert("logs", log_row(1, 0, "acc", "0.9", 3)).unwrap();
        db.commit().unwrap();
        for batch in sub.poll() {
            view.apply(&batch).unwrap();
        }
        let f = view.frame();
        assert_eq!(
            f.column_names(),
            vec!["projid", "tstamp", "filename", "loss", "acc"]
        );
        assert_eq!(f.n_rows(), 1);
        assert_eq!(f.get(0, "loss"), Some(&Value::Float(0.5)));

        // Second commit: new tstamp row plus a re-log (upsert) is additive.
        db.insert("logs", log_row(2, 0, "loss", "0.25", 3)).unwrap();
        db.commit().unwrap();
        for batch in sub.poll() {
            let changed = view.apply(&batch).unwrap();
            assert_eq!(changed, vec![1]);
        }
        let f = view.frame();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.get(1, "acc"), Some(&Value::Null));
    }

    #[test]
    fn new_dimension_discovery_mid_stream() {
        let db = Database::in_memory(flor_schema());
        let sub = db.subscribe();
        let mut view = PivotState::new(&["loss"], 0);
        db.insert("logs", log_row(1, 0, "loss", "1", 2)).unwrap();
        db.commit().unwrap();
        db.insert("loops", loop_row(2, 7, 0, "epoch", 0, "0"))
            .unwrap();
        db.insert("logs", log_row(2, 7, "loss", "2", 2)).unwrap();
        db.commit().unwrap();
        for batch in sub.poll() {
            view.apply(&batch).unwrap();
        }
        let f = view.frame();
        assert_eq!(
            f.column_names(),
            vec![
                "projid",
                "tstamp",
                "filename",
                "epoch_iteration",
                "epoch_value",
                "loss"
            ]
        );
        // The old row's late-added dimension cells are null.
        assert_eq!(f.get(0, "epoch_iteration"), Some(&Value::Null));
        assert_eq!(f.get(1, "epoch_iteration"), Some(&Value::Int(0)));
    }

    #[test]
    fn filtered_state_skips_rows_but_discovers_columns() {
        use flor_store::CmpOp;
        let db = Database::in_memory(flor_schema());
        let sub = db.subscribe();
        let mut view =
            PivotState::filtered(&["loss"], &[Predicate::new("tstamp", CmpOp::Gt, 1)], 0);
        // ts=1 fails the predicate but its loop dimension must still be
        // discovered (the oracle pivots all rows, then filters).
        db.insert("loops", loop_row(1, 5, 0, "epoch", 0, "0"))
            .unwrap();
        db.insert("logs", log_row(1, 5, "loss", "9", 2)).unwrap();
        db.insert("logs", log_row(2, 0, "loss", "1", 2)).unwrap();
        db.commit().unwrap();
        for batch in sub.poll() {
            let changed = view.apply(&batch).unwrap();
            assert_eq!(changed, vec![0], "only the ts=2 row materializes");
        }
        let f = view.frame();
        assert_eq!(
            f.column_names(),
            vec![
                "projid",
                "tstamp",
                "filename",
                "epoch_iteration",
                "epoch_value",
                "loss"
            ]
        );
        assert_eq!(f.n_rows(), 1);
        assert_eq!(f.get(0, "tstamp"), Some(&Value::Int(2)));
        // The excluded row's dimension cells stay null on the survivor.
        assert_eq!(f.get(0, "epoch_iteration"), Some(&Value::Null));
    }

    #[test]
    fn epoch_gap_detected() {
        let db = Database::in_memory(flor_schema());
        let sub = db.subscribe();
        let mut view = PivotState::new(&["x"], 0);
        db.insert("logs", log_row(1, 0, "x", "1", 2)).unwrap();
        db.commit().unwrap();
        db.insert("logs", log_row(2, 0, "x", "2", 2)).unwrap();
        db.commit().unwrap();
        let batches = sub.poll();
        assert_eq!(batches.len(), 2);
        // Skip the first batch: the view must refuse the second.
        assert!(matches!(
            view.apply(&batches[1]),
            Err(DeltaError::EpochGap { have: 0, got: 2 })
        ));
        // And stale batches are ignored once the view catches up.
        view.apply(&batches[0]).unwrap();
        view.apply(&batches[1]).unwrap();
        assert!(view.apply(&batches[0]).unwrap().is_empty());
    }

    #[test]
    fn malformed_rows_rejected() {
        let mut view = PivotState::new(&["x"], 0);
        assert!(view.apply_log_row(&["p".into()]).is_err());
        assert!(view.apply_loop_row(&["p".into()]).is_err());
    }

    #[test]
    fn latest_state_keyed_by_custom_column() {
        let mut frame = DataFrame::new();
        frame.push_row(&[("seq", 1.into()), ("job_id", 7.into())]);
        frame.push_row(&[("seq", 3.into()), ("job_id", 7.into())]);
        frame.push_row(&[("seq", 2.into()), ("job_id", 8.into())]);
        let mut latest = LatestState::keyed(&["job_id"], "seq");
        latest.observe(&frame, &[0, 1, 2]);
        assert_eq!(latest.surviving_rows(), vec![1, 2]);
    }

    #[test]
    fn latest_state_per_key_upsert() {
        let mut frame = DataFrame::new();
        frame.push_row(&[("tstamp", 1.into()), ("doc_value", "a".into())]);
        frame.push_row(&[("tstamp", 2.into()), ("doc_value", "a".into())]);
        frame.push_row(&[("tstamp", 1.into()), ("doc_value", "b".into())]);
        let mut latest = LatestState::new(&["doc_value"]);
        latest.observe(&frame, &[0, 1, 2]);
        assert_eq!(latest.surviving_rows(), vec![1, 2]);
        // A newer row for "b" evicts the old one; ties keep both.
        frame.push_row(&[("tstamp", 5.into()), ("doc_value", "b".into())]);
        frame.push_row(&[("tstamp", 5.into()), ("doc_value", "b".into())]);
        latest.observe(&frame, &[3, 4]);
        assert_eq!(latest.surviving_rows(), vec![1, 3, 4]);
    }
}
