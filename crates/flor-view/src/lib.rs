//! # flor-view — incremental materialized views for `flor.dataframe`
//!
//! The FlorDB paper's central promise is *incremental context
//! maintenance*: the pivoted context dataframe stays current as runs,
//! log statements and hindsight backfills land — it is not recomputed
//! from the base tables on every query. This crate delivers that promise
//! for the Rust reproduction:
//!
//! * [`PivotState`] — a delta operator that applies change-feed batches
//!   ([`flor_store::CommitBatch`]) to a maintained wide
//!   [`flor_df::DataFrame`]: incremental join against `loops` (a
//!   cumulative ctx map), new-column discovery on first sight of a
//!   `value_name` or loop dimension, and per-index-tuple cell upsert.
//!   The maintained frame is **cell-for-cell identical** to the kernel's
//!   from-scratch recompute (property-tested in `tests/prop_view.rs`).
//! * [`LatestState`] — incremental `flor.utils.latest` via per-group-key
//!   max-timestamp upsert.
//! * [`ViewCatalog`] — named views keyed by a [`ViewKey`] plan
//!   fingerprint (projection, pushdown predicates, optional `latest`
//!   group), staleness tracked by commit epoch / WAL offset, an LRU
//!   capacity bound, and transparent fallback to a full snapshot rebuild
//!   whenever a delta cannot be applied.
//! * [`QueryPlan`] — the canonical lazy-query plan behind `Flor::query`:
//!   filters (reusing [`flor_store::Predicate`]), `latest` dedup,
//!   ordering and limits, lowered onto maintained views with pushdown
//!   predicates enforced incrementally and the rest as a cheap
//!   post-pass ([`ViewCatalog::plan`]).
//!
//! `flor-core` wires `Flor::dataframe` / `Flor::dataframe_latest`
//! through a catalog, so repeated queries after new commits apply deltas
//! instead of re-pivoting history, and `backfill` publishes recovered
//! values through the same feed into live views.
//!
//! ```
//! use flor_store::{flor_schema, Database};
//! use flor_view::ViewCatalog;
//!
//! let db = Database::in_memory(flor_schema());
//! let catalog = ViewCatalog::new(db.clone(), 8);
//!
//! let log = |ts: i64, name: &str, value: &str| {
//!     db.insert("logs", vec![
//!         "demo".into(), ts.into(), "train.fl".into(), 0.into(),
//!         name.into(), value.into(), 3.into(),
//!     ]).unwrap();
//! };
//! log(1, "loss", "0.5");
//! db.commit().unwrap();
//!
//! let v1 = catalog.pivot(&["loss"]).unwrap();
//! assert_eq!(v1.n_rows(), 1);
//!
//! // A new commit refreshes the view incrementally: one delta applied,
//! // no re-pivot of history.
//! log(2, "loss", "0.25");
//! db.commit().unwrap();
//! let v2 = catalog.pivot(&["loss"]).unwrap();
//! assert_eq!(v2.n_rows(), 2);
//! assert_eq!(catalog.stats().misses, 1); // built once, refreshed in place
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod delta;
pub mod plan;

pub use catalog::{CatalogStats, ViewCatalog, ViewInfo, ViewKey};
pub use delta::{DeltaError, LatestState, PivotState};
pub use plan::{QueryPlan, FIXED_COLS};
