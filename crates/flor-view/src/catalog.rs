//! The view catalog: named materialized views, refreshed from the change
//! feed, bounded by an LRU, with transparent full-rebuild fallback.
//!
//! One catalog owns one change-feed [`Subscription`] on its database.
//! Every access first drains pending commit batches and applies them to
//! *all* cached views (each view skips batches at or below its own
//! epoch), then serves the requested view — building it from an
//! epoch-stamped consistent snapshot on a miss. If a delta cannot be
//! applied (epoch gap, malformed row, schema surprise), the view is
//! rebuilt from scratch instead of serving wrong data; the event is
//! counted in [`CatalogStats::fallback_rebuilds`].

use crate::delta::{DeltaError, LatestState, PivotState};
use crate::plan::QueryPlan;
use flor_df::{DataFrame, DfError};
use flor_obs::{Counter, Histogram, MetricsRegistry, Span};
use flor_store::{Database, Predicate, Query, StoreError, StoreResult, Subscription};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Pre-bound handles into the database's metrics registry (shared with
/// the store and the jobs runner, so the kernel snapshots all three at
/// once). `view.build_nanos` vs `view.refresh_nanos` is the paper's
/// incremental-maintenance claim in histogram form: refreshes should
/// stay orders of magnitude cheaper than builds.
struct ViewMetrics {
    registry: MetricsRegistry,
    /// `view.build_nanos` — full builds from a snapshot (miss or
    /// fallback rebuild).
    build_nanos: Arc<Histogram>,
    /// `view.refresh_nanos` — one incremental drain-and-apply pass over
    /// the cached views (only recorded when batches were pending).
    refresh_nanos: Arc<Histogram>,
    /// `view.hits` — requests served from a cached view.
    hits: Arc<Counter>,
    /// `view.misses` — requests that built a new view.
    misses: Arc<Counter>,
    /// `view.rebuilds` — fallback full rebuilds after a rejected delta.
    rebuilds: Arc<Counter>,
}

impl ViewMetrics {
    fn new(registry: MetricsRegistry) -> ViewMetrics {
        ViewMetrics {
            build_nanos: registry.histogram("view.build_nanos"),
            refresh_nanos: registry.histogram("view.refresh_nanos"),
            hits: registry.counter("view.hits"),
            misses: registry.counter("view.misses"),
            rebuilds: registry.counter("view.rebuilds"),
            registry,
        }
    }
}

/// Identity of a materialized view: the fingerprint of the *maintained*
/// part of a [`QueryPlan`] — the projected `value_name`s, the pushdown
/// predicates enforced inside the view, and the `latest` group columns
/// for deduplicated views. Two plans that differ only in their post-pass
/// (residual predicates, ordering, limits) share one maintained view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewKey {
    /// Projected log names, in request order.
    names: Vec<String>,
    /// `Some(group)` for a `latest`-deduplicated view.
    group: Option<Vec<String>>,
    /// Pushdown predicates maintained inside the view, canonically
    /// ordered so predicate call order does not split the cache.
    pushdown: Vec<Predicate>,
}

impl ViewKey {
    /// Key for a plain pivoted view.
    pub fn pivot(names: &[&str]) -> ViewKey {
        ViewKey {
            names: names.iter().map(|s| s.to_string()).collect(),
            group: None,
            pushdown: Vec::new(),
        }
    }

    /// Key for a `latest`-deduplicated view.
    pub fn latest(names: &[&str], group: &[&str]) -> ViewKey {
        ViewKey {
            group: Some(group.iter().map(|s| s.to_string()).collect()),
            ..ViewKey::pivot(names)
        }
    }

    /// The maintained-part fingerprint of `plan`: its names, its pushdown
    /// predicates (canonically sorted and deduplicated), and — only when
    /// no residual predicate intervenes before the dedup — its `latest`
    /// group. A residual filter must run *before* `latest`, so such plans
    /// lower onto the underlying pivot view and dedup in the post-pass.
    pub fn for_plan(plan: &QueryPlan) -> ViewKey {
        let (pushdown, residual) = plan.split_predicates();
        ViewKey::from_split(plan, pushdown, residual.is_empty())
    }

    /// [`ViewKey::for_plan`] for a caller that already split the
    /// predicates (the catalog's hot read path splits exactly once).
    fn from_split(plan: &QueryPlan, mut pushdown: Vec<Predicate>, no_residual: bool) -> ViewKey {
        pushdown.sort_by_key(|p| p.to_string());
        pushdown.dedup();
        ViewKey {
            names: plan.names.clone(),
            group: if no_residual {
                plan.latest_group.clone()
            } else {
                None
            },
            pushdown,
        }
    }

    /// Projected log names, in request order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The `latest` group columns, if this is a deduplicated view.
    pub fn group(&self) -> Option<&[String]> {
        self.group.as_deref()
    }

    /// The pushdown predicates maintained inside the view.
    pub fn pushdown(&self) -> &[Predicate] {
        &self.pushdown
    }

    /// Canonical one-line rendering, for logs and `ViewInfo` displays.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut s = format!("pivot[{}]", self.names.join(","));
        for p in &self.pushdown {
            let _ = write!(s, " where {p}");
        }
        if let Some(group) = &self.group {
            let _ = write!(s, " latest by [{}]", group.join(","));
        }
        s
    }
}

/// Counters describing catalog behaviour; cheap to snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Requests served from a cached view (possibly after applying deltas).
    pub hits: u64,
    /// Requests that built a new view from a snapshot.
    pub misses: u64,
    /// Views rebuilt because a delta could not be applied.
    pub fallback_rebuilds: u64,
    /// Views evicted by the LRU bound.
    pub evictions: u64,
    /// Commit batches drained from the feed.
    pub batches_applied: u64,
    /// Individual row deltas applied across all views.
    pub deltas_applied: u64,
}

struct CachedView {
    pivot: PivotState,
    /// Present for `latest` views; `None` means served straight from pivot.
    latest: Option<LatestState>,
    /// Materialized `latest` output, invalidated whenever the pivot moves.
    latest_frame: Option<Arc<DataFrame>>,
    last_used: u64,
    /// WAL byte offset at the last refresh (observability; staleness is
    /// decided by epoch).
    wal_offset_bytes: u64,
}

/// One live view's description, as reported by [`ViewCatalog::view_infos`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewInfo {
    /// The view's identity.
    pub key: ViewKey,
    /// Epoch the view reflects.
    pub epoch: u64,
    /// Rows currently materialized (pivot rows).
    pub rows: usize,
    /// WAL byte offset at the last refresh.
    pub wal_offset_bytes: u64,
}

struct CatalogInner {
    /// Created on first access, not at catalog construction: a kernel
    /// that never queries views shouldn't make commits queue deltas.
    sub: Option<Subscription>,
    views: HashMap<ViewKey, CachedView>,
    clock: u64,
    stats: CatalogStats,
}

/// A bounded cache of incrementally maintained views over one database.
///
/// Cloning shares the same catalog (and its single feed subscription).
#[derive(Clone)]
pub struct ViewCatalog {
    db: Database,
    capacity: usize,
    metrics: Arc<ViewMetrics>,
    inner: Arc<Mutex<CatalogInner>>,
}

impl ViewCatalog {
    /// Catalog over `db` holding at most `capacity` views.
    pub fn new(db: Database, capacity: usize) -> ViewCatalog {
        let metrics = Arc::new(ViewMetrics::new(db.metrics_registry()));
        ViewCatalog {
            db,
            capacity: capacity.max(1),
            metrics,
            inner: Arc::new(Mutex::new(CatalogInner {
                sub: None,
                views: HashMap::new(),
                clock: 0,
                stats: CatalogStats::default(),
            })),
        }
    }

    /// The pivoted view for `names`, up to date with every commit. Cheap
    /// (`Arc` clone) when nothing changed since the last call.
    pub fn pivot(&self, names: &[&str]) -> StoreResult<Arc<DataFrame>> {
        self.plan(&QueryPlan::new(names))
    }

    /// The `latest`-deduplicated view for `names` grouped by `group`.
    ///
    /// Errors like the from-scratch path does when a group column does not
    /// exist in the pivoted frame.
    pub fn latest(&self, names: &[&str], group: &[&str]) -> StoreResult<Arc<DataFrame>> {
        self.plan(&QueryPlan::with_latest(names, group))
    }

    /// Serve a [`QueryPlan`] — the single execution path behind every
    /// dataframe read. The plan's maintained part (projection, pushdown
    /// predicates, and `latest` group when no residual filter precedes
    /// it) is served from the catalog as an incrementally maintained
    /// view; the rest runs as a post-pass over that frame. Plans with no
    /// post-pass share the maintained snapshot allocation (`Arc` clone).
    pub fn plan(&self, plan: &QueryPlan) -> StoreResult<Arc<DataFrame>> {
        let (pushdown, residual) = plan.split_predicates();
        let key = ViewKey::from_split(plan, pushdown, residual.is_empty());
        let base = {
            let mut g = self.inner.lock();
            self.drain_and_apply(&mut g)?;
            self.ensure_view(&mut g, &key)?;
            if key.group.is_some() {
                self.materialize_latest(&mut g, &key)?
            } else {
                // audit: allow(panic) — ensure_view inserted this key two
                // lines up and the lock is still held.
                g.views.get(&key).expect("just ensured").pivot.frame()
            }
        };
        // `latest` runs in the post-pass only when a residual predicate
        // must filter rows first (the maintained key then has no group).
        let apply_latest = key.group.is_none() && plan.latest_group.is_some();
        if plan.post_pass_is_identity(&residual, apply_latest) {
            return Ok(base);
        }
        plan.post_pass(&base, &residual, apply_latest).map(Arc::new)
    }

    /// Materialize the `latest` output of an already-ensured view, with
    /// per-view caching (invalidated whenever the pivot moves).
    fn materialize_latest(
        &self,
        g: &mut CatalogInner,
        key: &ViewKey,
    ) -> StoreResult<Arc<DataFrame>> {
        // audit: allow(panic) — both callers run ensure_view first and
        // only take this path when key.group is Some, under one lock hold.
        let view = g.views.get_mut(key).expect("caller ensured the view");
        // audit: allow(panic) — same caller contract as above
        let group = key.group().expect("caller checked the key is grouped");
        if let Some(cached) = &view.latest_frame {
            return Ok(Arc::clone(cached));
        }
        let frame = view.pivot.frame();
        // Match the oracle's semantics exactly: empty views short-circuit,
        // unknown group columns error.
        let out: Arc<DataFrame> = if frame.n_rows() == 0 {
            Arc::new(DataFrame::new())
        } else {
            for gcol in group {
                if frame.column(gcol).is_none() {
                    return Err(StoreError::Df(DfError::UnknownColumn(gcol.clone())));
                }
            }
            // The per-key upsert state is only sound when every group
            // column is an index column (fixed or loop dimension): those
            // cells are written once per row. Grouping by a *value* column
            // is legal but unstable — an upsert can rewrite the cell and
            // silently move the row between groups — so recompute the
            // filter from the maintained frame instead. Decided per
            // materialization because dimensions are discovered lazily; a
            // column's class is fixed from the moment it exists.
            let stable = group.iter().all(|gcol| view.pivot.is_index_col(gcol));
            match (&view.latest, stable) {
                (Some(latest), true) => {
                    let keep = latest.surviving_rows();
                    Arc::new(frame.take(&keep))
                }
                _ => {
                    let gs: Vec<&str> = group.iter().map(String::as_str).collect();
                    Arc::new(frame.latest(&gs, "tstamp").map_err(StoreError::Df)?)
                }
            }
        };
        view.latest_frame = Some(Arc::clone(&out));
        Ok(out)
    }

    /// Per-view descriptions, unordered.
    pub fn view_infos(&self) -> Vec<ViewInfo> {
        let g = self.inner.lock();
        g.views
            .iter()
            .map(|(key, v)| ViewInfo {
                key: key.clone(),
                epoch: v.pivot.epoch(),
                rows: v.pivot.frame().n_rows(),
                wal_offset_bytes: v.wal_offset_bytes,
            })
            .collect()
    }

    /// Whether the named view exists and already reflects the database's
    /// current epoch (no pending feed batches for it).
    pub fn is_fresh(&self, key: &ViewKey) -> bool {
        let g = self.inner.lock();
        g.sub.as_ref().is_none_or(|s| s.pending() == 0)
            && g.views
                .get(key)
                .is_some_and(|v| v.pivot.epoch() == self.db.epoch())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CatalogStats {
        self.inner.lock().stats.clone()
    }

    /// Number of cached views.
    pub fn len(&self) -> usize {
        self.inner.lock().views.len()
    }

    /// True iff no views are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached view (they rebuild lazily on next access).
    pub fn clear(&self) {
        self.inner.lock().views.clear();
    }

    /// Drain the feed and bring every cached view up to date, falling back
    /// to a rebuild for any view that rejects a delta.
    fn drain_and_apply(&self, g: &mut CatalogInner) -> StoreResult<()> {
        let Some(sub) = &g.sub else {
            // First access ever: start listening. Views built later this
            // access snapshot at an epoch >= the subscription's, so
            // nothing is missed.
            g.sub = Some(self.db.subscribe());
            return Ok(());
        };
        let batches = sub.poll();
        if batches.is_empty() {
            return Ok(());
        }
        // Time the whole incremental pass (every cached view, all pending
        // batches) — the counterpart of `view.build_nanos` for full
        // builds.
        let _refresh = Span::enter(&self.metrics.registry, &self.metrics.refresh_nanos);
        g.stats.batches_applied += batches.len() as u64;
        for batch in &batches {
            g.stats.deltas_applied += PivotState::relevant_deltas(batch) as u64;
        }
        let keys: Vec<ViewKey> = g.views.keys().cloned().collect();
        for key in keys {
            let mut failed: Option<DeltaError> = None;
            {
                // audit: allow(panic) — keys were cloned from this map under
                // the same lock hold; nothing removes entries in between.
                let view = g.views.get_mut(&key).expect("key from live map");
                for batch in &batches {
                    // A batch can widen the pivot's schema without
                    // materializing any row (a pushdown-excluded row
                    // discovering a new loop dimension), so the cached
                    // latest output is stale whenever rows changed *or*
                    // columns appeared.
                    let cols_before = view.pivot.frame().n_cols();
                    match view.pivot.apply(batch) {
                        Ok(changed) => {
                            if !changed.is_empty() || view.pivot.frame().n_cols() != cols_before {
                                view.latest_frame = None;
                                if let Some(latest) = &mut view.latest {
                                    let frame = view.pivot.frame();
                                    latest.observe(&frame, &changed);
                                }
                            }
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
            }
            if failed.is_some() {
                // Transparent fallback: rebuild from a fresh snapshot.
                g.stats.fallback_rebuilds += 1;
                if self.metrics.registry.enabled() {
                    self.metrics.rebuilds.inc();
                    self.metrics.registry.event_at(
                        flor_obs::Level::Warn,
                        "view.rebuild",
                        key.fingerprint(),
                    );
                }
                let last_used = g.views[&key].last_used;
                let rebuilt = self.build(&key)?;
                g.views.insert(
                    key,
                    CachedView {
                        last_used,
                        ..rebuilt
                    },
                );
            }
        }
        Ok(())
    }

    /// Serve `key` from cache or build it; touches the LRU clock and
    /// enforces the capacity bound.
    fn ensure_view(&self, g: &mut CatalogInner, key: &ViewKey) -> StoreResult<()> {
        g.clock += 1;
        let clock = g.clock;
        if let Some(view) = g.views.get_mut(key) {
            view.last_used = clock;
            g.stats.hits += 1;
            if self.metrics.registry.enabled() {
                self.metrics.hits.inc();
            }
            return Ok(());
        }
        g.stats.misses += 1;
        if self.metrics.registry.enabled() {
            self.metrics.misses.inc();
        }
        let mut built = self.build(key)?;
        built.last_used = clock;
        g.views.insert(key.clone(), built);
        while g.views.len() > self.capacity {
            let coldest = g
                .views
                .iter()
                .filter(|(k, _)| *k != key)
                .min_by_key(|(_, v)| v.last_used)
                .map(|(k, _)| k.clone())
                // audit: allow(panic) — len > capacity >= 1 and the filter
                // drops exactly one key, so an eviction candidate remains.
                .expect("capacity >= 1 so another view exists");
            g.views.remove(&coldest);
            g.stats.evictions += 1;
        }
        Ok(())
    }

    /// Build a view from an epoch-stamped consistent snapshot. The feed
    /// subscription predates every snapshot, so any commit not covered by
    /// the snapshot is still queued and will be applied as a delta (and
    /// batches the snapshot already covers are skipped by epoch).
    ///
    /// The `logs` fetch pushes the name projection down into the store
    /// scan (`value_name IN names`, served from the secondary index), so
    /// a build touches only the log rows the view projects — not the
    /// whole history. The key's pushdown predicates are *not* pushed into
    /// the fetch: excluded rows still drive schema discovery (see
    /// [`PivotState::filtered`]), so the pivot state must see them.
    fn build(&self, key: &ViewKey) -> StoreResult<CachedView> {
        let _build = Span::enter(&self.metrics.registry, &self.metrics.build_nanos);
        let names: Vec<&str> = key.names.iter().map(String::as_str).collect();
        let name_values = key.names.iter().map(|n| n.as_str().into()).collect();
        // One lock acquisition pins the snapshot AND samples the stats:
        // `wal_offset_bytes` below is guaranteed to describe the same
        // committed state the queries read (two separate calls could
        // interleave with a commit and disagree).
        let (snap, stats) = self.db.pin_with_stats();
        let epoch = snap.epoch();
        let logs = snap.query(&Query::table("logs").filter_in("value_name", name_values))?;
        let loops = snap.query(&Query::table("loops"))?;
        let pivot = PivotState::from_snapshot_filtered(&names, &key.pushdown, epoch, &logs, &loops)
            .map_err(|e| StoreError::Invalid(format!("view build: {e}")))?;
        // Latest views always carry upsert state; whether it is *used*
        // (vs. recomputing from the frame) is decided per materialization,
        // based on the pivot's actual index columns.
        let latest = key.group.as_ref().map(|group| {
            let gs: Vec<&str> = group.iter().map(String::as_str).collect();
            let mut state = LatestState::new(&gs);
            let frame = pivot.frame();
            let all_rows: Vec<usize> = (0..frame.n_rows()).collect();
            state.observe(&frame, &all_rows);
            state
        });
        Ok(CachedView {
            pivot,
            latest,
            latest_frame: None,
            last_used: 0,
            wal_offset_bytes: stats.wal_offset_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_df::Value;
    use flor_store::flor_schema;

    fn log_row(ts: i64, name: &str, value: &str) -> Vec<Value> {
        vec![
            "p".into(),
            ts.into(),
            "f.fl".into(),
            0.into(),
            name.into(),
            value.into(),
            2.into(),
        ]
    }

    #[test]
    fn view_refreshes_incrementally() {
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        db.insert("logs", log_row(1, "loss", "10")).unwrap();
        db.commit().unwrap();
        let v1 = catalog.pivot(&["loss"]).unwrap();
        assert_eq!(v1.n_rows(), 1);
        assert_eq!(catalog.stats().misses, 1);

        db.insert("logs", log_row(2, "loss", "20")).unwrap();
        db.commit().unwrap();
        let v2 = catalog.pivot(&["loss"]).unwrap();
        assert_eq!(v2.n_rows(), 2);
        let s = catalog.stats();
        assert_eq!(s.misses, 1, "second call must reuse the cached view");
        assert_eq!(s.hits, 1);
        assert!(s.deltas_applied >= 1);
        // The earlier snapshot is unaffected (copy-on-write).
        assert_eq!(v1.n_rows(), 1);
    }

    #[test]
    fn repeated_queries_share_one_snapshot() {
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        db.insert("logs", log_row(1, "x", "1")).unwrap();
        db.commit().unwrap();
        let a = catalog.pivot(&["x"]).unwrap();
        let b = catalog.pivot(&["x"]).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn lru_bound_evicts_coldest() {
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 2);
        db.insert("logs", log_row(1, "a", "1")).unwrap();
        db.insert("logs", log_row(1, "b", "2")).unwrap();
        db.insert("logs", log_row(1, "c", "3")).unwrap();
        db.commit().unwrap();
        catalog.pivot(&["a"]).unwrap();
        catalog.pivot(&["b"]).unwrap();
        catalog.pivot(&["a"]).unwrap(); // touch: "b" is now coldest
        catalog.pivot(&["c"]).unwrap();
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.stats().evictions, 1);
        let keys: Vec<ViewKey> = catalog.view_infos().into_iter().map(|i| i.key).collect();
        assert!(keys.contains(&ViewKey::pivot(&["a"])));
        assert!(keys.contains(&ViewKey::pivot(&["c"])));
    }

    #[test]
    fn plan_with_pushdown_maintains_filtered_view() {
        use flor_store::CmpOp;
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        for ts in 1..=4 {
            db.insert("logs", log_row(ts, "loss", &ts.to_string()))
                .unwrap();
        }
        db.commit().unwrap();
        let plan = QueryPlan::new(&["loss"]).filter("tstamp", CmpOp::Ge, 3);
        let v = catalog.plan(&plan).unwrap();
        assert_eq!(v.n_rows(), 2);
        // New commits land as deltas on the filtered view: no new build.
        db.insert("logs", log_row(5, "loss", "5")).unwrap();
        db.insert("logs", log_row(0, "loss", "0")).unwrap();
        db.commit().unwrap();
        let v = catalog.plan(&plan).unwrap();
        assert_eq!(v.n_rows(), 3, "ts=5 admitted, ts=0 filtered out");
        assert_eq!(catalog.stats().misses, 1);
        // A plan with no post-pass shares the maintained allocation.
        let again = catalog.plan(&plan).unwrap();
        assert!(Arc::ptr_eq(&v, &again));
    }

    #[test]
    fn plans_share_a_maintained_view_across_post_passes() {
        use flor_store::CmpOp;
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        for ts in 1..=5 {
            db.insert("logs", log_row(ts, "x", &ts.to_string()))
                .unwrap();
        }
        db.commit().unwrap();
        let base = QueryPlan::new(&["x"]).filter("tstamp", CmpOp::Gt, 1);
        let limited = QueryPlan {
            order_by: vec![("tstamp".into(), false)],
            limit: Some(2),
            ..base.clone()
        };
        assert_eq!(catalog.plan(&base).unwrap().n_rows(), 4);
        let top = catalog.plan(&limited).unwrap();
        assert_eq!(top.n_rows(), 2);
        assert_eq!(top.get(0, "tstamp"), Some(&Value::Int(5)));
        // Same maintained part → one build, differing post-passes only.
        assert_eq!(catalog.stats().misses, 1);
        assert_eq!(catalog.len(), 1);
        // Predicate call order does not split the cache either.
        let swapped = QueryPlan::new(&["x"])
            .filter("tstamp", CmpOp::Lt, 9)
            .filter("tstamp", CmpOp::Gt, 1);
        let canon = QueryPlan::new(&["x"])
            .filter("tstamp", CmpOp::Gt, 1)
            .filter("tstamp", CmpOp::Lt, 9);
        assert_eq!(ViewKey::for_plan(&swapped), ViewKey::for_plan(&canon));
    }

    #[test]
    fn residual_latest_runs_in_post_pass() {
        use flor_store::CmpOp;
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        for ts in 1..=3 {
            db.insert("logs", log_row(ts, "acc", &ts.to_string()))
                .unwrap();
        }
        db.commit().unwrap();
        // A residual (value-column) predicate must filter *before* the
        // dedup, so latest runs over the filtered rows in the post-pass.
        let plan = QueryPlan {
            latest_group: Some(vec!["projid".into()]),
            ..QueryPlan::new(&["acc"])
        }
        .filter("acc", CmpOp::Le, 2);
        let v = catalog.plan(&plan).unwrap();
        assert_eq!(v.n_rows(), 1);
        assert_eq!(v.get(0, "acc"), Some(&Value::Int(2)));
        // The maintained view is the plain pivot (group lowered away).
        let keys: Vec<ViewKey> = catalog.view_infos().into_iter().map(|i| i.key).collect();
        assert_eq!(keys, vec![ViewKey::pivot(&["acc"])]);
    }

    #[test]
    fn excluded_delta_widening_schema_invalidates_latest_cache() {
        // Regression: a pushdown-excluded log row can widen the pivot's
        // schema (new loop dimension) while materializing no row; the
        // cached `latest` output must still be invalidated, or it serves
        // a stale column set.
        use flor_store::CmpOp;
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        db.insert("logs", log_row(1, "loss", "10")).unwrap();
        db.commit().unwrap();
        let plan = QueryPlan {
            latest_group: Some(vec!["projid".into()]),
            ..QueryPlan::new(&["loss"])
        }
        .filter("tstamp", CmpOp::Le, 1);
        let v = catalog.plan(&plan).unwrap();
        assert_eq!(
            v.column_names(),
            vec!["projid", "tstamp", "filename", "loss"]
        );
        // Excluded by the pushdown gate, but discovers the "batch" dims.
        db.insert(
            "loops",
            vec![
                "p".into(),
                2.into(),
                "f.fl".into(),
                9.into(),
                0.into(),
                "batch".into(),
                0.into(),
                "0".into(),
            ],
        )
        .unwrap();
        db.insert(
            "logs",
            vec![
                "p".into(),
                2.into(),
                "f.fl".into(),
                9.into(),
                "loss".into(),
                "20".into(),
                2.into(),
            ],
        )
        .unwrap();
        db.commit().unwrap();
        let v = catalog.plan(&plan).unwrap();
        assert_eq!(
            v.column_names(),
            vec![
                "projid",
                "tstamp",
                "filename",
                "batch_iteration",
                "batch_value",
                "loss"
            ],
            "stale latest cache served after schema widening"
        );
        assert_eq!(v.n_rows(), 1, "the ts=2 row itself stays excluded");
        assert_eq!(catalog.stats().fallback_rebuilds, 0);
    }

    #[test]
    fn view_key_fingerprint_renders_plan() {
        use flor_store::CmpOp;
        let plan =
            QueryPlan::with_latest(&["loss", "acc"], &["projid"]).filter("tstamp", CmpOp::Ge, 2);
        let key = ViewKey::for_plan(&plan);
        assert_eq!(
            key.fingerprint(),
            "pivot[loss,acc] where tstamp >= Int(2) latest by [projid]"
        );
    }

    #[test]
    fn freshness_tracks_epoch() {
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        db.insert("logs", log_row(1, "x", "1")).unwrap();
        db.commit().unwrap();
        catalog.pivot(&["x"]).unwrap();
        let key = ViewKey::pivot(&["x"]);
        assert!(catalog.is_fresh(&key));
        db.insert("logs", log_row(2, "x", "2")).unwrap();
        db.commit().unwrap();
        assert!(!catalog.is_fresh(&key));
        catalog.pivot(&["x"]).unwrap();
        assert!(catalog.is_fresh(&key));
    }

    #[test]
    fn latest_view_dedupes_and_caches() {
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        for ts in 1..=3 {
            db.insert("logs", log_row(ts, "acc", &ts.to_string()))
                .unwrap();
            db.commit().unwrap();
        }
        let latest = catalog.latest(&["acc"], &["projid"]).unwrap();
        assert_eq!(latest.n_rows(), 1);
        assert_eq!(latest.get(0, "acc"), Some(&Value::Int(3)));
        let again = catalog.latest(&["acc"], &["projid"]).unwrap();
        assert!(Arc::ptr_eq(&latest, &again));
        // Unknown group column errors like the from-scratch path.
        assert!(catalog.latest(&["acc"], &["nope"]).is_err());
    }

    #[test]
    fn latest_upsert_at_max_tstamp_does_not_duplicate() {
        // Regression: filling a hole in the newest row (same tstamp, same
        // context — the backfill shape) upserts a cell of a row already
        // tracked at the max timestamp; the latest view must not emit the
        // row twice.
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        db.insert("logs", log_row(1, "loss", "10")).unwrap();
        db.commit().unwrap();
        let first = catalog.latest(&["loss", "acc"], &["projid"]).unwrap();
        assert_eq!(first.n_rows(), 1);
        // Same (projid, tstamp, filename, ctx): lands in the existing row.
        db.insert("logs", log_row(1, "acc", "7")).unwrap();
        db.commit().unwrap();
        let after = catalog.latest(&["loss", "acc"], &["projid"]).unwrap();
        assert_eq!(after.n_rows(), 1, "upsert must not duplicate the row");
        assert_eq!(after.get(0, "acc"), Some(&Value::Int(7)));
        let oracle = catalog
            .pivot(&["loss", "acc"])
            .unwrap()
            .latest(&["projid"], "tstamp")
            .unwrap();
        assert_eq!(*after, oracle);
    }

    #[test]
    fn latest_by_value_column_recomputes_and_stays_correct() {
        // Grouping by a *value* column is unstable under upserts: the
        // catalog must serve it by recomputation, not the upsert map —
        // even when the column name looks like a loop dimension.
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        let str_row = |ts: i64, name: &str, value: &str| -> Vec<Value> {
            vec![
                "p".into(),
                ts.into(),
                "f.fl".into(),
                0.into(),
                name.into(),
                value.into(),
                4.into(), // value_type: Str
            ]
        };
        db.insert("logs", str_row(1, "f1_value", "a")).unwrap();
        db.insert("logs", log_row(1, "score", "1")).unwrap();
        db.commit().unwrap();
        catalog
            .latest(&["f1_value", "score"], &["f1_value"])
            .unwrap();
        // Re-log moves the row to group "b"; tstamp unchanged.
        db.insert("logs", str_row(1, "f1_value", "b")).unwrap();
        db.commit().unwrap();
        let latest = catalog
            .latest(&["f1_value", "score"], &["f1_value"])
            .unwrap();
        let oracle = catalog
            .pivot(&["f1_value", "score"])
            .unwrap()
            .latest(&["f1_value"], "tstamp")
            .unwrap();
        assert_eq!(*latest, oracle);
        assert_eq!(latest.n_rows(), 1);
        assert_eq!(latest.get(0, "f1_value"), Some(&Value::Str("b".into())));
    }

    #[test]
    fn overflowed_subscriber_applies_coalesced_batches_without_rebuild() {
        // A view left unqueried past the feed's batch-count bound now
        // receives *coalesced* batches (wider span, same deltas, no
        // gap) — it catches up by delta application, not by rebuilding.
        use flor_store::feed::MAX_PENDING_BATCHES;
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        db.insert("logs", log_row(0, "x", "0")).unwrap();
        db.commit().unwrap();
        catalog.pivot(&["x"]).unwrap();
        let n = MAX_PENDING_BATCHES + 10;
        for ts in 1..=(n as i64) {
            db.insert("logs", log_row(ts, "x", &ts.to_string()))
                .unwrap();
            db.commit().unwrap();
        }
        let view = catalog.pivot(&["x"]).unwrap();
        assert_eq!(view.n_rows(), n + 1);
        let stats = catalog.stats();
        assert_eq!(stats.fallback_rebuilds, 0, "coalescing leaves no gap");
    }

    #[test]
    fn subscriber_past_delta_bound_falls_back_to_one_rebuild() {
        // Past the feed's hard memory bound the oldest batches are shed;
        // on the next query the view must detect the gap, rebuild once,
        // and still serve the right answer.
        use flor_store::feed::MAX_PENDING_DELTAS;
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        db.insert("logs", log_row(0, "x", "0")).unwrap();
        db.commit().unwrap();
        catalog.pivot(&["x"]).unwrap();
        let per_commit = 64usize;
        let commits = MAX_PENDING_DELTAS / per_commit + 20;
        let mut ts = 0i64;
        for _ in 0..commits {
            for _ in 0..per_commit {
                ts += 1;
                db.insert("logs", log_row(ts, "x", &ts.to_string()))
                    .unwrap();
            }
            db.commit().unwrap();
        }
        let view = catalog.pivot(&["x"]).unwrap();
        assert_eq!(view.n_rows(), ts as usize + 1);
        let stats = catalog.stats();
        assert_eq!(stats.fallback_rebuilds, 1, "gap must trigger one rebuild");
        // And the rebuilt view keeps applying deltas afterwards.
        db.insert("logs", log_row(-1, "x", "tail")).unwrap();
        db.commit().unwrap();
        assert_eq!(catalog.pivot(&["x"]).unwrap().n_rows(), ts as usize + 2);
        assert_eq!(catalog.stats().fallback_rebuilds, 1);
    }

    #[test]
    fn clear_forces_rebuild() {
        let db = Database::in_memory(flor_schema());
        let catalog = ViewCatalog::new(db.clone(), 4);
        db.insert("logs", log_row(1, "x", "1")).unwrap();
        db.commit().unwrap();
        catalog.pivot(&["x"]).unwrap();
        catalog.clear();
        assert!(catalog.is_empty());
        assert_eq!(catalog.pivot(&["x"]).unwrap().n_rows(), 1);
        assert_eq!(catalog.stats().misses, 2);
    }
}
