//! The canonical query plan behind `Flor::query`.
//!
//! A [`QueryPlan`] is the declarative form every dataframe read lowers to:
//! a projection of log `value_name`s, a conjunction of predicates over the
//! pivoted view's columns (reusing [`flor_store::Predicate`] so one
//! predicate vocabulary spans the store, view and kernel layers), an
//! optional `latest`-per-group dedup, an ordering, and a limit.
//!
//! Lowering happens in three layers:
//!
//! 1. **store** — the name projection is pushed into the `logs` scan via
//!    the `value_name` index ([`flor_store::Query::filter_in`], executed
//!    lock-free against one pinned, epoch-consistent snapshot through
//!    [`flor_store::Database::snapshot_with`]);
//! 2. **view** — predicates over the *fixed context columns* (`projid`,
//!    `tstamp`, `filename`) are maintained inside the materialized view
//!    itself: [`crate::PivotState`] skips non-matching rows at upsert
//!    time, so the cached frame holds only qualifying rows and stays
//!    current by delta application;
//! 3. **dataframe** — whatever cannot be maintained (predicates over loop
//!    dimensions or value columns, `latest` after a residual filter,
//!    ordering, limits) runs as a cheap post-pass over the maintained
//!    frame, via the same row-level operators the from-scratch oracle
//!    uses — which is what makes the two paths cell-for-cell identical.

use flor_df::{DataFrame, DfError};
use flor_store::{CmpOp, Predicate, StoreError, StoreResult};

/// The fixed context columns every pivot row carries (paper Fig. 3), and
/// therefore the columns whose predicates can be maintained *inside* a
/// materialized view: their cells are written once per row, straight from
/// the log record, and never rewritten by an upsert.
pub const FIXED_COLS: [&str; 3] = ["projid", "tstamp", "filename"];

/// A canonical, declarative dataframe query: what `Flor::query` builds
/// and every layer lowers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Projected log `value_name`s, in request order.
    pub names: Vec<String>,
    /// Conjunctive predicates over the pivoted view's columns, applied
    /// before any `latest` dedup. A predicate naming a column the view
    /// lacks matches nothing (the [`flor_store::Query`] convention).
    pub predicates: Vec<Predicate>,
    /// `Some(group)` applies `latest`-per-group dedup by max `tstamp`
    /// (paper Fig. 6) after filtering.
    pub latest_group: Option<Vec<String>>,
    /// Sort keys applied after dedup: `(column, ascending)`.
    pub order_by: Vec<(String, bool)>,
    /// Keep at most this many rows, after ordering.
    pub limit: Option<usize>,
}

impl QueryPlan {
    /// A plain pivot plan over `names`: no predicates, dedup, order or
    /// limit — the shape of the legacy `flor.dataframe(names)` call.
    pub fn new(names: &[&str]) -> QueryPlan {
        QueryPlan {
            names: names.iter().map(|s| s.to_string()).collect(),
            predicates: Vec::new(),
            latest_group: None,
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// A pivot + `latest` plan — the shape of the legacy
    /// `flor.dataframe_latest(names, group)` call.
    pub fn with_latest(names: &[&str], group: &[&str]) -> QueryPlan {
        QueryPlan {
            latest_group: Some(group.iter().map(|s| s.to_string()).collect()),
            ..QueryPlan::new(names)
        }
    }

    /// Append a predicate.
    pub fn filter(mut self, col: &str, op: CmpOp, value: impl Into<flor_df::Value>) -> QueryPlan {
        self.predicates.push(Predicate::new(col, op, value));
        self
    }

    /// Split the predicates into the *pushdown* set — maintained inside
    /// the materialized view — and the *residual* set applied as a
    /// post-pass. Only predicates over [`FIXED_COLS`] can be maintained:
    /// loop-dimension and value columns are discovered lazily and value
    /// cells mutate under last-write-wins upserts, so a row's membership
    /// could silently change after materialization.
    pub fn split_predicates(&self) -> (Vec<Predicate>, Vec<Predicate>) {
        self.predicates
            .iter()
            .cloned()
            .partition(|p| FIXED_COLS.contains(&p.col.as_str()))
    }

    /// Whether running [`QueryPlan::post_pass`] with these inputs would be
    /// the identity — in which case a caller holding a shared snapshot can
    /// hand it out without copying.
    pub fn post_pass_is_identity(&self, residual: &[Predicate], apply_latest: bool) -> bool {
        residual.is_empty() && !apply_latest && self.order_by.is_empty() && self.limit.is_none()
    }

    /// The dataframe-layer tail of the plan: residual predicates, then
    /// (optionally) `latest` dedup, then ordering, then the limit.
    ///
    /// This one function is shared by the incremental path (over the
    /// maintained frame, with only the residual predicates) and the
    /// from-scratch oracle (over a full re-pivot, with *every* predicate),
    /// so the two can only diverge in what they feed it — which the
    /// property tests pin down.
    pub fn post_pass(
        &self,
        base: &DataFrame,
        residual: &[Predicate],
        apply_latest: bool,
    ) -> StoreResult<DataFrame> {
        let mut staged: Option<DataFrame> = None;
        for p in residual {
            let cur = staged.as_ref().unwrap_or(base);
            staged = Some(match cur.filter_by(&p.col, |v| p.matches(v)) {
                Ok(df) => df,
                // The flor_store::Query convention: a predicate over a
                // column the frame lacks matches nothing.
                Err(DfError::UnknownColumn(_)) => cur.head(0),
                Err(e) => return Err(StoreError::Df(e)),
            });
        }
        if apply_latest {
            if let Some(group) = &self.latest_group {
                let cur = staged.as_ref().unwrap_or(base);
                // Empty frames short-circuit, exactly like the kernel's
                // from-scratch `dataframe_latest_full` oracle.
                if cur.n_rows() > 0 {
                    let gs: Vec<&str> = group.iter().map(String::as_str).collect();
                    staged = Some(cur.latest(&gs, "tstamp").map_err(StoreError::Df)?);
                }
            }
        }
        if !self.order_by.is_empty() {
            let keys: Vec<(&str, bool)> = self
                .order_by
                .iter()
                .map(|(c, a)| (c.as_str(), *a))
                .collect();
            let cur = staged.as_ref().unwrap_or(base);
            staged = Some(cur.sort_by(&keys).map_err(StoreError::Df)?);
        }
        if let Some(n) = self.limit {
            let cur = staged.as_ref().unwrap_or(base);
            staged = Some(cur.head(n));
        }
        Ok(staged.unwrap_or_else(|| base.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_df::{Column, Value};

    fn frame() -> DataFrame {
        DataFrame::from_columns(vec![
            Column::new("projid", vec!["p", "p", "p", "p"]),
            Column::new("tstamp", vec![1i64, 2, 3, 4]),
            Column::new("doc_value", vec!["a", "a", "b", "b"]),
            Column::new("loss", vec![0.4f64, 0.3, 0.2, 0.1]),
        ])
        .unwrap()
    }

    #[test]
    fn split_partitions_fixed_vs_residual() {
        let plan = QueryPlan::new(&["loss"])
            .filter("tstamp", CmpOp::Gt, 1)
            .filter("loss", CmpOp::Lt, 0.35)
            .filter("projid", CmpOp::Eq, "p")
            .filter("doc_value", CmpOp::Eq, "a");
        let (push, residual) = plan.split_predicates();
        let cols = |ps: &[Predicate]| ps.iter().map(|p| p.col.clone()).collect::<Vec<_>>();
        assert_eq!(cols(&push), vec!["tstamp", "projid"]);
        assert_eq!(cols(&residual), vec!["loss", "doc_value"]);
    }

    #[test]
    fn post_pass_filters_dedups_orders_limits() {
        let plan = QueryPlan {
            latest_group: Some(vec!["doc_value".into()]),
            order_by: vec![("tstamp".into(), false)],
            limit: Some(1),
            ..QueryPlan::new(&["loss"])
        }
        .filter("tstamp", CmpOp::Le, 3);
        let (_, residual) = plan.split_predicates();
        assert!(residual.is_empty(), "tstamp is a pushdown column");
        // Feed every predicate, oracle-style.
        let out = plan.post_pass(&frame(), &plan.predicates, true).unwrap();
        assert_eq!(out.n_rows(), 1);
        // tstamp<=3 keeps rows 1..3; latest per doc picks ts 2 and 3;
        // descending order then limit 1 keeps ts 3.
        assert_eq!(out.get(0, "tstamp"), Some(&Value::Int(3)));
    }

    #[test]
    fn post_pass_unknown_predicate_column_matches_nothing() {
        let plan = QueryPlan::new(&["loss"]).filter("nope", CmpOp::Eq, 1);
        let out = plan.post_pass(&frame(), &plan.predicates, false).unwrap();
        assert_eq!(out.n_rows(), 0);
        assert_eq!(out.n_cols(), 4, "columns survive an empty match");
    }

    #[test]
    fn post_pass_identity_detection() {
        let plan = QueryPlan::new(&["loss"]);
        assert!(plan.post_pass_is_identity(&[], false));
        assert!(!plan.post_pass_is_identity(&[], true));
        let limited = QueryPlan {
            limit: Some(5),
            ..QueryPlan::new(&["loss"])
        };
        assert!(!limited.post_pass_is_identity(&[], false));
    }

    #[test]
    fn post_pass_empty_frame_skips_latest() {
        let plan = QueryPlan::with_latest(&["loss"], &["no_such_group"]);
        let out = plan.post_pass(&DataFrame::new(), &[], true).unwrap();
        assert_eq!(out.n_rows(), 0);
    }
}
