//! The crate's central property: for random interleavings of log writes,
//! loop contexts, commits, rollbacks, hindsight backfills and mid-stream
//! queries, an incrementally maintained view is **cell-for-cell
//! identical** — columns, order, nulls and all — to the kernel's
//! from-scratch recompute (the oracle), and it gets there by applying
//! deltas, never by falling back to a rebuild.

use flor_core::{backfill, run_script, Flor};
use flor_df::{DataFrame, Value};
use flor_record::CheckpointPolicy;
use flor_store::{CmpOp, Predicate, StoreResult};
use flor_view::QueryPlan;
use proptest::prelude::*;

const NAMES: [&str; 3] = ["loss", "acc", "note"];
const LOOPS: [&str; 2] = ["document", "page"];

/// One step of a randomized kernel session.
#[derive(Debug, Clone)]
enum Op {
    /// `flor.log(NAMES[i], value)`.
    Log(usize, Value),
    /// Open a loop context `LOOPS[i]` at the given iteration.
    LoopPush(usize, usize),
    /// Close the innermost loop context.
    LoopPop,
    /// `flor.commit`: flush + publish to the change feed.
    Commit,
    /// Discard the staged transaction.
    Rollback,
    /// Materialize the view mid-stream, so later ops arrive as deltas to
    /// an already-built view.
    Query,
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::from),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0usize..NAMES.len(), arb_value()).prop_map(|(i, v)| Op::Log(i, v)),
        2 => (0usize..LOOPS.len(), 0usize..4).prop_map(|(i, it)| Op::LoopPush(i, it)),
        2 => Just(Op::LoopPop),
        2 => Just(Op::Commit),
        1 => Just(Op::Rollback),
        2 => Just(Op::Query),
    ]
}

/// Drive the ops through a kernel, returning the session.
fn run_ops(ops: &[Op]) -> Flor {
    let flor = Flor::new("prop");
    flor.set_filename("session.fl");
    let mut depth = 0usize;
    for op in ops {
        match op {
            Op::Log(i, v) => {
                flor.log(NAMES[*i], v.clone());
            }
            Op::LoopPush(i, iter) => {
                if depth < 2 {
                    flor.loop_iter(LOOPS[*i], *iter, &Value::Int(*iter as i64));
                    depth += 1;
                }
            }
            Op::LoopPop => {
                if depth > 0 {
                    flor.loop_end();
                    depth -= 1;
                }
            }
            Op::Commit => {
                flor.commit("step").unwrap();
            }
            Op::Rollback => {
                flor.db.rollback();
            }
            Op::Query => {
                flor.dataframe(&["loss", "acc"]).unwrap();
                let _ = flor.dataframe_latest(&["loss"], &["projid"]);
            }
        }
    }
    while depth > 0 {
        flor.loop_end();
        depth -= 1;
    }
    flor.commit("final").unwrap();
    flor
}

/// Compare the maintained view against the from-scratch oracle for one
/// projection, cell for cell (frame equality covers column names, column
/// order, row order and every value).
fn assert_matches_oracle(flor: &Flor, names: &[&str]) {
    let incremental = flor.dataframe(names).unwrap();
    let oracle = flor.dataframe_full(names).unwrap();
    assert_eq!(
        incremental, oracle,
        "incremental view diverged from recompute for {names:?}"
    );
}

/// Literals random predicates compare against: values that do and do not
/// occur in the session (`projid` is "prop", `filename` "session.fl",
/// tstamps are small ints), plus nulls and arbitrary strings.
fn arb_pred_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-3i64..12).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(Value::Float),
        Just(Value::Str("prop".into())),
        Just(Value::Str("session.fl".into())),
        "[a-z]{0,3}".prop_map(Value::from),
        Just(Value::Null),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let col = prop_oneof![
        // Fixed context columns (pushdown-maintained)...
        Just("projid"),
        Just("tstamp"),
        Just("filename"),
        // ...loop dimensions and value columns (residual post-pass)...
        Just("document_iteration"),
        Just("document_value"),
        Just("page_iteration"),
        Just("loss"),
        Just("acc"),
        Just("note"),
        // ...and a column no frame will ever have.
        Just("missing_col"),
    ];
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    (col, op, arb_pred_value()).prop_map(|(c, o, v)| Predicate::new(c, o, v))
}

/// Random full plans: filter × latest × order × limit over a random
/// projection.
fn arb_plan() -> impl Strategy<Value = QueryPlan> {
    let names = prop_oneof![
        Just(vec!["loss", "acc", "note"]),
        Just(vec!["loss", "acc"]),
        Just(vec!["acc"]),
        Just(vec!["note", "loss"]),
    ];
    let latest = prop_oneof![
        Just(None),
        Just(Some(vec!["projid".to_string()])),
        Just(Some(vec!["document_value".to_string()])),
        Just(Some(vec!["projid".to_string(), "tstamp".to_string()])),
    ];
    let order = prop_oneof![
        Just(Vec::new()),
        Just(vec![("tstamp".to_string(), false)]),
        Just(vec![
            ("loss".to_string(), true),
            ("tstamp".to_string(), false)
        ]),
        Just(vec![("document_iteration".to_string(), true)]),
    ];
    let limit = prop_oneof![Just(None), (0usize..15).prop_map(Some)];
    (
        names,
        proptest::collection::vec(arb_predicate(), 0..3),
        latest,
        order,
        limit,
    )
        .prop_map(
            |(names, predicates, latest_group, order_by, limit)| QueryPlan {
                names: names.into_iter().map(String::from).collect(),
                predicates,
                latest_group,
                order_by,
                limit,
            },
        )
}

/// The independent oracle for a full plan: `dataframe_full` (from-scratch
/// re-pivot), then *post-hoc* filtering/dedup/order/limit written with
/// different operators than the production post-pass uses.
fn posthoc_oracle(flor: &Flor, plan: &QueryPlan) -> StoreResult<DataFrame> {
    let names: Vec<&str> = plan.names.iter().map(String::as_str).collect();
    let mut df = flor.dataframe_full(&names)?;
    for p in &plan.predicates {
        df = if df.column(&p.col).is_none() {
            df.head(0)
        } else {
            df.filter(|r| p.matches(r.get(&p.col).expect("column checked")))
        };
    }
    if let Some(group) = &plan.latest_group {
        if df.n_rows() > 0 {
            let gs: Vec<&str> = group.iter().map(String::as_str).collect();
            df = df.latest(&gs, "tstamp")?;
        }
    }
    if !plan.order_by.is_empty() {
        let keys: Vec<(&str, bool)> = plan
            .order_by
            .iter()
            .map(|(c, a)| (c.as_str(), *a))
            .collect();
        df = df.sort_by(&keys)?;
    }
    if let Some(n) = plan.limit {
        df = df.head(n);
    }
    Ok(df)
}

const TRAIN_V1: &str = r#"
let data = load_dataset("first_page", 30, 42);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, 2)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
    }
}
"#;

const TRAIN_V2: &str = r#"
let data = load_dataset("first_page", 30, 42);
let net = make_model(5, 4, 2, 7);
with flor.checkpointing(net) {
    for e in flor.loop("epoch", range(0, 2)) {
        let loss = train_step(net, data, 0.5);
        flor.log("loss", loss);
        let m = eval_model(net, data);
        flor.log("acc", m[0]);
    }
}
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random interleavings of inserts, loop contexts, commits and
    /// rollbacks: the maintained view equals the oracle, via deltas only.
    #[test]
    fn incremental_view_equals_recompute(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let flor = run_ops(&ops);
        assert_matches_oracle(&flor, &["loss", "acc", "note"]);
        assert_matches_oracle(&flor, &["acc"]);
        assert_matches_oracle(&flor, &["loss", "note"]);
        // No silent rescue: equality must come from delta application.
        prop_assert_eq!(flor.views.stats().fallback_rebuilds, 0);
    }

    /// Same, for the `latest`-deduplicated views, over both an index
    /// group and a loop-dimension group (which may or may not exist,
    /// and must then error identically to the oracle).
    #[test]
    fn incremental_latest_equals_recompute(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let flor = run_ops(&ops);
        let inc = flor.dataframe_latest(&["loss", "acc"], &["projid"]).unwrap();
        let full = flor.dataframe_latest_full(&["loss", "acc"], &["projid"]).unwrap();
        prop_assert_eq!(inc, full);
        let dim_group = ["document_iteration"];
        match (
            flor.dataframe_latest(&["loss"], &dim_group),
            flor.dataframe_latest_full(&["loss"], &dim_group),
        ) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {} // both reject the missing dimension
            (a, b) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}", a, b),
        }
    }

    /// Random full plans (filter × latest × order × limit) over random
    /// op interleavings: the lazy builder's incremental result is
    /// cell-for-cell equal to post-hoc filtering of the from-scratch
    /// `_full` oracle — and gets there by deltas, never a rebuild.
    #[test]
    fn random_plans_equal_posthoc_oracle(
        ops in proptest::collection::vec(arb_op(), 0..40),
        plans in proptest::collection::vec(arb_plan(), 1..4),
    ) {
        let flor = run_ops(&ops);
        for plan in &plans {
            match (flor.run_plan(plan), posthoc_oracle(&flor, plan)) {
                (Ok(inc), Ok(oracle)) => prop_assert_eq!(
                    (*inc).clone(),
                    oracle,
                    "lazy plan diverged from post-hoc oracle: {:?}",
                    plan
                ),
                (Err(_), Err(_)) => {} // both reject (e.g. unknown sort/group column)
                (a, b) => prop_assert!(
                    false,
                    "divergent outcomes for {:?}: {:?} vs {:?}",
                    plan,
                    a.map(|d| d.n_rows()),
                    b.map(|d| d.n_rows())
                ),
            }
        }
        // Querying again after a live commit still applies deltas only.
        // The commit logs inside a never-seen loop, so it also widens the
        // schema of every already-materialized view — including filtered
        // ones whose pushdown gate excludes the new row.
        flor.loop_iter("tail", 0, &Value::Int(0));
        flor.log("loss", Value::Float(0.125));
        flor.loop_end();
        flor.commit("tail").unwrap();
        for plan in &plans {
            match (flor.run_plan(plan), posthoc_oracle(&flor, plan)) {
                (Ok(inc), Ok(oracle)) => prop_assert_eq!((*inc).clone(), oracle),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "post-commit divergence for {:?}: {:?} vs {:?}",
                    plan,
                    a.map(|d| d.n_rows()),
                    b.map(|d| d.n_rows())
                ),
            }
        }
        prop_assert_eq!(flor.views.stats().fallback_rebuilds, 0);
    }

    /// Hindsight backfill interleaved with live logging: recovered values
    /// land in the already-materialized view through the change feed, and
    /// the result still equals the oracle.
    #[test]
    fn backfill_interleaving_equals_recompute(
        ops in proptest::collection::vec(arb_op(), 0..20),
        query_before_backfill in any::<bool>(),
    ) {
        let flor = run_ops(&ops);
        flor.fs.write("train.fl", TRAIN_V1);
        run_script(&flor, "train.fl", CheckpointPolicy::EveryK(1)).unwrap();
        flor.fs.write("train.fl", TRAIN_V2);
        if query_before_backfill {
            // Materialize with holes so backfill must arrive as deltas —
            // including into a latest view whose max-timestamp rows are
            // exactly the ones backfill upserts.
            flor.set_filename("session.fl");
            flor.dataframe(&["loss", "acc"]).unwrap();
            flor.dataframe_latest(&["loss", "acc"], &["projid"]).unwrap();
        }
        backfill(&flor, "train.fl", &["acc"], 2).unwrap();
        assert_matches_oracle(&flor, &["loss", "acc"]);
        assert_matches_oracle(&flor, &["loss", "acc", "note"]);
        let inc = flor.dataframe_latest(&["loss", "acc"], &["projid"]).unwrap();
        let full = flor
            .dataframe_latest_full(&["loss", "acc"], &["projid"])
            .unwrap();
        prop_assert_eq!(inc, full);
        prop_assert_eq!(flor.views.stats().fallback_rebuilds, 0);
    }
}
