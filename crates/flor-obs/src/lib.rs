//! # flor-obs — the observability core under the FlorDB stack
//!
//! Every layer of the stack (store, jobs, views, kernel) records into one
//! process-wide [`MetricsRegistry`]: lock-free atomic [`Counter`]s and
//! [`Gauge`]s, fixed-bucket latency [`Histogram`]s, lightweight
//! [`Span`] timings, and a bounded ring-buffer [`Event`] log for discrete
//! occurrences (checkpoint done, compaction pass, feed shed, job-unit
//! failure). [`MetricsRegistry::snapshot`] produces a consistent
//! [`MetricsSnapshot`] with text, JSON and Prometheus exposition-format
//! rendering ([`MetricsSnapshot::render_prometheus`], served by
//! `flor-serve`'s scrape verb) — what `Flor::metrics()` surfaces at the
//! kernel.
//!
//! # Design constraints
//!
//! The registry must cost nearly nothing when nobody reads it:
//!
//! * **Hot-path records are relaxed atomic adds.** Handles
//!   ([`Counter`], [`Gauge`], [`Histogram`]) are resolved by name *once*
//!   (at wiring time, behind a registry mutex) and then held as `Arc`s —
//!   no map lookup, no allocation, no lock on the record path.
//! * **Timing is gated.** [`Span::enter`] consults the registry's
//!   [`MetricsRegistry::enabled`] flag (one relaxed load) and skips the
//!   `Instant::now()` pair entirely when disabled — the instrumentation
//!   overhead benches compare exactly this enabled/disabled pair.
//! * **Histograms never allocate.** Fixed power-of-two buckets
//!   ([`HIST_BUCKETS`] atomics per histogram); a snapshot derives its
//!   count from the buckets so it is internally consistent by
//!   construction even while writers race.
//! * **Events are bounded.** The ring keeps the latest
//!   [`EVENT_LOG_CAPACITY`] events; older ones fall off.
//!
//! # Metric name registry
//!
//! Names are dotted paths, `<layer>.<object>.<measure>`; `*_nanos`
//! metrics are histograms of durations in nanoseconds. The stack records:
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `store.commit.nanos` | histogram | whole `Database::commit` latency |
//! | `store.commit.rows` | counter | rows made visible by commits |
//! | `store.wal.append_nanos` | histogram | per-record WAL append latency |
//! | `store.wal.fsync_nanos` | histogram | commit-marker fsync latency |
//! | `store.segment.rows_coalesced` | counter | rows re-copied by commit-time tail folding |
//! | `store.checkpoint.nanos` | histogram | whole checkpoint duration |
//! | `store.compaction.nanos` | histogram | whole compaction-pass duration |
//! | `store.query.segments_scanned` | counter | segments visited by store queries |
//! | `store.query.segments_pruned` | counter | segments skipped via zone maps |
//! | `store.query.rows_examined` | counter | rows touched by store queries |
//! | `store.query.rows_returned` | counter | rows returned by store queries |
//! | `store.feed.depth` | gauge | deepest subscriber queue after last publish |
//! | `store.feed.coalesced` | counter | queued batch pairs merged under backpressure |
//! | `store.feed.shed` | counter | batches dropped under backpressure |
//! | `jobs.unit.queue_wait_nanos` | histogram | unit time from enqueue to pop |
//! | `jobs.unit.run_nanos` | histogram | unit compute-phase duration |
//! | `jobs.unit.done` | counter | units completed (all jobs) |
//! | `jobs.unit.failed` | counter | units whose compute or staging failed |
//! | `jobs.done.<kind>` | counter | units completed per job kind (throughput) |
//! | `view.build_nanos` | histogram | full view build/rebuild duration |
//! | `view.refresh_nanos` | histogram | incremental delta-application duration |
//! | `view.hits` / `view.misses` | counter | catalog cache hits / builds |
//! | `view.rebuilds` | counter | fallback full rebuilds |
//!
//! Event kinds: `checkpoint`, `compaction`, `feed.coalesce`, `feed.shed`,
//! `job.unit_failed`, `view.rebuild`, `follower`, `serve.error`,
//! `session`. Each event carries a severity [`Level`] and a wall-clock
//! timestamp; filter with [`MetricsRegistry::events_at_least`].
//!
//! # Tracing
//!
//! Alongside aggregate metrics the registry owns two bounded rings for
//! per-request forensics (see the [`trace`](crate::TraceStore) types):
//! a [`TraceStore`] of completed hierarchical [`Trace`]s (opt-in via
//! `registry.traces().set_enabled(true)`; an [`ActiveTrace`] is built
//! lock-free by one request handler and published in one short lock
//! hold) and a [`SlowQueryStore`] capturing requests that exceed an
//! armed latency threshold together with their rendered explain report.
//! `flor-serve` threads a [`TraceId`] over the wire so clients can
//! retrieve the server-side trace of their own query.
//!
//! ```
//! use flor_obs::{MetricsRegistry, Span};
//! let reg = MetricsRegistry::new();
//! let commits = reg.counter("store.commit.rows");
//! let lat = reg.histogram("store.commit.nanos");
//! {
//!     let _span = Span::enter(&reg, &lat); // records elapsed on drop
//!     commits.add(3);
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("store.commit.rows"), Some(3));
//! assert_eq!(snap.histogram("store.commit.nanos").unwrap().count, 1);
//! println!("{}", snap.render_text());
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

mod trace;
pub use trace::{
    ActiveTrace, SlowQueryRecord, SlowQueryStore, SpanEvent, SpanId, Trace, TraceId, TraceSpan,
    TraceStore, SLOW_QUERY_CAPACITY, TRACE_STORE_CAPACITY,
};

/// Number of power-of-two histogram buckets. Bucket `i` holds values
/// whose bit length is `i` (bucket 0 holds the value 0), so the bounded
/// range covers `[0, 2^42)` — about 73 minutes in nanoseconds — with the
/// last bucket absorbing everything larger.
pub const HIST_BUCKETS: usize = 44;

/// Capacity of the bounded event ring; older events fall off.
pub const EVENT_LOG_CAPACITY: usize = 256;

pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wall-clock now, microseconds since the Unix epoch (0 if the clock is
/// before the epoch).
pub fn unix_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Severity of an [`Event`]: ordered so that snapshots can be filtered
/// with [`MetricsSnapshot::events_at_least`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Chatty diagnostics (session open/close).
    Debug,
    /// Normal operational milestones (checkpoint, compaction).
    Info,
    /// Degraded-but-working conditions (backpressure shed, rebuild
    /// fallback, request errors).
    Warn,
    /// Lost work (job unit failed after staging).
    Error,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        })
    }
}

/// A monotonically increasing counter (relaxed atomic adds).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    // audit: ordering — a statistics counter: the total is what matters,
    // no other memory is published through it, so Relaxed suffices.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    // audit: ordering — scrape-time read of a statistic; a slightly
    // stale value is fine and no ordering with other metrics is implied.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value (queue depths, sizes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    // audit: ordering — a point-in-time gauge; readers only want the
    // latest-ish value, no happens-before edges ride on it.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `d` (may be negative).
    // audit: ordering — fetch_add keeps the gauge consistent under
    // racing adjusters; cross-metric ordering is not promised.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    // audit: ordering — scrape-time read; staleness is acceptable.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram of `u64` samples (typically nanoseconds).
///
/// Buckets are powers of two; recording is one relaxed `fetch_add` into
/// the sample's bucket plus one into the running sum — no allocation, no
/// lock, no floating point.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    /// Sum of recorded samples. Read together with the buckets a racing
    /// snapshot may lag the bucket counts by in-flight records; the
    /// snapshot's `count` is therefore derived from the buckets alone.
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index of a sample: its bit length, clamped to the last
/// bucket.
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// The inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one sample.
    // audit: ordering — the bucket increment and the sum increment are
    // independent statistics; `snapshot` derives the count from the
    // buckets, so no inter-field ordering is required.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration, in nanoseconds (saturating past `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Consistent point-in-time copy: the count is derived from the
    /// bucket counts, so `count == Σ buckets` holds even under racing
    /// writers.
    // audit: ordering — each bucket is read independently; the snapshot
    // tolerates samples landing mid-scan (count is summed from what was
    // read), so Relaxed loads are enough.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                buckets.push((bucket_upper(i), n));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time histogram state: non-empty buckets as
/// `(inclusive upper bound, sample count)` pairs, ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples (always equals the sum of the bucket counts).
    pub count: u64,
    /// Sum of all samples (may lag `count` by in-flight records).
    pub sum: u64,
    /// Non-empty buckets: `(inclusive upper bound, samples)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 < q <= 1.0`), or `None` when empty. Conservative: the true
    /// quantile is at most the returned value.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return Some(upper);
            }
        }
        self.buckets.last().map(|&(upper, _)| upper)
    }

    /// Upper bound of the largest non-empty bucket (`None` when empty).
    pub fn max_bound(&self) -> Option<u64> {
        self.buckets.last().map(|&(upper, _)| upper)
    }
}

/// A lightweight timing guard: enter at a point of interest, and the
/// elapsed wall time is recorded into the histogram on drop.
///
/// Hierarchy is by nesting: a child span started with [`Span::child`]
/// (or just another `enter`) measures an inner phase while the outer
/// span keeps running — dotted metric names (`store.commit.nanos` /
/// `store.wal.fsync_nanos`) express the parent/child relation in the
/// registry. When the registry is disabled the guard is inert: no
/// `Instant::now()`, no record.
#[must_use = "a span records on drop; binding it to _ drops immediately"]
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Start a span recording into `hist` on drop (inert when `registry`
    /// is disabled).
    pub fn enter(registry: &MetricsRegistry, hist: &'a Histogram) -> Span<'a> {
        Span {
            hist,
            start: registry.enabled().then(Instant::now),
        }
    }

    /// Start a nested span timing an inner phase into another histogram;
    /// inert iff the parent is inert.
    pub fn child<'b>(&self, hist: &'b Histogram) -> Span<'b> {
        Span {
            hist,
            start: self.start.is_some().then(Instant::now),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record_duration(start.elapsed());
        }
    }
}

/// One discrete occurrence captured by the event ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number (total events ever recorded; gaps in a
    /// snapshot mean older events fell off the ring).
    pub seq: u64,
    /// Microseconds since the registry was created.
    pub at_micros: u64,
    /// Wall-clock timestamp, microseconds since the Unix epoch.
    pub at_unix_micros: u64,
    /// Severity; [`MetricsRegistry::event`] records at [`Level::Info`].
    pub level: Level,
    /// Static kind tag (`checkpoint`, `feed.shed`, ...).
    pub kind: &'static str,
    /// Free-form detail, small by convention.
    pub detail: String,
}

#[derive(Debug, Default)]
struct EventRing {
    ring: VecDeque<Event>,
    next_seq: u64,
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct RegistryInner {
    enabled: AtomicBool,
    metrics: Mutex<BTreeMap<String, Metric>>,
    events: Mutex<EventRing>,
    start: Instant,
    traces: TraceStore,
    slow: SlowQueryStore,
}

/// The process-wide metric registry: named handles, the enabled flag,
/// the event ring, and consistent snapshots.
///
/// Cloning shares the same registry. Handle resolution
/// ([`MetricsRegistry::counter`] etc.) takes a mutex and is meant for
/// wiring time; record paths go through the returned `Arc` handles and
/// never touch the registry again.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.enabled())
            .field("metrics", &lock(&self.inner.metrics).len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Fresh registry, enabled.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                enabled: AtomicBool::new(true),
                metrics: Mutex::new(BTreeMap::new()),
                events: Mutex::new(EventRing::default()),
                start: Instant::now(),
                traces: TraceStore::default(),
                slow: SlowQueryStore::default(),
            }),
        }
    }

    /// The registry's completed-trace ring. Disabled by default; turn on
    /// with `traces().set_enabled(true)` — independent of the metric
    /// kill switch so tracing can stay off while counters run.
    pub fn traces(&self) -> &TraceStore {
        &self.inner.traces
    }

    /// The registry's slow-query ring. Unarmed by default; arm with
    /// `slow_queries().set_threshold(Some(..))`.
    pub fn slow_queries(&self) -> &SlowQueryStore {
        &self.inner.slow
    }

    /// Whether recording is enabled (one relaxed load; the gate every
    /// [`Span`] and instrumented call site checks).
    // audit: ordering — hot-path gate: a call site racing the flip may
    // record (or skip) one extra sample, which is harmless by design.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Flip the recording kill switch. Counters/gauges/histograms keep
    /// their accumulated state; disabled call sites simply stop adding.
    // audit: ordering — the switch gates only metric writes; it never
    // publishes other data, so no release edge is needed.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = lock(&self.inner.metrics);
        match g
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            // audit: allow(panic) — documented `# Panics` contract: a kind
            // mismatch is a wiring-time programming error, not input.
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut g = lock(&self.inner.metrics);
        match g
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(v) => Arc::clone(v),
            // audit: allow(panic) — documented `# Panics` wiring contract.
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Get or create the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = lock(&self.inner.metrics);
        match g
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            // audit: allow(panic) — documented `# Panics` wiring contract.
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Record a discrete [`Level::Info`] event into the bounded ring
    /// (dropped when the registry is disabled). `detail` should stay
    /// small — events are rare occurrences, not a log stream.
    pub fn event(&self, kind: &'static str, detail: impl Into<String>) {
        self.event_at(Level::Info, kind, detail);
    }

    /// Record a discrete event at an explicit severity (dropped when the
    /// registry is disabled).
    pub fn event_at(&self, level: Level, kind: &'static str, detail: impl Into<String>) {
        if !self.enabled() {
            return;
        }
        let at_micros = u64::try_from(self.inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let at_unix_micros = unix_micros();
        let mut g = lock(&self.inner.events);
        let seq = g.next_seq;
        g.next_seq += 1;
        if g.ring.len() == EVENT_LOG_CAPACITY {
            g.ring.pop_front();
        }
        g.ring.push_back(Event {
            seq,
            at_micros,
            at_unix_micros,
            level,
            kind,
            detail: detail.into(),
        });
    }

    /// Retained events at severity `min` or higher, oldest first —
    /// a filter over the ring without taking a full metric snapshot.
    pub fn events_at_least(&self, min: Level) -> Vec<Event> {
        lock(&self.inner.events)
            .ring
            .iter()
            .filter(|e| e.level >= min)
            .cloned()
            .collect()
    }

    /// A consistent point-in-time snapshot of every metric and the event
    /// ring, names sorted. Counters are monotone across successive
    /// snapshots and every histogram satisfies `count == Σ buckets`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in lock(&self.inner.metrics).iter() {
            match metric {
                Metric::Counter(c) => counters.push((name.clone(), c.get())),
                Metric::Gauge(v) => gauges.push((name.clone(), v.get())),
                Metric::Histogram(h) => histograms.push((name.clone(), h.snapshot())),
            }
        }
        let events = lock(&self.inner.events).ring.iter().cloned().collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            events,
        }
    }
}

/// Point-in-time state of a whole [`MetricsRegistry`]: sorted
/// name/value lists plus the retained events. Render with
/// [`MetricsSnapshot::render_text`] or [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Snapshot of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Retained events at severity `min` or higher, oldest first.
    pub fn events_at_least(&self, min: Level) -> Vec<&Event> {
        self.events.iter().filter(|e| e.level >= min).collect()
    }

    /// Human-readable multi-line rendering: one line per metric, then
    /// the retained events.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter  {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge    {name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = write!(
                out,
                "hist     {name} count={} mean={:.0}",
                h.count,
                h.mean()
            );
            for (label, q) in [("p50", 0.50), ("p99", 0.99)] {
                if let Some(b) = h.quantile(q) {
                    let _ = write!(out, " {label}<={b}");
                }
            }
            if let Some(m) = h.max_bound() {
                let _ = write!(out, " max<={m}");
            }
            out.push('\n');
        }
        for e in &self.events {
            let _ = writeln!(
                out,
                "event    #{} +{}us [{}] {} {}",
                e.seq, e.at_micros, e.level, e.kind, e.detail
            );
        }
        out
    }

    /// Prometheus text-format (exposition format version 0.0.4)
    /// rendering, suitable for a `/metrics` scrape endpoint (what
    /// `flor-serve` exposes as its `MetricsPrometheus` verb).
    ///
    /// Dotted names become underscore identifiers (`store.commit.rows`
    /// → `store_commit_rows`); counters get the conventional `_total`
    /// suffix; histograms render as **cumulative** `_bucket{le="..."}`
    /// series closed by `le="+Inf"`, plus `_sum` and `_count`. Every
    /// series is preceded by its `# HELP` (carrying the original dotted
    /// name) and `# TYPE` lines. Events have no Prometheus analogue and
    /// are not rendered.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        // Sanitization is lossy (`a.b` and `a_b` both map to `a_b`), and
        // counter `_total` suffixing can alias a counter `x` with a
        // counter `x_total`. Track every emitted series base name and
        // disambiguate collisions with a numeric suffix — sorted metric
        // order makes the assignment deterministic.
        let mut taken = std::collections::HashSet::new();
        for (name, v) in &self.counters {
            let mut p = prom_name(name);
            if !p.ends_with("_total") {
                p.push_str("_total");
            }
            let p = dedup_prom_name(&mut taken, p);
            let _ = writeln!(out, "# HELP {p} FlorDB counter {name}");
            let _ = writeln!(out, "# TYPE {p} counter");
            let _ = writeln!(out, "{p} {v}");
        }
        for (name, v) in &self.gauges {
            let p = dedup_prom_name(&mut taken, prom_name(name));
            let _ = writeln!(out, "# HELP {p} FlorDB gauge {name}");
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {v}");
        }
        for (name, h) in &self.histograms {
            let p = dedup_prom_name(&mut taken, prom_name(name));
            let _ = writeln!(out, "# HELP {p} FlorDB histogram {name}");
            let _ = writeln!(out, "# TYPE {p} histogram");
            let mut cum = 0u64;
            for &(upper, n) in &h.buckets {
                cum += n;
                // The unbounded last bucket folds into the mandatory
                // +Inf series below rather than printing u64::MAX as a
                // finite bound.
                if upper == u64::MAX {
                    continue;
                }
                let _ = writeln!(out, "{p}_bucket{{le=\"{upper}\"}} {cum}");
            }
            let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{p}_sum {}", h.sum);
            let _ = writeln!(out, "{p}_count {}", h.count);
        }
        out
    }

    /// Compact JSON rendering (hand-rolled; the workspace carries no
    /// serializer dependency).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_str(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_str(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_str(name),
                h.count,
                h.sum
            );
            for (j, (upper, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{upper},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"at_micros\":{},\"at_unix_micros\":{},\"level\":{},\"kind\":{},\"detail\":{}}}",
                e.seq,
                e.at_micros,
                e.at_unix_micros,
                json_str(&e.level.to_string()),
                json_str(e.kind),
                json_str(&e.detail)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Claim `candidate` in `taken`, appending `_2`, `_3`, ... until it is
/// unique — the sanitized-name collision escape hatch for
/// [`MetricsSnapshot::render_prometheus`].
fn dedup_prom_name(taken: &mut std::collections::HashSet<String>, candidate: String) -> String {
    if taken.insert(candidate.clone()) {
        return candidate;
    }
    let mut n = 2u64;
    loop {
        let alt = format!("{candidate}_{n}");
        if taken.insert(alt.clone()) {
            return alt;
        }
        n += 1;
    }
}

/// A dotted metric name as a Prometheus identifier: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, with a leading `_` prepended if
/// the name would otherwise start with a digit.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("a.g");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn handles_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        // Bucket boundaries: 0 → bucket 0 (upper 0? bucket_upper(0)=0),
        // 1 → bucket 1 (upper 1), 2,3 → bucket 2 (upper 3).
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 6);
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (3, 2)]);
        assert_eq!(s.quantile(0.25), Some(0));
        assert_eq!(s.quantile(0.5), Some(1));
        assert_eq!(s.quantile(1.0), Some(3));
        assert_eq!(s.max_bound(), Some(3));
        assert!((s.mean() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_huge_sample_lands_in_last_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(u64::MAX, 1)]);
    }

    #[test]
    fn span_records_on_drop_and_disabled_is_inert() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t");
        {
            let _s = Span::enter(&reg, &h);
        }
        assert_eq!(h.snapshot().count, 1);
        reg.set_enabled(false);
        {
            let _s = Span::enter(&reg, &h);
        }
        assert_eq!(h.snapshot().count, 1, "disabled span must not record");
    }

    #[test]
    fn child_span_records_inner_phase() {
        let reg = MetricsRegistry::new();
        let outer = reg.histogram("outer");
        let inner = reg.histogram("inner");
        {
            let s = Span::enter(&reg, &outer);
            let _c = s.child(&inner);
        }
        assert_eq!(outer.snapshot().count, 1);
        assert_eq!(inner.snapshot().count, 1);
    }

    #[test]
    fn event_ring_is_bounded_and_sequenced() {
        let reg = MetricsRegistry::new();
        for i in 0..(EVENT_LOG_CAPACITY + 10) {
            reg.event("tick", format!("i={i}"));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.events.len(), EVENT_LOG_CAPACITY);
        assert_eq!(snap.events.first().unwrap().seq, 10);
        assert_eq!(
            snap.events.last().unwrap().seq,
            (EVENT_LOG_CAPACITY + 9) as u64
        );
        reg.set_enabled(false);
        reg.event("tick", "dropped");
        assert_eq!(reg.snapshot().events.len(), EVENT_LOG_CAPACITY);
    }

    #[test]
    fn snapshot_lookup_and_rendering() {
        let reg = MetricsRegistry::new();
        reg.counter("c.one").add(2);
        reg.gauge("g.one").set(-3);
        reg.histogram("h.one").record(100);
        reg.event("checkpoint", "epoch=1");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c.one"), Some(2));
        assert_eq!(snap.gauge("g.one"), Some(-3));
        assert_eq!(snap.histogram("h.one").unwrap().count, 1);
        assert_eq!(snap.counter("absent"), None);
        let text = snap.render_text();
        assert!(text.contains("counter  c.one 2"));
        assert!(text.contains("gauge    g.one -3"));
        assert!(text.contains("hist     h.one count=1"));
        assert!(text.contains("checkpoint epoch=1"));
        let json = snap.to_json();
        assert!(json.contains("\"c.one\":2"));
        assert!(json.contains("\"g.one\":-3"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"kind\":\"checkpoint\""));
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prom_name("store.commit.rows"), "store_commit_rows");
        assert_eq!(prom_name("jobs.done.my-kind"), "jobs_done_my_kind");
        assert_eq!(prom_name("9lives.x"), "_9lives_x");
        assert_eq!(prom_name("a:b_c"), "a:b_c");
    }

    #[test]
    fn prometheus_counters_and_gauges() {
        let reg = MetricsRegistry::new();
        reg.counter("store.commit.rows").add(5);
        reg.counter("already_total").add(1);
        reg.gauge("store.feed.depth").set(-3);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# HELP store_commit_rows_total FlorDB counter store.commit.rows\n"));
        assert!(text.contains("# TYPE store_commit_rows_total counter\n"));
        assert!(text.contains("\nstore_commit_rows_total 5\n"));
        // An existing `_total` suffix is not doubled.
        assert!(text.contains("\nalready_total 1\n"));
        assert!(!text.contains("already_total_total"));
        assert!(text.contains("# TYPE store_feed_depth gauge\n"));
        assert!(text.contains("\nstore_feed_depth -3\n"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("store.commit.nanos");
        // Buckets: 0 → upper 0, 1 → upper 1, {2,3} → upper 3.
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE store_commit_nanos histogram\n"));
        assert!(text.contains("store_commit_nanos_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("store_commit_nanos_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("store_commit_nanos_bucket{le=\"3\"} 4\n"));
        assert!(text.contains("store_commit_nanos_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("store_commit_nanos_sum 6\n"));
        assert!(text.contains("store_commit_nanos_count 4\n"));
    }

    #[test]
    fn prometheus_unbounded_bucket_folds_into_inf() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        h.record(u64::MAX);
        h.record(1);
        let text = reg.snapshot().render_prometheus();
        // The u64::MAX bucket must not appear as a finite bound…
        assert!(!text.contains(&u64::MAX.to_string()));
        // …its sample shows up only in the +Inf series.
        assert!(text.contains("h_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("h_count 2\n"));
    }

    #[test]
    fn events_carry_level_and_wallclock_and_filter() {
        let reg = MetricsRegistry::new();
        reg.event_at(Level::Debug, "session", "open");
        reg.event("checkpoint", "epoch=1"); // Info
        reg.event_at(Level::Warn, "feed.shed", "dropped=2");
        reg.event_at(Level::Error, "job.unit_failed", "unit=3");
        let warn_up = reg.events_at_least(Level::Warn);
        assert_eq!(warn_up.len(), 2);
        assert_eq!(warn_up[0].kind, "feed.shed");
        assert_eq!(warn_up[1].level, Level::Error);
        let snap = reg.snapshot();
        assert_eq!(snap.events_at_least(Level::Debug).len(), 4);
        assert_eq!(snap.events_at_least(Level::Info).len(), 3);
        assert_eq!(snap.events_at_least(Level::Error).len(), 1);
        for e in &snap.events {
            assert!(e.at_unix_micros > 1_600_000_000_000_000, "wall clock set");
        }
        let text = snap.render_text();
        assert!(text.contains("[warn] feed.shed dropped=2"));
        assert!(text.contains("[info] checkpoint epoch=1"));
        let json = snap.to_json();
        assert!(json.contains("\"level\":\"error\""));
        assert!(json.contains("\"at_unix_micros\":"));
    }

    #[test]
    fn level_ordering() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::Warn.to_string(), "warn");
    }

    #[test]
    fn prometheus_sanitized_name_collisions_are_disambiguated() {
        let reg = MetricsRegistry::new();
        // `a.b` and `a_b` both sanitize to `a_b` (here: `a_b_total`).
        reg.counter("a.b").add(1);
        reg.counter("a_b").add(2);
        let text = reg.snapshot().render_prometheus();
        // Sorted order: "a.b" < "a_b", so the dotted name wins the base.
        assert!(text.contains("\na_b_total 1\n"));
        assert!(text.contains("\na_b_total_2 2\n"));
        assert!(text.contains("# TYPE a_b_total_2 counter\n"));
    }

    #[test]
    fn prometheus_counter_total_suffix_collision_is_disambiguated() {
        let reg = MetricsRegistry::new();
        // Counter `x` gains `_total` and would alias counter `x_total`.
        reg.counter("x").add(1);
        reg.counter("x_total").add(2);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("\nx_total 1\n"));
        assert!(text.contains("\nx_total_2 2\n"));
    }

    #[test]
    fn prometheus_gauge_vs_counter_collision_is_disambiguated() {
        let reg = MetricsRegistry::new();
        reg.counter("q.depth").add(1);
        reg.gauge("q_depth_total").set(9);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("\nq_depth_total 1\n"));
        assert!(text.contains("\nq_depth_total_2 9\n"));
        assert!(text.contains("# TYPE q_depth_total_2 gauge\n"));
    }

    #[test]
    fn registry_exposes_trace_and_slow_stores() {
        let reg = MetricsRegistry::new();
        assert!(!reg.traces().enabled(), "tracing is opt-in");
        assert!(!reg.slow_queries().armed(), "slow log is unarmed");
        reg.traces().set_enabled(true);
        let mut tr = ActiveTrace::start(reg.traces(), None, "query").unwrap();
        let s = tr.begin("store.scan");
        tr.end(s);
        let done = tr.finish(reg.traces());
        assert_eq!(reg.traces().find(done.id).unwrap(), done);
        // Disabling metrics does not disable tracing and vice versa.
        reg.set_enabled(false);
        assert!(reg.traces().enabled());
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn counters_monotone_under_concurrency() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("m");
        let h = reg.histogram("hm");
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let (c, h, stop) = (Arc::clone(&c), Arc::clone(&h), Arc::clone(&stop));
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        c.inc();
                        h.record(42);
                    }
                })
            })
            .collect();
        let mut last_c = 0;
        let mut last_h = 0;
        for _ in 0..200 {
            let snap = reg.snapshot();
            let cv = snap.counter("m").unwrap();
            let hs = snap.histogram("hm").unwrap();
            assert!(cv >= last_c, "counter went backwards");
            assert!(hs.count >= last_h, "histogram count went backwards");
            let bucket_sum: u64 = hs.buckets.iter().map(|&(_, n)| n).sum();
            assert_eq!(hs.count, bucket_sum, "count must equal Σ buckets");
            last_c = cv;
            last_h = hs.count;
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }
}
