//! Request tracing: hierarchical spans collected into a bounded ring of
//! completed traces, plus the slow-query capture ring.
//!
//! A [`Trace`] is one request's execution tree: [`TraceSpan`]s with
//! parent links, per-span wall-clock offsets/durations relative to the
//! trace start, and free-form [`SpanEvent`]s (middleware verdicts, access
//! paths). Traces are *built* single-threaded by the request handler via
//! [`ActiveTrace`] — no lock, no atomics — and *published* into the
//! shared [`TraceStore`] ring with one short mutex hold at the end, so
//! concurrent sessions never contend mid-request and a reader can never
//! observe a torn (half-built) trace.
//!
//! The same `set_enabled` discipline as the metrics registry applies:
//! [`ActiveTrace::start`] is one relaxed load when tracing is disabled —
//! no clock read, no allocation. The [`SlowQueryStore`] is armed
//! independently by a latency threshold; requests that exceed it capture
//! their rendered explain report and trace into its own bounded ring.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::{lock, unix_micros};

/// Capacity of the completed-trace ring; older traces fall off.
pub const TRACE_STORE_CAPACITY: usize = 128;

/// Capacity of the slow-query ring; older records fall off.
pub const SLOW_QUERY_CAPACITY: usize = 64;

/// A process-unique trace identity, propagated over the wire so a client
/// can retrieve "its" trace from the server afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// A fresh id: a splitmix64 hash over a wall-clock-seeded counter —
    /// unique within a process and overwhelmingly unlikely to collide
    /// across client and server processes.
    pub fn generate() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        // audit: ordering — uniqueness needs only atomicity of the
        // increment, not ordering against any other memory.
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut z = unix_micros()
            .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        TraceId(z ^ (z >> 31))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A span identity, unique within its trace (dense, allocation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u32);

/// A point annotation inside a span (a middleware verdict, an access
/// path, a gate outcome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Nanoseconds since the trace started.
    pub at_nanos: u64,
    /// Free-form message, small by convention.
    pub message: String,
}

/// One completed span: a named phase of the request with its position in
/// the span tree and its measured duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Identity within the trace.
    pub id: SpanId,
    /// Enclosing span, `None` for a root.
    pub parent: Option<SpanId>,
    /// Phase name (`request`, `middleware`, `gate`, `store.scan`, ...).
    pub name: String,
    /// Start offset from the trace start, nanoseconds.
    pub start_nanos: u64,
    /// Measured duration, nanoseconds.
    pub duration_nanos: u64,
    /// Point annotations recorded while the span was open.
    pub events: Vec<SpanEvent>,
}

/// One completed request trace: the span tree plus identity and totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Trace identity (client-originated or server-generated).
    pub id: TraceId,
    /// What ran — the request verb or call site label.
    pub label: String,
    /// Free-form context (session id, peer address, plan summary).
    pub detail: String,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub started_unix_micros: u64,
    /// Whole-trace duration, nanoseconds.
    pub total_nanos: u64,
    /// Spans in begin order (parents always precede their children).
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// The first span named `name`, if any.
    pub fn span(&self, name: &str) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Indented multi-line rendering of the span tree with durations and
    /// events — what operators read.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "trace {} {} ({}us total)",
            self.id,
            self.label,
            self.total_nanos / 1_000
        );
        if !self.detail.is_empty() {
            let _ = write!(out, " [{}]", self.detail);
        }
        out.push('\n');
        for s in &self.spans {
            let depth = self.depth_of(s);
            for _ in 0..depth + 1 {
                out.push_str("  ");
            }
            let _ = writeln!(
                out,
                "{} +{}us {}us",
                s.name,
                s.start_nanos / 1_000,
                s.duration_nanos / 1_000
            );
            for e in &s.events {
                for _ in 0..depth + 2 {
                    out.push_str("  ");
                }
                let _ = writeln!(out, "* +{}us {}", e.at_nanos / 1_000, e.message);
            }
        }
        out
    }

    fn depth_of(&self, span: &TraceSpan) -> usize {
        let mut depth = 0;
        let mut cur = span.parent;
        while let Some(pid) = cur {
            depth += 1;
            cur = self
                .spans
                .iter()
                .find(|s| s.id == pid)
                .and_then(|s| s.parent);
        }
        depth
    }
}

impl std::fmt::Display for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.render_text().trim_end())
    }
}

/// A trace being built by one request handler. Plain owned data — the
/// builder is handed down the call stack by `&mut`, so recording a span
/// or event is a `Vec` push with no synchronization; the shared ring is
/// only touched once, in [`ActiveTrace::finish`].
#[derive(Debug)]
pub struct ActiveTrace {
    id: TraceId,
    label: String,
    detail: String,
    started_unix_micros: u64,
    t0: Instant,
    spans: Vec<TraceSpan>,
    /// Stack of indices into `spans` for the currently open spans.
    open: Vec<usize>,
    next_span: u32,
}

impl ActiveTrace {
    /// Start a trace if `store` has tracing enabled — one relaxed load
    /// and `None` (no clock read, no allocation) otherwise. Pass the
    /// propagated `id` when the caller carried one.
    pub fn start(
        store: &TraceStore,
        id: Option<TraceId>,
        label: impl Into<String>,
    ) -> Option<ActiveTrace> {
        if !store.enabled() {
            return None;
        }
        Some(ActiveTrace::start_detached(
            id.unwrap_or_else(TraceId::generate),
            label,
        ))
    }

    /// Start unconditionally, without consulting any store — for callers
    /// that need the measurements regardless (e.g. a slow-query capture
    /// armed while tracing itself is off). The caller decides at
    /// [`ActiveTrace::finish`] time whether the trace is published.
    pub fn start_detached(id: TraceId, label: impl Into<String>) -> ActiveTrace {
        ActiveTrace {
            id,
            label: label.into(),
            detail: String::new(),
            started_unix_micros: unix_micros(),
            t0: Instant::now(),
            spans: Vec::new(),
            open: Vec::new(),
            next_span: 0,
        }
    }

    /// The trace identity.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Nanoseconds since the trace started.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Attach free-form context to the whole trace.
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        self.detail = detail.into();
    }

    /// Open a span named `name`, child of the innermost open span (root
    /// if none). Close it with [`ActiveTrace::end`]; anything left open
    /// is closed by `finish`.
    pub fn begin(&mut self, name: impl Into<String>) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        let parent = self.open.last().map(|&i| self.spans[i].id);
        self.spans.push(TraceSpan {
            id,
            parent,
            name: name.into(),
            start_nanos: self.elapsed_nanos(),
            duration_nanos: 0,
            events: Vec::new(),
        });
        self.open.push(self.spans.len() - 1);
        id
    }

    /// Close span `id`, stamping its duration. Forgiving about nesting:
    /// any still-open span begun after `id` (a descendant the caller
    /// forgot) is closed at the same instant.
    pub fn end(&mut self, id: SpanId) {
        let now = self.elapsed_nanos();
        while let Some(&i) = self.open.last() {
            let done = self.spans[i].id == id;
            let s = &mut self.spans[i];
            s.duration_nanos = now.saturating_sub(s.start_nanos);
            self.open.pop();
            if done {
                return;
            }
        }
    }

    /// Record a point annotation on the innermost open span (a zero-width
    /// root span is created if nothing is open yet).
    pub fn event(&mut self, message: impl Into<String>) {
        if self.open.is_empty() {
            self.begin(self.label.clone());
        }
        let at_nanos = self.elapsed_nanos();
        // audit: allow(panic) — the is_empty branch above begins a root
        // span, so the open stack is non-empty here.
        let i = *self.open.last().expect("ensured an open span above");
        self.spans[i].events.push(SpanEvent {
            at_nanos,
            message: message.into(),
        });
    }

    /// Seal the builder into an immutable [`Trace`]: every still-open
    /// span is closed at this instant (a finished trace can never be
    /// torn), and the total is stamped.
    pub fn into_trace(mut self) -> Trace {
        let total = self.elapsed_nanos();
        while let Some(i) = self.open.pop() {
            let s = &mut self.spans[i];
            s.duration_nanos = total.saturating_sub(s.start_nanos);
        }
        Trace {
            id: self.id,
            label: self.label,
            detail: self.detail,
            started_unix_micros: self.started_unix_micros,
            total_nanos: total,
            spans: self.spans,
        }
    }

    /// Seal and publish into `store` (a no-op publish when the store is
    /// disabled), returning the completed trace either way so the caller
    /// can reuse it (e.g. for a slow-query record).
    pub fn finish(self, store: &TraceStore) -> Trace {
        let trace = self.into_trace();
        store.push(trace.clone());
        trace
    }
}

/// The bounded ring of completed traces. Disabled by default — tracing
/// is opt-in; when disabled, [`ActiveTrace::start`] is one relaxed load
/// and [`TraceStore::push`] drops the trace.
#[derive(Debug)]
pub struct TraceStore {
    enabled: std::sync::atomic::AtomicBool,
    capacity: usize,
    ring: Mutex<VecDeque<Trace>>,
    recorded: AtomicU64,
}

impl Default for TraceStore {
    fn default() -> TraceStore {
        TraceStore::with_capacity(TRACE_STORE_CAPACITY)
    }
}

impl TraceStore {
    /// A disabled store retaining at most `capacity` completed traces.
    pub fn with_capacity(capacity: usize) -> TraceStore {
        TraceStore {
            enabled: std::sync::atomic::AtomicBool::new(false),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
        }
    }

    /// Whether tracing is on (one relaxed load).
    // audit: ordering — hot-path gate; a trace racing the flip being
    // recorded or dropped either way is acceptable.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip tracing on or off. Completed traces already in the ring are
    /// kept; new ones simply stop (or resume) being recorded.
    // audit: ordering — gates only whether traces are pushed; the ring
    // itself is mutex-protected, so the flag carries no publication.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total traces ever published (minus the ring length = fallen off).
    // audit: ordering — statistics read; staleness is fine.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Publish a completed trace (dropped when disabled). One short lock
    /// hold; older traces fall off past the capacity.
    pub fn push(&self, trace: Trace) {
        if !self.enabled() {
            return;
        }
        // audit: ordering — the counter is a statistic; the trace itself
        // is published under the ring mutex right below.
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut g = lock(&self.ring);
        if g.len() == self.capacity {
            g.pop_front();
        }
        g.push_back(trace);
    }

    /// Every retained trace, oldest first.
    pub fn snapshot(&self) -> Vec<Trace> {
        lock(&self.ring).iter().cloned().collect()
    }

    /// The `limit` most recent traces, newest first.
    pub fn recent(&self, limit: usize) -> Vec<Trace> {
        lock(&self.ring).iter().rev().take(limit).cloned().collect()
    }

    /// The retained trace with identity `id`, if it has not fallen off.
    pub fn find(&self, id: TraceId) -> Option<Trace> {
        lock(&self.ring).iter().rev().find(|t| t.id == id).cloned()
    }
}

/// One slow request: its trace, the rendered explain report, and the
/// threshold it tripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryRecord {
    /// The request's trace (empty span list when tracing was disabled
    /// and only the slow-query threshold was armed).
    pub trace: Trace,
    /// Request verb or call-site label.
    pub verb: String,
    /// Summary of the plan that ran.
    pub plan: String,
    /// The rendered explain report (access path, pruning, rows, stage
    /// timings) measured from this execution.
    pub explain: String,
    /// Whole-request duration, nanoseconds.
    pub total_nanos: u64,
    /// The armed threshold at capture time, nanoseconds.
    pub threshold_nanos: u64,
    /// Wall-clock capture time, microseconds since the Unix epoch.
    pub at_unix_micros: u64,
}

impl SlowQueryRecord {
    /// Multi-line operator rendering: headline, explain report, trace.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SLOW {} {}us (threshold {}us) plan {}",
            self.verb,
            self.total_nanos / 1_000,
            self.threshold_nanos / 1_000,
            self.plan
        );
        for line in self.explain.lines() {
            let _ = writeln!(out, "  {line}");
        }
        for line in self.trace.render_text().lines() {
            let _ = writeln!(out, "  {line}");
        }
        out
    }
}

impl std::fmt::Display for SlowQueryRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.render_text().trim_end())
    }
}

/// The bounded slow-query ring, armed by a latency threshold.
/// Unarmed (no threshold) by default; arming is independent of tracing —
/// a slow request captured while tracing is off carries a span-less
/// trace stub.
#[derive(Debug)]
pub struct SlowQueryStore {
    /// Threshold in nanoseconds; `u64::MAX` = unarmed.
    threshold_nanos: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SlowQueryRecord>>,
}

impl Default for SlowQueryStore {
    fn default() -> SlowQueryStore {
        SlowQueryStore::with_capacity(SLOW_QUERY_CAPACITY)
    }
}

impl SlowQueryStore {
    /// An unarmed store retaining at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> SlowQueryStore {
        SlowQueryStore {
            threshold_nanos: AtomicU64::new(u64::MAX),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Arm with `threshold` (requests strictly slower are captured), or
    /// disarm with `None`.
    pub fn set_threshold(&self, threshold: Option<Duration>) {
        let nanos = threshold
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(u64::MAX);
        // audit: ordering — the threshold is a standalone tuning knob;
        // in-flight queries may use the old value for one request.
        self.threshold_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The armed threshold in nanoseconds, `None` when unarmed.
    // audit: ordering — reads the standalone tuning knob; no ordering
    // with the slow-query ring is needed (it has its own mutex).
    pub fn threshold_nanos(&self) -> Option<u64> {
        match self.threshold_nanos.load(Ordering::Relaxed) {
            u64::MAX => None,
            n => Some(n),
        }
    }

    /// Whether a threshold is armed (one relaxed load — the hot-path
    /// gate).
    // audit: ordering — hot-path gate; racing an arm/disarm merely
    // captures or skips one borderline query.
    pub fn armed(&self) -> bool {
        self.threshold_nanos.load(Ordering::Relaxed) != u64::MAX
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a captured record (the caller already compared against the
    /// threshold); older records fall off past the capacity.
    pub fn record(&self, record: SlowQueryRecord) {
        let mut g = lock(&self.ring);
        if g.len() == self.capacity {
            g.pop_front();
        }
        g.push_back(record);
    }

    /// Every retained record, oldest first.
    pub fn snapshot(&self) -> Vec<SlowQueryRecord> {
        lock(&self.ring).iter().cloned().collect()
    }

    /// The `limit` most recent records, newest first.
    pub fn recent(&self, limit: usize) -> Vec<SlowQueryRecord> {
        lock(&self.ring).iter().rev().take(limit).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_distinct() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a, b);
        assert_eq!(format!("{}", TraceId(0xab)).len(), 16);
    }

    #[test]
    fn disabled_store_starts_nothing_and_drops_pushes() {
        let store = TraceStore::default();
        assert!(!store.enabled());
        assert!(ActiveTrace::start(&store, None, "x").is_none());
        store.push(ActiveTrace::start_detached(TraceId::generate(), "x").into_trace());
        assert!(store.snapshot().is_empty());
    }

    #[test]
    fn spans_nest_and_events_attach() {
        let store = TraceStore::default();
        store.set_enabled(true);
        let mut tr = ActiveTrace::start(&store, Some(TraceId(7)), "request").unwrap();
        let root = tr.begin("request");
        let mw = tr.begin("middleware");
        tr.event("auth: ok");
        tr.end(mw);
        let ex = tr.begin("execute");
        let scan = tr.begin("store.scan");
        tr.end(scan);
        tr.end(ex);
        tr.end(root);
        let trace = tr.finish(&store);
        assert_eq!(trace.id, TraceId(7));
        assert_eq!(trace.spans.len(), 4);
        let mw = trace.span("middleware").unwrap();
        assert_eq!(mw.parent, Some(trace.span("request").unwrap().id));
        assert_eq!(mw.events.len(), 1);
        let scan = trace.span("store.scan").unwrap();
        assert_eq!(scan.parent, Some(trace.span("execute").unwrap().id));
        assert_eq!(store.find(TraceId(7)).unwrap(), trace);
        let text = trace.render_text();
        assert!(text.contains("middleware"));
        assert!(text.contains("auth: ok"));
    }

    #[test]
    fn finish_closes_leftover_spans() {
        let mut tr = ActiveTrace::start_detached(TraceId::generate(), "r");
        let _a = tr.begin("outer");
        let _b = tr.begin("inner");
        std::thread::sleep(Duration::from_millis(1));
        let trace = tr.into_trace();
        for s in &trace.spans {
            assert!(s.duration_nanos > 0, "leftover span {} not closed", s.name);
            assert!(s.start_nanos + s.duration_nanos <= trace.total_nanos);
        }
    }

    #[test]
    fn out_of_order_end_closes_descendants() {
        let mut tr = ActiveTrace::start_detached(TraceId::generate(), "r");
        let outer = tr.begin("outer");
        let _inner = tr.begin("inner");
        tr.end(outer); // forgot to end inner first
        let trace = tr.into_trace();
        assert!(trace.spans.iter().all(|s| s.duration_nanos
            <= trace
                .span("outer")
                .map(|o| o.start_nanos + o.duration_nanos)
                .unwrap_or(u64::MAX)));
    }

    #[test]
    fn ring_is_bounded_and_recent_is_newest_first() {
        let store = TraceStore::with_capacity(4);
        store.set_enabled(true);
        for i in 0..10u64 {
            store.push(ActiveTrace::start_detached(TraceId(i), "t").into_trace());
        }
        let all = store.snapshot();
        assert_eq!(all.len(), 4);
        assert_eq!(all.first().unwrap().id, TraceId(6));
        assert_eq!(store.recorded(), 10);
        let recent = store.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].id, TraceId(9));
        assert!(store.find(TraceId(0)).is_none(), "fell off the ring");
    }

    #[test]
    fn slow_store_arms_and_bounds() {
        let slow = SlowQueryStore::with_capacity(2);
        assert!(!slow.armed());
        assert_eq!(slow.threshold_nanos(), None);
        slow.set_threshold(Some(Duration::from_micros(5)));
        assert!(slow.armed());
        assert_eq!(slow.threshold_nanos(), Some(5_000));
        for i in 0..3u64 {
            slow.record(SlowQueryRecord {
                trace: ActiveTrace::start_detached(TraceId(i), "q").into_trace(),
                verb: "query".into(),
                plan: format!("plan{i}"),
                explain: "access=FullScan".into(),
                total_nanos: 9_000,
                threshold_nanos: 5_000,
                at_unix_micros: unix_micros(),
            });
        }
        assert_eq!(slow.snapshot().len(), 2);
        assert_eq!(slow.recent(1)[0].plan, "plan2");
        let text = slow.recent(1)[0].render_text();
        assert!(text.contains("SLOW query"));
        assert!(text.contains("access=FullScan"));
        slow.set_threshold(None);
        assert!(!slow.armed());
    }
}
