//! Concurrency properties of the trace and slow-query rings: many
//! threads building nested traces into one shared [`TraceStore`] must
//! never tear a trace, leak past the ring capacity, or publish a span
//! whose parent is missing or whose interval escapes its parent's.

use flor_obs::{ActiveTrace, SlowQueryRecord, SlowQueryStore, SpanId, Trace, TraceId, TraceStore};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// One thread's trace-building script: for each entry, `depth` nested
/// spans are opened, `events` events fired at the innermost, then all
/// spans closed (half of them deliberately left for `finish` to close,
/// exercising the leftover-span path).
#[derive(Debug, Clone)]
struct Script {
    traces: Vec<(u8, u8, bool)>, // (depth, events, leave_open)
}

fn script_strategy() -> impl Strategy<Value = Script> {
    proptest::collection::vec((0u8..5, 0u8..3, any::<bool>()), 1..6)
        .prop_map(|traces| Script { traces })
}

fn run_script(store: &TraceStore, seed: u64, script: &Script) {
    for (n, &(depth, events, leave_open)) in script.traces.iter().enumerate() {
        let id = TraceId(seed.wrapping_mul(1000).wrapping_add(n as u64));
        let Some(mut tr) = ActiveTrace::start(store, Some(id), format!("t{seed}")) else {
            return;
        };
        let mut open = Vec::new();
        for d in 0..depth {
            open.push(tr.begin(format!("span{d}")));
        }
        for e in 0..events {
            tr.event(format!("ev{e}"));
        }
        if !leave_open {
            while let Some(id) = open.pop() {
                tr.end(id);
            }
        }
        tr.finish(store);
    }
}

/// Every published trace is well-formed: unique span ids, parents
/// present, child intervals inside the parent's, nothing open.
fn check_trace(trace: &Trace) {
    let mut by_id: HashMap<SpanId, &flor_obs::TraceSpan> = HashMap::new();
    for span in &trace.spans {
        assert!(
            by_id.insert(span.id, span).is_none(),
            "duplicate span id {:?} in trace {}",
            span.id,
            trace.id
        );
    }
    for span in &trace.spans {
        let end = span.start_nanos + span.duration_nanos;
        assert!(
            end <= trace.total_nanos,
            "span `{}` [{}..{}] escapes trace total {}",
            span.name,
            span.start_nanos,
            end,
            trace.total_nanos
        );
        if let Some(parent) = span.parent {
            let p = by_id.get(&parent).unwrap_or_else(|| {
                panic!("span `{}` orphaned: parent {parent:?} missing", span.name)
            });
            assert!(
                p.start_nanos <= span.start_nanos && end <= p.start_nanos + p.duration_nanos,
                "span `{}` [{}..{}] escapes parent `{}` [{}..{}]",
                span.name,
                span.start_nanos,
                end,
                p.name,
                p.start_nanos,
                p.start_nanos + p.duration_nanos
            );
        }
        for ev in &span.events {
            assert!(
                span.start_nanos <= ev.at_nanos && ev.at_nanos <= trace.total_nanos,
                "event at {} outside span `{}`",
                ev.at_nanos,
                span.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_traces_stay_bounded_and_untorn(
        scripts in proptest::collection::vec(script_strategy(), 2..5),
        capacity in 1usize..8,
    ) {
        let store = Arc::new(TraceStore::with_capacity(capacity));
        store.set_enabled(true);
        let expected: u64 = scripts.iter().map(|s| s.traces.len() as u64).sum();

        let handles: Vec<_> = scripts
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, script)| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || run_script(&store, i as u64, &script))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        prop_assert_eq!(store.recorded(), expected);
        let snap = store.snapshot();
        prop_assert!(snap.len() <= capacity);
        prop_assert_eq!(snap.len(), (expected as usize).min(capacity));
        for trace in &snap {
            check_trace(trace);
        }
        // recent() is the same window, newest first.
        let recent = store.recent(capacity);
        prop_assert_eq!(recent.len(), snap.len());
        for (a, b) in recent.iter().zip(snap.iter().rev()) {
            prop_assert_eq!(a.id, b.id);
        }
    }

    #[test]
    fn concurrent_slow_queries_stay_bounded(
        per_thread in proptest::collection::vec(1usize..8, 2..5),
        capacity in 1usize..6,
    ) {
        let store = Arc::new(SlowQueryStore::with_capacity(capacity));
        store.set_threshold(Some(Duration::ZERO));
        let total: usize = per_thread.iter().sum();

        let handles: Vec<_> = per_thread
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for k in 0..n {
                        let tr = ActiveTrace::start_detached(
                            TraceId((i * 100 + k) as u64),
                            "slow",
                        );
                        store.record(SlowQueryRecord {
                            trace: tr.into_trace(),
                            verb: "query".into(),
                            plan: format!("[{i}:{k}]"),
                            explain: String::new(),
                            total_nanos: 1,
                            threshold_nanos: 0,
                            at_unix_micros: 0,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let snap = store.snapshot();
        prop_assert_eq!(snap.len(), total.min(capacity));
        for rec in &snap {
            check_trace(&rec.trace);
            prop_assert_eq!(rec.verb.as_str(), "query");
        }
    }
}

/// Nesting built across a realistic parent/child call structure (not
/// proptest-driven): the exact shape request → middleware/gate/execute
/// the server produces, validated for containment.
#[test]
fn nested_request_shape_is_contained() {
    let store = TraceStore::with_capacity(4);
    store.set_enabled(true);
    let mut tr = ActiveTrace::start(&store, None, "query").expect("enabled");
    let root = tr.begin("request");
    let mw = tr.begin("middleware");
    tr.event("auth: ok");
    tr.event("rate-limit: ok");
    tr.end(mw);
    let gate = tr.begin("gate");
    tr.event("admitted");
    tr.end(gate);
    let exec = tr.begin("execute");
    let scan = tr.begin("store.scan");
    tr.end(scan);
    tr.end(exec);
    tr.end(root);
    let trace = tr.finish(&store);

    check_trace(&trace);
    assert_eq!(trace.spans.len(), 5);
    let root_id = trace.span("request").unwrap().id;
    for name in ["middleware", "gate", "execute"] {
        assert_eq!(trace.span(name).unwrap().parent, Some(root_id));
    }
    assert_eq!(
        trace.span("store.scan").unwrap().parent,
        Some(trace.span("execute").unwrap().id)
    );
    assert!(store.find(trace.id).is_some());
}
