//! Table schemas, including the six-table FlorDB data model of paper Fig. 1.

use flor_df::{DataType, Value};
use std::fmt;

/// Column type for schema validation. `Any` columns accept every value
/// (the `logs.value` column stores heterogeneous logged values as text plus
/// a type tag, so the engine must tolerate mixed types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Str,
    /// Boolean.
    Bool,
    /// Accepts any value type.
    Any,
}

impl ColType {
    /// Whether `v` conforms to this column type (null always allowed).
    pub fn accepts(&self, v: &Value) -> bool {
        matches!(
            (self, v.data_type()),
            (_, DataType::Null)
                | (ColType::Any, _)
                | (ColType::Int, DataType::Int)
                | (ColType::Float, DataType::Float | DataType::Int)
                | (ColType::Str, DataType::Str)
                | (ColType::Bool, DataType::Bool)
        )
    }
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColType::Int => "int",
            ColType::Float => "float",
            ColType::Str => "str",
            ColType::Bool => "bool",
            ColType::Any => "any",
        };
        f.write_str(s)
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColType,
    /// Whether a secondary hash index is maintained on this column.
    pub indexed: bool,
}

impl ColumnDef {
    /// Unindexed column.
    pub fn new(name: &str, ty: ColType) -> Self {
        ColumnDef {
            name: name.to_string(),
            ty,
            indexed: false,
        }
    }

    /// Indexed column.
    pub fn indexed(name: &str, ty: ColType) -> Self {
        ColumnDef {
            name: name.to_string(),
            ty,
            indexed: true,
        }
    }
}

/// A declared latest-wins policy: the store is append-only, so "updates"
/// to these tables land as fresh rows and only the newest row per key
/// tuple is semantically live. Segment compaction uses the declaration to
/// drop superseded rows; every consumer of such a table must already fold
/// by this rule (the `jobs` recovery fold, the pivot's last-write-wins
/// upserts), so the fold result is identical before and after compaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatestWins {
    /// Key columns: one live row per distinct key tuple.
    pub key: Vec<String>,
    /// Ordering column deciding the winner (max wins). `None` falls back
    /// to insertion (global row id) order, newest row wins. With an
    /// `ord` column, a tie keeps the *oldest* row — the `recover_records`
    /// fold convention — but writers should keep `(key, ord)` pairs
    /// unique (the jobs runner's `seq` is strictly monotonic per job):
    /// consumers that retain *all* rows at the max `ord` (a
    /// `LatestState`-backed listing) would otherwise observe a tied
    /// duplicate disappear when compaction drops it.
    pub ord: Option<String>,
    /// Columns written only on a key's *first* row and carried forward by
    /// the fold (`jobs.payload`): when the winner's own cell is empty,
    /// compaction retains the earliest row holding a non-empty value so
    /// the fold keeps finding it.
    pub carry_first: Vec<String>,
}

impl LatestWins {
    /// Declare a latest-wins policy keyed by `key`, with the winner
    /// decided by the maximum of `ord` (insertion order when `None`).
    pub fn new(key: &[&str], ord: Option<&str>) -> LatestWins {
        LatestWins {
            key: key.iter().map(|s| s.to_string()).collect(),
            ord: ord.map(str::to_string),
            carry_first: Vec::new(),
        }
    }

    /// Add columns whose first non-empty value must survive compaction
    /// even when a later row wins.
    pub fn carry_first(mut self, cols: &[&str]) -> LatestWins {
        self.carry_first = cols.iter().map(|s| s.to_string()).collect();
        self
    }
}

/// A declared clustering column: segment compaction sorts the rows of
/// each rewritten segment by this column (ties broken by global row id,
/// so the sort is stable with respect to insertion order). Sorted
/// segments get **disjoint zone maps** on the cluster column and range
/// scans binary-search into them instead of linear-filtering.
///
/// Clustering reorders rows only *inside* compacted segments; scans of
/// a clustered table yield rows in clustered order, which consumers that
/// fold by key (or re-sort) are insensitive to. Tables whose consumers
/// depend on raw insertion order across the whole history should not
/// declare one... unless the cluster column itself is the insertion
/// clock (`logs.tstamp`), in which case clustered order refines
/// insertion order rather than fighting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterBy {
    /// The column rewritten segments are sorted by.
    pub column: String,
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Declared latest-wins policy, if any — what lets segment compaction
    /// drop superseded rows (see [`LatestWins`]).
    pub latest_wins: Option<LatestWins>,
    /// Declared clustering column, if any — segment compaction sorts
    /// rewritten segments by it (see [`ClusterBy`]).
    pub cluster_by: Option<ClusterBy>,
}

impl TableSchema {
    /// Build a schema.
    pub fn new(name: &str, columns: Vec<ColumnDef>) -> Self {
        TableSchema {
            name: name.to_string(),
            columns,
            latest_wins: None,
            cluster_by: None,
        }
    }

    /// Attach a latest-wins policy (builder style).
    pub fn with_latest_wins(mut self, policy: LatestWins) -> Self {
        self.latest_wins = Some(policy);
        self
    }

    /// Declare a clustering column (builder style).
    pub fn with_cluster_by(mut self, column: &str) -> Self {
        self.cluster_by = Some(ClusterBy {
            column: column.to_string(),
        });
        self
    }

    /// Position of a column by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column names in order.
    pub fn col_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Validate a row against arity and column types.
    pub fn validate(&self, row: &[Value]) -> Result<(), String> {
        if row.len() != self.columns.len() {
            return Err(format!(
                "table {}: expected {} columns, got {}",
                self.name,
                self.columns.len(),
                row.len()
            ));
        }
        for (col, v) in self.columns.iter().zip(row) {
            if !col.ty.accepts(v) {
                return Err(format!(
                    "table {}: column {} expects {}, got {} ({v})",
                    self.name,
                    col.name,
                    col.ty,
                    v.data_type()
                ));
            }
        }
        Ok(())
    }
}

/// The FlorDB schema from paper Fig. 1, plus the `jobs` control-plane
/// table. "Basic tables denoted in white; virtual tables in gray" — we
/// materialise all six; the gray ones (`ts2vid`, `git`, `build_deps`) are
/// populated by the kernel rather than by user log statements. The `jobs`
/// table records background-job state transitions (see `flor-jobs`).
pub fn flor_schema() -> Vec<TableSchema> {
    vec![
        // logs(projid, tstamp, filename, ctx_id, value_name, value, value_type)
        //
        // Deliberately NOT latest-wins, even though the pivot upserts
        // last-write-wins per (coordinates, value_name): two consumers
        // depend on the raw rows' insertion order and multiplicity.
        // Hindsight replay (`load_record`) reconstructs a run's log
        // sequence row by row — duplicates included — and the pivot
        // orders its rows and value columns by *first* appearance, which
        // a superseded row may own. Compaction therefore only merges
        // `logs` segments; it never drops rows here.
        //
        // It *is* clustered by tstamp: the logical clock is the primary
        // range-scan axis (time travel, windows), and the (tstamp, rid)
        // sort compaction applies refines insertion order — within one
        // tstamp rows keep their relative order, so replay and the pivot
        // see the same per-timestep sequences.
        TableSchema::new(
            "logs",
            vec![
                ColumnDef::indexed("projid", ColType::Str),
                ColumnDef::indexed("tstamp", ColType::Int),
                ColumnDef::indexed("filename", ColType::Str),
                ColumnDef::indexed("ctx_id", ColType::Int),
                ColumnDef::indexed("value_name", ColType::Str),
                ColumnDef::new("value", ColType::Str),
                ColumnDef::new("value_type", ColType::Int),
            ],
        )
        .with_cluster_by("tstamp"),
        // loops(projid, tstamp, filename, ctx_id, parent_ctx_id, loop_name,
        //       loop_iteration, iteration_value)
        TableSchema::new(
            "loops",
            vec![
                ColumnDef::indexed("projid", ColType::Str),
                ColumnDef::indexed("tstamp", ColType::Int),
                ColumnDef::new("filename", ColType::Str),
                ColumnDef::indexed("ctx_id", ColType::Int),
                ColumnDef::new("parent_ctx_id", ColType::Int),
                ColumnDef::new("loop_name", ColType::Str),
                ColumnDef::new("loop_iteration", ColType::Int),
                ColumnDef::new("iteration_value", ColType::Str),
            ],
        ),
        // ts2vid(projid, ts_start, ts_end, vid, root_target)
        TableSchema::new(
            "ts2vid",
            vec![
                ColumnDef::indexed("projid", ColType::Str),
                ColumnDef::new("ts_start", ColType::Int),
                ColumnDef::new("ts_end", ColType::Int),
                ColumnDef::indexed("vid", ColType::Str),
                ColumnDef::new("root_target", ColType::Str),
            ],
        ),
        // git(vid, filename, parent_vid, contents)
        TableSchema::new(
            "git",
            vec![
                ColumnDef::indexed("vid", ColType::Str),
                ColumnDef::new("filename", ColType::Str),
                ColumnDef::new("parent_vid", ColType::Str),
                ColumnDef::new("contents", ColType::Str),
            ],
        ),
        // obj_store(projid, tstamp, filename, ctx_id, value_name, contents)
        TableSchema::new(
            "obj_store",
            vec![
                ColumnDef::indexed("projid", ColType::Str),
                ColumnDef::indexed("tstamp", ColType::Int),
                ColumnDef::new("filename", ColType::Str),
                ColumnDef::indexed("ctx_id", ColType::Int),
                ColumnDef::indexed("value_name", ColType::Str),
                ColumnDef::new("contents", ColType::Str),
            ],
        ),
        // build_deps(vid, target, deps, cmds, cached) — deps/cmds are text[]
        // in the paper; we store them newline-joined.
        TableSchema::new(
            "build_deps",
            vec![
                ColumnDef::indexed("vid", ColType::Str),
                ColumnDef::indexed("target", ColType::Str),
                ColumnDef::new("deps", ColType::Str),
                ColumnDef::new("cmds", ColType::Str),
                ColumnDef::new("cached", ColType::Bool),
            ],
        ),
        // jobs(job_id, seq, kind, priority, state, payload, units_total,
        //      units_done, done_keys, detail) — the flor-jobs control
        // plane. Not a Fig. 1 table: the store has no in-place update, so
        // job state transitions are append-only rows and the *latest* row
        // per job_id (max seq) is the job's current state — the same
        // latest-wins discipline `flor.utils.latest` applies to log rows.
        TableSchema::new(
            "jobs",
            vec![
                ColumnDef::indexed("job_id", ColType::Int),
                ColumnDef::new("seq", ColType::Int),
                ColumnDef::new("kind", ColType::Str),
                ColumnDef::new("priority", ColType::Int),
                ColumnDef::new("state", ColType::Str),
                ColumnDef::new("payload", ColType::Str),
                ColumnDef::new("units_total", ColType::Int),
                ColumnDef::new("units_done", ColType::Int),
                ColumnDef::new("done_keys", ColType::Str),
                ColumnDef::new("detail", ColType::Str),
            ],
        )
        // One live row per job (max seq); the payload lands only on the
        // first transition, so compaction must keep that row around until
        // a winning row carries the payload itself.
        .with_latest_wins(LatestWins::new(&["job_id"], Some("seq")).carry_first(&["payload"])),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flor_schema_has_fig1_tables_plus_jobs() {
        let s = flor_schema();
        let names: Vec<&str> = s.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "logs",
                "loops",
                "ts2vid",
                "git",
                "obj_store",
                "build_deps",
                "jobs"
            ]
        );
    }

    #[test]
    fn logs_schema_matches_fig1() {
        let s = flor_schema();
        let logs = &s[0];
        assert_eq!(
            logs.col_names(),
            vec![
                "projid",
                "tstamp",
                "filename",
                "ctx_id",
                "value_name",
                "value",
                "value_type"
            ]
        );
    }

    #[test]
    fn validate_checks_arity() {
        let t = TableSchema::new("t", vec![ColumnDef::new("a", ColType::Int)]);
        assert!(t.validate(&[Value::Int(1)]).is_ok());
        assert!(t.validate(&[]).is_err());
        assert!(t.validate(&[Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn validate_checks_types() {
        let t = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("i", ColType::Int),
                ColumnDef::new("s", ColType::Str),
                ColumnDef::new("any", ColType::Any),
            ],
        );
        assert!(t
            .validate(&[Value::Int(1), Value::Str("x".into()), Value::Float(1.5)])
            .is_ok());
        assert!(t
            .validate(&[Value::Str("no".into()), Value::Str("x".into()), Value::Null])
            .is_err());
    }

    #[test]
    fn nulls_always_accepted() {
        let t = TableSchema::new("t", vec![ColumnDef::new("i", ColType::Int)]);
        assert!(t.validate(&[Value::Null]).is_ok());
    }

    #[test]
    fn float_accepts_int_widening() {
        assert!(ColType::Float.accepts(&Value::Int(3)));
        assert!(!ColType::Int.accepts(&Value::Float(3.0)));
    }

    #[test]
    fn col_index_lookup() {
        let t = &flor_schema()[0];
        assert_eq!(t.col_index("value_name"), Some(4));
        assert_eq!(t.col_index("nope"), None);
    }
}
