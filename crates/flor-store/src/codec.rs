//! Binary encoding of values, rows and WAL records.
//!
//! Length-prefixed, self-describing, CRC-protected frames. The format is
//! append-only: a crash can only truncate the tail, never corrupt committed
//! prefixes — the recovery path in [`crate::wal`] relies on this.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use flor_df::Value;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes mid-frame (a truncated tail).
    Truncated,
    /// Unknown type tag.
    BadTag(u8),
    /// Frame checksum mismatch.
    BadChecksum,
    /// Payload is structurally invalid.
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::BadTag(t) => write!(f, "bad type tag {t}"),
            CodecError::BadChecksum => write!(f, "frame checksum mismatch"),
            CodecError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;

/// Append a value's encoding to `buf`.
pub fn encode_value(v: &Value, buf: &mut BytesMut) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64(*f);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
    }
}

/// Decode one value from the front of `buf`.
pub fn decode_value(buf: &mut Bytes) -> Result<Value, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    match buf.get_u8() {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => {
            if buf.remaining() < 1 {
                return Err(CodecError::Truncated);
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        TAG_INT => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Ok(Value::Int(buf.get_i64()))
        }
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Ok(Value::Float(buf.get_f64()))
        }
        TAG_STR => {
            if buf.remaining() < 4 {
                return Err(CodecError::Truncated);
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(CodecError::Truncated);
            }
            let raw = buf.copy_to_bytes(len);
            let s = std::str::from_utf8(&raw).map_err(|e| CodecError::Malformed(e.to_string()))?;
            Ok(Value::Str(s.into()))
        }
        t => Err(CodecError::BadTag(t)),
    }
}

/// Append a row (value-count-prefixed) to `buf`.
pub fn encode_row(row: &[Value], buf: &mut BytesMut) {
    buf.put_u16(row.len() as u16);
    for v in row {
        encode_value(v, buf);
    }
}

/// Decode one row from `buf`.
pub fn decode_row(buf: &mut Bytes) -> Result<Vec<Value>, CodecError> {
    if buf.remaining() < 2 {
        return Err(CodecError::Truncated);
    }
    let n = buf.get_u16() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(decode_value(buf)?);
    }
    Ok(row)
}

/// A WAL record: either a staged insert belonging to a transaction, or a
/// transaction commit marker.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Row staged into `table` under transaction `txn`.
    Insert {
        /// Owning transaction id.
        txn: u64,
        /// Destination table name.
        table: String,
        /// Row values.
        row: Vec<Value>,
    },
    /// Transaction `txn` committed — all of its staged inserts are durable.
    Commit {
        /// Committed transaction id.
        txn: u64,
    },
}

const REC_INSERT: u8 = 10;
const REC_COMMIT: u8 = 11;

/// FNV-1a, used as the frame checksum (fast, good error detection for this
/// purpose; not cryptographic — content hashes use SHA-256 in flor-git).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Encode a record as a `[len:u32][crc:u64][payload]` frame.
pub fn encode_record(rec: &WalRecord) -> Bytes {
    let mut payload = BytesMut::new();
    match rec {
        WalRecord::Insert { txn, table, row } => {
            payload.put_u8(REC_INSERT);
            payload.put_u64(*txn);
            payload.put_u16(table.len() as u16);
            payload.put_slice(table.as_bytes());
            encode_row(row, &mut payload);
        }
        WalRecord::Commit { txn } => {
            payload.put_u8(REC_COMMIT);
            payload.put_u64(*txn);
        }
    }
    let mut frame = BytesMut::with_capacity(payload.len() + 12);
    frame.put_u32(payload.len() as u32);
    frame.put_u64(fnv1a(&payload));
    frame.put_slice(&payload);
    frame.freeze()
}

/// Decode one frame from the front of `buf`. Returns `Ok(None)` at a clean
/// end-of-buffer, `Err(Truncated)` for a torn tail frame.
pub fn decode_record(buf: &mut Bytes) -> Result<Option<WalRecord>, CodecError> {
    if buf.remaining() == 0 {
        return Ok(None);
    }
    if buf.remaining() < 12 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u32() as usize;
    let crc = buf.get_u64();
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let payload = buf.copy_to_bytes(len);
    if fnv1a(&payload) != crc {
        return Err(CodecError::BadChecksum);
    }
    decode_payload(payload).map(Some)
}

/// Decode a frame's already-checksummed payload into a [`WalRecord`].
pub fn decode_payload(payload: Bytes) -> Result<WalRecord, CodecError> {
    let mut p = payload;
    if p.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    match p.get_u8() {
        REC_INSERT => {
            if p.remaining() < 10 {
                return Err(CodecError::Truncated);
            }
            let txn = p.get_u64();
            let tlen = p.get_u16() as usize;
            if p.remaining() < tlen {
                return Err(CodecError::Truncated);
            }
            let traw = p.copy_to_bytes(tlen);
            let table = std::str::from_utf8(&traw)
                .map_err(|e| CodecError::Malformed(e.to_string()))?
                .to_string();
            let row = decode_row(&mut p)?;
            Ok(WalRecord::Insert { txn, table, row })
        }
        REC_COMMIT => {
            if p.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Ok(WalRecord::Commit { txn: p.get_u64() })
        }
        t => Err(CodecError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_value(v: Value) {
        let mut buf = BytesMut::new();
        encode_value(&v, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_value(&mut bytes).unwrap(), v);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn value_round_trips() {
        round_trip_value(Value::Null);
        round_trip_value(Value::Bool(true));
        round_trip_value(Value::Int(-12345));
        round_trip_value(Value::Float(3.25));
        round_trip_value(Value::Float(f64::NAN)); // NaN bits preserved
        round_trip_value(Value::Str("hello 世界".into()));
        round_trip_value(Value::from(""));
    }

    #[test]
    fn nan_round_trip_bits() {
        let mut buf = BytesMut::new();
        encode_value(&Value::Float(f64::NAN), &mut buf);
        let mut b = buf.freeze();
        match decode_value(&mut b).unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn row_round_trip() {
        let row = vec![
            Value::Str("proj".into()),
            Value::Int(7),
            Value::Null,
            Value::Bool(false),
        ];
        let mut buf = BytesMut::new();
        encode_row(&row, &mut buf);
        assert_eq!(decode_row(&mut buf.freeze()).unwrap(), row);
    }

    #[test]
    fn record_round_trip() {
        let rec = WalRecord::Insert {
            txn: 9,
            table: "logs".into(),
            row: vec![Value::Int(1), Value::Str("loss".into())],
        };
        let frame = encode_record(&rec);
        let mut buf = frame;
        assert_eq!(decode_record(&mut buf).unwrap(), Some(rec));
        assert_eq!(decode_record(&mut buf).unwrap(), None);
    }

    #[test]
    fn commit_record_round_trip() {
        let rec = WalRecord::Commit { txn: 42 };
        let mut buf = encode_record(&rec);
        assert_eq!(decode_record(&mut buf).unwrap(), Some(rec));
    }

    #[test]
    fn truncated_tail_detected() {
        let rec = WalRecord::Insert {
            txn: 1,
            table: "logs".into(),
            row: vec![Value::Int(1)],
        };
        let frame = encode_record(&rec);
        for cut in 1..frame.len() {
            let mut buf = frame.slice(..cut);
            let result = decode_record(&mut buf);
            assert!(
                matches!(result, Err(CodecError::Truncated)),
                "cut at {cut} gave {result:?}"
            );
        }
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let rec = WalRecord::Commit { txn: 7 };
        let frame = encode_record(&rec);
        let mut bytes = frame.to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let mut buf = Bytes::from(bytes);
        assert!(matches!(
            decode_record(&mut buf),
            Err(CodecError::BadChecksum)
        ));
    }

    #[test]
    fn multiple_frames_stream() {
        let recs = vec![
            WalRecord::Insert {
                txn: 1,
                table: "a".into(),
                row: vec![Value::Int(1)],
            },
            WalRecord::Commit { txn: 1 },
            WalRecord::Insert {
                txn: 2,
                table: "b".into(),
                row: vec![Value::Str("x".into())],
            },
        ];
        let mut all = BytesMut::new();
        for r in &recs {
            all.put_slice(&encode_record(r));
        }
        let mut buf = all.freeze();
        let mut out = Vec::new();
        while let Some(r) = decode_record(&mut buf).unwrap() {
            out.push(r);
        }
        assert_eq!(out, recs);
    }

    #[test]
    fn fnv_known_values() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
