//! The change feed: typed row deltas published at commit time.
//!
//! Incremental context maintenance (the paper's core claim) needs more
//! than a queryable store — downstream materialized views must learn
//! *what changed* without rescanning. The feed piggybacks on the existing
//! commit path: every [`crate::Database::commit`] that makes rows visible
//! also publishes one [`CommitBatch`] carrying the rows, stamped with the
//! post-commit epoch, to every live [`Subscription`]. Rows reach the feed
//! only when their commit marker lands, so subscribers observe exactly
//! the visibility semantics of §2.1 — staged rows never leak.
//!
//! Delivery is pull-based: batches queue per subscriber and are drained
//! with [`Subscription::poll`]. Dropping a subscription detaches it; the
//! database garbage-collects dead queues on the next commit.
//!
//! # Backpressure
//!
//! A consumer that stops polling would otherwise retain a clone of every
//! row ever committed. When a queue reaches [`MAX_PENDING_BATCHES`], the
//! publisher first **coalesces**: it merges the *cheapest* epoch-contiguous
//! pair of pending batches into one wider batch (`span > 1`), preserving
//! every delta and the epoch continuity consumers rely on. Only when no
//! pair can be merged within [`MAX_COALESCED_DELTAS`], or the queue's
//! total retained deltas exceed [`MAX_PENDING_DELTAS`], is the oldest
//! batch shed — the consumer then observes an epoch gap and falls back to
//! a snapshot rebuild. Coalescing-first means a subscriber that falls
//! behind under sustained load absorbs the backlog without a gap (and
//! therefore without a rebuild storm) until the hard memory bound is hit.
//!
//! Cheapest-pair selection is served by a size-ordered pair index
//! maintained alongside the queue (see `SubQueue`), so the saturated
//! publish path costs O(log n) — it never rescans the queue. The
//! unsaturated path stays O(1) amortized. Feed pressure is observable:
//! the publisher maintains the `store.feed.depth` gauge and the
//! `store.feed.coalesced` / `store.feed.shed` counters (plus
//! `feed.coalesce` / `feed.shed` events) in the database's metrics
//! registry.

use crate::metrics::FeedMetrics;
use flor_df::Value;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Bound on undrained batches per subscriber; past it the publisher
/// coalesces adjacent batches (and sheds only as a last resort).
pub const MAX_PENDING_BATCHES: usize = 1024;

/// Bound on row deltas a single coalesced batch may accumulate; a pair
/// whose merge would exceed it is left split (a later pair may still
/// merge).
pub const MAX_COALESCED_DELTAS: usize = 4096;

/// Hard bound on row deltas retained across one subscriber's whole queue.
/// Past it the publisher stops coalescing and sheds the oldest batch —
/// the point where bounded memory wins over gap-free delivery.
pub const MAX_PENDING_DELTAS: usize = 16_384;

/// One committed row: which table it landed in, and its values in schema
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct RowDelta {
    /// Destination table name.
    pub table: String,
    /// Row values, in the table schema's column order.
    pub row: Vec<Value>,
}

/// Everything one transaction — or, after queue coalescing, a run of
/// `span` consecutive transactions — made visible, in insertion order.
#[derive(Debug, Clone)]
pub struct CommitBatch {
    /// The database epoch *after* the last commit in this batch applied
    /// (first commit = 1). Consumers at epoch `e` are up to date iff they
    /// have applied every batch with `epoch <= e`.
    pub epoch: u64,
    /// The last committed transaction id in this batch.
    pub txn: u64,
    /// How many consecutive commits this batch carries. Freshly published
    /// batches have `span == 1`; queue coalescing merges epoch-adjacent
    /// batches and sums their spans, so a batch covers epochs
    /// `first_epoch()..=epoch` with no commit missing in between.
    pub span: u64,
    /// The rows, shared between all subscribers.
    pub deltas: Arc<Vec<RowDelta>>,
}

impl CommitBatch {
    /// The epoch of the first commit this batch carries. A consumer at
    /// epoch `e` can apply the batch iff `first_epoch() == e + 1`; a
    /// larger value means intervening batches were shed (an epoch gap).
    pub fn first_epoch(&self) -> u64 {
        self.epoch + 1 - self.span
    }
}

/// A live change-feed subscription. Created by
/// [`crate::Database::subscribe`]; batches accumulate until polled.
#[derive(Debug)]
pub struct Subscription {
    queue: Arc<Mutex<SubQueue>>,
    /// Database epoch at subscription time: the subscriber will see every
    /// commit with `epoch > since_epoch` and none at or before it.
    since_epoch: u64,
}

/// One subscriber's pending batches, keyed by a monotone arrival sequence
/// (`BTreeMap` iteration order == FIFO order), plus two incrementally
/// maintained structures so the publish path never walks the queue:
///
/// * `retained` — the total delta count, for the O(1) memory-bound check;
/// * `pairs` — a size-ordered index of the epoch-contiguous *adjacent*
///   pairs, as `(combined delta count, left sequence)`. The cheapest
///   mergeable pair is `pairs.first()`, making saturated-queue coalescing
///   O(log n) instead of the former O(queue length) scan.
///
/// Invariant: `pairs` holds exactly one entry per adjacent pair of queued
/// batches whose epochs are contiguous, carrying their current combined
/// size. Merges touch at most three entries (the merged pair and its two
/// neighbors); sheds remove the front pair only.
#[derive(Debug, Default)]
pub(crate) struct SubQueue {
    batches: BTreeMap<u64, CommitBatch>,
    /// Arrival sequence for the next pushed batch. Never reused, so a
    /// batch's key is stable across the merges happening around it.
    next_seq: u64,
    /// Invariant: sum of `batches[s].deltas.len()`.
    retained: usize,
    /// The size-ordered pair index described above.
    pairs: BTreeSet<(usize, u64)>,
}

impl SubQueue {
    fn push_back(&mut self, batch: CommitBatch) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some((&last_seq, last)) = self.batches.last_key_value() {
            // Index the new adjacency — unless a shed left an epoch gap
            // right here, in which case merging across it would hide the
            // gap from the consumer, so the pair is never indexed.
            if batch.first_epoch() == last.epoch + 1 {
                self.pairs
                    .insert((last.deltas.len() + batch.deltas.len(), last_seq));
            }
        }
        self.retained += batch.deltas.len();
        self.batches.insert(seq, batch);
    }

    fn pop_front(&mut self) -> Option<CommitBatch> {
        let (&seq, _) = self.batches.first_key_value()?;
        // audit: allow(panic) — `seq` came from first_key_value on the
        // same map one line up.
        let batch = self.batches.remove(&seq).expect("first key exists");
        self.retained -= batch.deltas.len();
        if let Some((_, next)) = self.batches.first_key_value() {
            // Un-index the popped batch's pair with its (former) right
            // neighbor; absent when the adjacency was not contiguous.
            self.pairs
                .remove(&(batch.deltas.len() + next.deltas.len(), seq));
        }
        Some(batch)
    }

    /// Merge the *smallest* adjacent, epoch-contiguous pair of batches
    /// whose combined delta count stays within [`MAX_COALESCED_DELTAS`].
    /// Returns whether a merge happened (one queue slot was reclaimed).
    ///
    /// Picking the cheapest pair — not the oldest — is the same
    /// amortization commit-time segment coalescing uses: a batch is only
    /// re-copied into a merge at least as large as itself, so each delta
    /// is cloned O(log) times over the queue's lifetime instead of once
    /// per publish. Selection is one `pairs.first()` probe: because the
    /// index is ordered by combined size, if even the cheapest pair busts
    /// the bound, no pair is mergeable.
    fn coalesce_cheapest(&mut self) -> bool {
        let Some(&(combined, left_seq)) = self.pairs.first() else {
            return false;
        };
        if combined > MAX_COALESCED_DELTAS {
            return false;
        }
        self.pairs.remove(&(combined, left_seq));
        let Some((&right_seq, _)) = self.batches.range(left_seq + 1..).next() else {
            debug_assert!(false, "pair index referenced a missing right batch");
            return false;
        };
        // audit: allow(panic) — right_seq was just yielded by the range
        // scan above (the missing case bailed out).
        let right = self.batches.remove(&right_seq).expect("right batch exists");
        let left_len = self.batches[&left_seq].deltas.len();
        debug_assert_eq!(combined, left_len + right.deltas.len());
        let merged_len = left_len + right.deltas.len();
        // The merged batch keeps the left's key and first epoch and takes
        // the right's last epoch, so both neighboring adjacencies keep
        // their contiguity — their index entries just need the new size.
        if let Some((&prev_seq, prev)) = self.batches.range(..left_seq).next_back() {
            if self.pairs.remove(&(prev.deltas.len() + left_len, prev_seq)) {
                self.pairs
                    .insert((prev.deltas.len() + merged_len, prev_seq));
            }
        }
        if let Some((_, next)) = self.batches.range(right_seq + 1..).next() {
            if self
                .pairs
                .remove(&(right.deltas.len() + next.deltas.len(), right_seq))
            {
                self.pairs
                    .insert((merged_len + next.deltas.len(), left_seq));
            }
        }
        // audit: allow(panic) — left_seq was validated present before the
        // merge began and only its right neighbor was removed.
        let left = self.batches.get_mut(&left_seq).expect("left batch exists");
        *left = CommitBatch {
            epoch: right.epoch,
            txn: right.txn,
            span: left.span + right.span,
            deltas: Arc::new(
                left.deltas
                    .iter()
                    .chain(right.deltas.iter())
                    .cloned()
                    .collect(),
            ),
        };
        true
    }
}

impl Subscription {
    pub(crate) fn new(queue: Arc<Mutex<SubQueue>>, since_epoch: u64) -> Subscription {
        Subscription { queue, since_epoch }
    }

    /// The epoch this subscription started at (its first batch, if any,
    /// has `first_epoch() == since_epoch() + 1`).
    pub fn since_epoch(&self) -> u64 {
        self.since_epoch
    }

    /// Drain all pending batches, oldest first.
    pub fn poll(&self) -> Vec<CommitBatch> {
        let mut q = self.queue.lock();
        q.retained = 0;
        q.pairs.clear();
        std::mem::take(&mut q.batches).into_values().collect()
    }

    /// Number of undrained batches.
    pub fn pending(&self) -> usize {
        self.queue.lock().batches.len()
    }
}

/// Publisher half, owned by the database.
#[derive(Debug)]
pub(crate) struct Publisher {
    queues: Vec<Arc<Mutex<SubQueue>>>,
    metrics: FeedMetrics,
}

impl Publisher {
    pub fn new(metrics: FeedMetrics) -> Publisher {
        Publisher {
            queues: Vec::new(),
            metrics,
        }
    }

    /// Register a new subscriber queue.
    pub fn attach(&mut self) -> Arc<Mutex<SubQueue>> {
        let queue = Arc::new(Mutex::new(SubQueue::default()));
        self.queues.push(Arc::clone(&queue));
        queue
    }

    /// Deliver a batch to every live subscriber, pruning dropped ones (a
    /// queue only we hold has lost its [`Subscription`]). Full queues
    /// coalesce their cheapest epoch-contiguous pair before resorting to
    /// a shed (see the module docs on backpressure).
    pub fn publish(&mut self, batch: CommitBatch) {
        self.queues.retain(|q| Arc::strong_count(q) > 1);
        let mut shed = 0u64;
        let mut coalesced = 0u64;
        let mut max_depth = 0usize;
        for q in &self.queues {
            let mut q = q.lock();
            if q.retained + batch.deltas.len() > MAX_PENDING_DELTAS {
                // Past the memory bound: shed oldest-first down to it.
                // The subscriber observes one hole at the front of its
                // backlog — a single epoch gap, one rebuild.
                while !q.batches.is_empty() && q.retained + batch.deltas.len() > MAX_PENDING_DELTAS
                {
                    q.pop_front();
                    shed += 1;
                }
            } else if q.batches.len() >= MAX_PENDING_BATCHES {
                // Over the batch-count bound but within memory: reclaim a
                // queue slot by merging instead of dropping. Shed only
                // when no pair is mergeable. (Merging preserves
                // `retained`: the same deltas live in one batch.)
                if q.coalesce_cheapest() {
                    coalesced += 1;
                } else {
                    q.pop_front();
                    shed += 1;
                }
            }
            q.push_back(batch.clone());
            max_depth = max_depth.max(q.batches.len());
        }
        let m = &self.metrics;
        if m.registry.enabled() && !self.queues.is_empty() {
            m.depth.set(max_depth as i64);
            if coalesced > 0 {
                m.coalesced.add(coalesced);
                m.registry.event_at(
                    flor_obs::Level::Warn,
                    "feed.coalesce",
                    format!("pairs={coalesced}"),
                );
            }
            if shed > 0 {
                m.shed.add(shed);
                m.registry.event_at(
                    flor_obs::Level::Warn,
                    "feed.shed",
                    format!("batches={shed}"),
                );
            }
        }
    }

    /// Live subscriber count (dropped subscriptions are excluded).
    pub fn live(&self) -> usize {
        self.queues
            .iter()
            .filter(|q| Arc::strong_count(q) > 1)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(epoch: u64, n_deltas: usize) -> CommitBatch {
        CommitBatch {
            epoch,
            txn: epoch,
            span: 1,
            deltas: Arc::new(
                (0..n_deltas)
                    .map(|i| RowDelta {
                        table: "t".into(),
                        row: vec![Value::Int(i as i64)],
                    })
                    .collect(),
            ),
        }
    }

    /// Reference implementation: the former O(n) scan over a plain list.
    /// Returns the merged list, or `None` when nothing was mergeable.
    fn oracle_coalesce(q: &[CommitBatch]) -> Option<Vec<CommitBatch>> {
        let mut best: Option<(usize, usize)> = None;
        for i in 0..q.len().saturating_sub(1) {
            let (a, b) = (&q[i], &q[i + 1]);
            if b.first_epoch() != a.epoch + 1 {
                continue;
            }
            let combined = a.deltas.len() + b.deltas.len();
            if combined > MAX_COALESCED_DELTAS {
                continue;
            }
            if best.is_none_or(|(_, size)| combined < size) {
                best = Some((i, combined));
            }
        }
        let (i, _) = best?;
        let mut out = q.to_vec();
        let merged = CommitBatch {
            epoch: out[i + 1].epoch,
            txn: out[i + 1].txn,
            span: out[i].span + out[i + 1].span,
            deltas: Arc::new(
                out[i]
                    .deltas
                    .iter()
                    .chain(out[i + 1].deltas.iter())
                    .cloned()
                    .collect(),
            ),
        };
        out[i] = merged;
        out.remove(i + 1);
        Some(out)
    }

    fn drain(q: &mut SubQueue) -> Vec<CommitBatch> {
        std::mem::take(&mut q.batches).into_values().collect()
    }

    fn assert_same(a: &[CommitBatch], b: &[CommitBatch]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!((x.epoch, x.txn, x.span), (y.epoch, y.txn, y.span));
            assert_eq!(*x.deltas, *y.deltas);
        }
    }

    /// The pair index must pick exactly the pair the former linear scan
    /// picked, across interleaved pushes, merges and sheds. Sizes come
    /// from a deterministic generator so runs are reproducible.
    #[test]
    fn indexed_coalesce_matches_linear_oracle() {
        let mut q = SubQueue::default();
        let mut reference: Vec<CommitBatch> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % m
        };
        for epoch in 1..400u64 {
            let b = batch(epoch, 1 + next(40) as usize);
            q.push_back(b.clone());
            reference.push(b);
            match next(4) {
                0 => {
                    let merged = q.coalesce_cheapest();
                    match oracle_coalesce(&reference) {
                        Some(r) => {
                            assert!(merged);
                            reference = r;
                        }
                        None => assert!(!merged),
                    }
                }
                1 if reference.len() > 1 => {
                    q.pop_front();
                    reference.remove(0);
                }
                _ => {}
            }
            assert_eq!(
                q.retained,
                reference.iter().map(|b| b.deltas.len()).sum::<usize>()
            );
        }
        let drained = drain(&mut q);
        assert_same(&drained, &reference);
        // Spans still tile the epoch range with no overlap.
        for w in drained.windows(2) {
            assert!(w[1].first_epoch() > w[0].epoch);
        }
    }

    /// A pair whose merge would exceed the delta bound is never merged —
    /// and because the index is size-ordered, one oversized cheapest pair
    /// proves nothing is mergeable.
    #[test]
    fn oversized_pairs_are_left_split() {
        let mut q = SubQueue::default();
        q.push_back(batch(1, MAX_COALESCED_DELTAS));
        q.push_back(batch(2, 1));
        assert!(!q.coalesce_cheapest());
        assert_eq!(q.batches.len(), 2);
    }

    /// Merging never bridges an epoch gap left by a shed.
    #[test]
    fn gaps_are_never_merged_across() {
        let mut q = SubQueue::default();
        q.push_back(batch(1, 1));
        q.pop_front();
        // Epoch 3 arrives after epoch-2 was (conceptually) shed upstream:
        // the new front pair (3,5) is contiguous, but (pushed-after-pop)
        // pairs across a real gap must not be indexed.
        q.push_back(batch(3, 1));
        q.push_back(batch(5, 1)); // gap: epoch 4 missing
        assert!(!q.coalesce_cheapest());
        q.push_back(batch(6, 1));
        assert!(q.coalesce_cheapest());
        let drained = drain(&mut q);
        assert_eq!(drained.len(), 2);
        assert_eq!((drained[0].epoch, drained[0].span), (3, 1));
        assert_eq!((drained[1].epoch, drained[1].span), (6, 2));
        assert_eq!(drained[1].first_epoch(), 5);
    }

    /// Repeated merges around one key keep the index consistent: the
    /// merged batch's neighbors see its growing size.
    #[test]
    fn neighbor_pairs_track_merged_sizes() {
        let mut q = SubQueue::default();
        for epoch in 1..=5u64 {
            q.push_back(batch(epoch, 10));
        }
        for expect_len in (1..5usize).rev() {
            assert!(q.coalesce_cheapest());
            assert_eq!(q.batches.len(), expect_len);
            let total: usize = q.batches.values().map(|b| b.deltas.len()).sum();
            assert_eq!(total, 50);
        }
        let all = drain(&mut q);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].span, 5);
        assert_eq!(all[0].first_epoch(), 1);
        assert_eq!(all[0].deltas.len(), 50);
    }
}
