//! The change feed: typed row deltas published at commit time.
//!
//! Incremental context maintenance (the paper's core claim) needs more
//! than a queryable store — downstream materialized views must learn
//! *what changed* without rescanning. The feed piggybacks on the existing
//! commit path: every [`crate::Database::commit`] that makes rows visible
//! also publishes one [`CommitBatch`] carrying the rows, stamped with the
//! post-commit epoch, to every live [`Subscription`]. Rows reach the feed
//! only when their commit marker lands, so subscribers observe exactly
//! the visibility semantics of §2.1 — staged rows never leak.
//!
//! Delivery is pull-based: batches queue per subscriber and are drained
//! with [`Subscription::poll`]. Dropping a subscription detaches it; the
//! database garbage-collects dead queues on the next commit.
//!
//! # Backpressure
//!
//! A consumer that stops polling would otherwise retain a clone of every
//! row ever committed. When a queue reaches [`MAX_PENDING_BATCHES`], the
//! publisher first **coalesces**: it merges the oldest epoch-contiguous
//! pair of pending batches into one wider batch (`span > 1`), preserving
//! every delta and the epoch continuity consumers rely on. Only when no
//! pair can be merged within [`MAX_COALESCED_DELTAS`], or the queue's
//! total retained deltas exceed [`MAX_PENDING_DELTAS`], is the oldest
//! batch shed — the consumer then observes an epoch gap and falls back to
//! a snapshot rebuild. Coalescing-first means a subscriber that falls
//! behind under sustained load absorbs the backlog without a gap (and
//! therefore without a rebuild storm) until the hard memory bound is hit.

use flor_df::Value;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Bound on undrained batches per subscriber; past it the publisher
/// coalesces adjacent batches (and sheds only as a last resort).
pub const MAX_PENDING_BATCHES: usize = 1024;

/// Bound on row deltas a single coalesced batch may accumulate; a pair
/// whose merge would exceed it is left split (a later pair may still
/// merge).
pub const MAX_COALESCED_DELTAS: usize = 4096;

/// Hard bound on row deltas retained across one subscriber's whole queue.
/// Past it the publisher stops coalescing and sheds the oldest batch —
/// the point where bounded memory wins over gap-free delivery.
pub const MAX_PENDING_DELTAS: usize = 16_384;

/// One committed row: which table it landed in, and its values in schema
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct RowDelta {
    /// Destination table name.
    pub table: String,
    /// Row values, in the table schema's column order.
    pub row: Vec<Value>,
}

/// Everything one transaction — or, after queue coalescing, a run of
/// `span` consecutive transactions — made visible, in insertion order.
#[derive(Debug, Clone)]
pub struct CommitBatch {
    /// The database epoch *after* the last commit in this batch applied
    /// (first commit = 1). Consumers at epoch `e` are up to date iff they
    /// have applied every batch with `epoch <= e`.
    pub epoch: u64,
    /// The last committed transaction id in this batch.
    pub txn: u64,
    /// How many consecutive commits this batch carries. Freshly published
    /// batches have `span == 1`; queue coalescing merges epoch-adjacent
    /// batches and sums their spans, so a batch covers epochs
    /// `first_epoch()..=epoch` with no commit missing in between.
    pub span: u64,
    /// The rows, shared between all subscribers.
    pub deltas: Arc<Vec<RowDelta>>,
}

impl CommitBatch {
    /// The epoch of the first commit this batch carries. A consumer at
    /// epoch `e` can apply the batch iff `first_epoch() == e + 1`; a
    /// larger value means intervening batches were shed (an epoch gap).
    pub fn first_epoch(&self) -> u64 {
        self.epoch + 1 - self.span
    }
}

/// A live change-feed subscription. Created by
/// [`crate::Database::subscribe`]; batches accumulate until polled.
#[derive(Debug)]
pub struct Subscription {
    queue: Arc<Mutex<SubQueue>>,
    /// Database epoch at subscription time: the subscriber will see every
    /// commit with `epoch > since_epoch` and none at or before it.
    since_epoch: u64,
}

/// One subscriber's pending batches plus an incrementally maintained
/// retained-delta count, so the publish hot path never walks the queue
/// just to know its size in rows.
#[derive(Debug, Default)]
pub(crate) struct SubQueue {
    batches: VecDeque<CommitBatch>,
    /// Invariant: sum of `batches[i].deltas.len()`.
    retained: usize,
}

impl SubQueue {
    fn push_back(&mut self, batch: CommitBatch) {
        self.retained += batch.deltas.len();
        self.batches.push_back(batch);
    }

    fn pop_front(&mut self) -> Option<CommitBatch> {
        let batch = self.batches.pop_front()?;
        self.retained -= batch.deltas.len();
        Some(batch)
    }
}

impl Subscription {
    pub(crate) fn new(queue: Arc<Mutex<SubQueue>>, since_epoch: u64) -> Subscription {
        Subscription { queue, since_epoch }
    }

    /// The epoch this subscription started at (its first batch, if any,
    /// has `first_epoch() == since_epoch() + 1`).
    pub fn since_epoch(&self) -> u64 {
        self.since_epoch
    }

    /// Drain all pending batches, oldest first.
    pub fn poll(&self) -> Vec<CommitBatch> {
        let mut q = self.queue.lock();
        q.retained = 0;
        q.batches.drain(..).collect()
    }

    /// Number of undrained batches.
    pub fn pending(&self) -> usize {
        self.queue.lock().batches.len()
    }
}

/// Publisher half, owned by the database.
#[derive(Debug, Default)]
pub(crate) struct Publisher {
    queues: Vec<Arc<Mutex<SubQueue>>>,
}

impl Publisher {
    /// Register a new subscriber queue.
    pub fn attach(&mut self) -> Arc<Mutex<SubQueue>> {
        let queue = Arc::new(Mutex::new(SubQueue::default()));
        self.queues.push(Arc::clone(&queue));
        queue
    }

    /// Deliver a batch to every live subscriber, pruning dropped ones (a
    /// queue only we hold has lost its [`Subscription`]). Full queues
    /// coalesce their oldest epoch-contiguous pair before resorting to a
    /// shed (see the module docs on backpressure).
    pub fn publish(&mut self, batch: CommitBatch) {
        self.queues.retain(|q| Arc::strong_count(q) > 1);
        for q in &self.queues {
            let mut q = q.lock();
            if q.retained + batch.deltas.len() > MAX_PENDING_DELTAS {
                // Past the memory bound: shed oldest-first down to it.
                // The subscriber observes one hole at the front of its
                // backlog — a single epoch gap, one rebuild.
                while !q.batches.is_empty() && q.retained + batch.deltas.len() > MAX_PENDING_DELTAS
                {
                    q.pop_front();
                }
            } else if q.batches.len() >= MAX_PENDING_BATCHES {
                // Over the batch-count bound but within memory: reclaim a
                // queue slot by merging instead of dropping. Shed only
                // when no adjacent pair is mergeable. (Merging preserves
                // `retained`: the same deltas live in one batch.)
                if !coalesce_cheapest(&mut q.batches) {
                    q.pop_front();
                }
            }
            q.push_back(batch.clone());
        }
    }

    /// Live subscriber count (dropped subscriptions are excluded).
    pub fn live(&self) -> usize {
        self.queues
            .iter()
            .filter(|q| Arc::strong_count(q) > 1)
            .count()
    }
}

/// Merge the *smallest* adjacent, epoch-contiguous pair of batches whose
/// combined delta count stays within [`MAX_COALESCED_DELTAS`]. Returns
/// whether a merge happened (i.e. one queue slot was reclaimed).
///
/// Picking the cheapest pair — not the oldest — is the same amortization
/// commit-time segment coalescing uses: a batch is only re-copied into a
/// merge at least as large as itself, so each delta is cloned O(log)
/// times over the queue's lifetime instead of once per publish. The
/// selection scan is O(queue length) of integer compares, no cloning,
/// and runs only once the queue is saturated — the unsaturated publish
/// path is O(1) thanks to [`SubQueue`]'s incremental delta count.
fn coalesce_cheapest(q: &mut VecDeque<CommitBatch>) -> bool {
    let mut best: Option<(usize, usize)> = None;
    for i in 0..q.len().saturating_sub(1) {
        let (a, b) = (&q[i], &q[i + 1]);
        // A prior shed can leave one discontinuity at the front; merging
        // across it would hide the gap from the consumer.
        if b.first_epoch() != a.epoch + 1 {
            continue;
        }
        let combined = a.deltas.len() + b.deltas.len();
        if combined > MAX_COALESCED_DELTAS {
            continue;
        }
        if best.is_none_or(|(_, size)| combined < size) {
            best = Some((i, combined));
        }
    }
    let Some((i, _)) = best else {
        return false;
    };
    let (a, b) = (&q[i], &q[i + 1]);
    let merged = CommitBatch {
        epoch: b.epoch,
        txn: b.txn,
        span: a.span + b.span,
        deltas: Arc::new(a.deltas.iter().chain(b.deltas.iter()).cloned().collect()),
    };
    q[i] = merged;
    q.remove(i + 1);
    true
}
