//! The change feed: typed row deltas published at commit time.
//!
//! Incremental context maintenance (the paper's core claim) needs more
//! than a queryable store — downstream materialized views must learn
//! *what changed* without rescanning. The feed piggybacks on the existing
//! commit path: every [`crate::Database::commit`] that makes rows visible
//! also publishes one [`CommitBatch`] carrying the rows, stamped with the
//! post-commit epoch, to every live [`Subscription`]. Rows reach the feed
//! only when their commit marker lands, so subscribers observe exactly
//! the visibility semantics of §2.1 — staged rows never leak.
//!
//! Delivery is pull-based: batches queue per subscriber and are drained
//! with [`Subscription::poll`]. Dropping a subscription detaches it; the
//! database garbage-collects dead queues on the next commit.

use flor_df::Value;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Bound on undrained batches per subscriber. A consumer that stops
/// polling (e.g. a view that is never queried again) would otherwise
/// retain a clone of every row ever committed; past this bound the
/// oldest batches are dropped. Consumers detect the truncation as an
/// epoch gap and fall back to a snapshot rebuild, so slow readers cost
/// bounded memory instead of unbounded growth.
pub const MAX_PENDING_BATCHES: usize = 1024;

/// One committed row: which table it landed in, and its values in schema
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct RowDelta {
    /// Destination table name.
    pub table: String,
    /// Row values, in the table schema's column order.
    pub row: Vec<Value>,
}

/// Everything one transaction made visible, in insertion order.
#[derive(Debug, Clone)]
pub struct CommitBatch {
    /// The database epoch *after* this commit applied (first commit = 1).
    /// Consumers at epoch `e` are up to date iff they have applied every
    /// batch with `epoch <= e`.
    pub epoch: u64,
    /// The committed transaction id.
    pub txn: u64,
    /// The rows, shared between all subscribers.
    pub deltas: Arc<Vec<RowDelta>>,
}

/// A live change-feed subscription. Created by
/// [`crate::Database::subscribe`]; batches accumulate until polled.
#[derive(Debug)]
pub struct Subscription {
    queue: Arc<Mutex<VecDeque<CommitBatch>>>,
    /// Database epoch at subscription time: the subscriber will see every
    /// commit with `epoch > since_epoch` and none at or before it.
    since_epoch: u64,
}

impl Subscription {
    pub(crate) fn new(queue: Arc<Mutex<VecDeque<CommitBatch>>>, since_epoch: u64) -> Subscription {
        Subscription { queue, since_epoch }
    }

    /// The epoch this subscription started at (its first batch, if any,
    /// has `epoch == since_epoch() + 1`).
    pub fn since_epoch(&self) -> u64 {
        self.since_epoch
    }

    /// Drain all pending batches, oldest first.
    pub fn poll(&self) -> Vec<CommitBatch> {
        let mut q = self.queue.lock();
        q.drain(..).collect()
    }

    /// Number of undrained batches.
    pub fn pending(&self) -> usize {
        self.queue.lock().len()
    }
}

/// Publisher half, owned by the database.
#[derive(Debug, Default)]
pub(crate) struct Publisher {
    queues: Vec<Arc<Mutex<VecDeque<CommitBatch>>>>,
}

impl Publisher {
    /// Register a new subscriber queue.
    pub fn attach(&mut self) -> Arc<Mutex<VecDeque<CommitBatch>>> {
        let queue = Arc::new(Mutex::new(VecDeque::new()));
        self.queues.push(Arc::clone(&queue));
        queue
    }

    /// Deliver a batch to every live subscriber, pruning dropped ones (a
    /// queue only we hold has lost its [`Subscription`]). Queues at
    /// [`MAX_PENDING_BATCHES`] shed their oldest batch first — the
    /// subscriber will observe the hole as an epoch gap.
    pub fn publish(&mut self, batch: CommitBatch) {
        self.queues.retain(|q| Arc::strong_count(q) > 1);
        for q in &self.queues {
            let mut q = q.lock();
            if q.len() >= MAX_PENDING_BATCHES {
                q.pop_front();
            }
            q.push_back(batch.clone());
        }
    }

    /// Live subscriber count (dropped subscriptions are excluded).
    pub fn live(&self) -> usize {
        self.queues
            .iter()
            .filter(|q| Arc::strong_count(q) > 1)
            .count()
    }
}
