//! The segment compaction planner: merge cold sealed segments, drop
//! latest-wins dead rows.
//!
//! PR 4's MVCC layout seals every commit into immutable segments and
//! coalesces only the small tail; the sealed middle is never merged, and
//! latest-wins tables (`jobs` state transitions) accumulate dead rows
//! every scan still touches. This module plans the maintenance pass
//! [`crate::Database::compact_with`] executes:
//!
//! 1. **Liveness fold.** For tables with a declared
//!    [`LatestWins`] policy, one pass over the pinned version computes
//!    the winning row per key (max `ord`, ties to the oldest row — the
//!    `recover_records` convention — or pure insertion order without an
//!    `ord` column) and the carry-forward rows the fold still needs
//!    (`jobs.payload` lands only on a job's first transition).
//!    Everything else is dead.
//! 2. **Run selection.** Adjacent segments are grouped into runs of at
//!    most `target_segment_rows` live rows; a run is rewritten when it
//!    merges ≥ 2 segments, drops ≥ 1 dead row, or — on a table with a
//!    declared [`crate::schema::ClusterBy`] — still holds unsorted rows,
//!    and passed through untouched (same `Arc`) otherwise.
//! 3. **Clustering.** Rewritten runs of a clustered table are sorted by
//!    the cluster column (ties by global row id, so the sort is stable
//!    in insertion order) before chunking, which makes the output
//!    chunks' zone maps **disjoint** on that column: a range scan prunes
//!    every chunk but the overlapping ones and binary-searches into
//!    those.
//!
//! The plan is computed against a pinned version with no lock held; the
//! publish step validates, under the write lock, that the planned
//! segments are still the table's segments (by pointer identity) and
//! retries the table when a concurrent commit folded the tail meanwhile.
//!
//! Rewritten segments keep their rows' original global row ids through an
//! explicit rid map (`Segment::seal_mapped`), so index postings and
//! pinned readers agree on identity across compactions; rid holes are why
//! `TableVersion::row` returns `Option`.

use crate::db::{Segment, TableVersion};
use crate::schema::LatestWins;
use flor_df::Value;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Tuning knobs for one compaction pass. The default is the explicit
/// "compact whatever is worth compacting" policy: any dead row is worth
/// dropping, any mergeable run is worth merging.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionPolicy {
    /// Drop dead rows only when a table has at least this many.
    pub min_dead_rows: usize,
    /// ... and the dead fraction of the table is at least this.
    pub min_dead_ratio: f64,
    /// Cap on live rows per merged segment: runs close at this size, so
    /// compaction also right-sizes segments for zone-map pruning instead
    /// of producing one monolith per table.
    pub target_segment_rows: usize,
}

impl Default for CompactionPolicy {
    fn default() -> CompactionPolicy {
        CompactionPolicy {
            min_dead_rows: 1,
            min_dead_ratio: 0.0,
            target_segment_rows: 4096,
        }
    }
}

/// When the commit layer triggers a background compaction (see
/// [`crate::Database::set_auto_compact`]). The commit path pays one
/// counter bump; the dead-row analysis runs on the spawned thread.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionTrigger {
    /// Appended rows between trigger evaluations.
    pub check_every_rows: u64,
    /// The policy the background pass runs with.
    pub policy: CompactionPolicy,
}

impl Default for CompactionTrigger {
    fn default() -> CompactionTrigger {
        CompactionTrigger {
            check_every_rows: 4096,
            policy: CompactionPolicy {
                // Conservative background thresholds: don't churn tables
                // whose dead fraction is still small.
                min_dead_rows: 1024,
                min_dead_ratio: 0.25,
                target_segment_rows: 4096,
            },
        }
    }
}

/// Summary of one completed [`crate::Database::compact_with`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Tables whose segment list was replaced.
    pub tables_compacted: usize,
    /// Runs of adjacent segments merged into one.
    pub runs_merged: usize,
    /// Segments across all tables before the pass.
    pub segments_before: usize,
    /// Segments across all tables after the pass.
    pub segments_after: usize,
    /// Superseded rows dropped.
    pub rows_dropped: usize,
    /// Live rows copied into merged segments (the rewrite cost).
    pub rows_rewritten: usize,
}

/// One table's planned replacement: the segments to swap out (kept for
/// pointer-identity validation at publish time) and what replaces them.
pub(crate) struct TableCompaction {
    /// The exact segment list this plan replaces — the table's segments
    /// at planning time.
    pub source: Vec<Arc<Segment>>,
    /// Their replacement (merged/pruned, or pass-through `Arc`s).
    pub new_segments: Vec<Arc<Segment>>,
    /// Runs of ≥ 2 segments merged.
    pub runs_merged: usize,
    /// Dead rows dropped.
    pub rows_dropped: usize,
    /// Live rows copied into rewritten segments.
    pub rows_rewritten: usize,
}

/// The global row ids a latest-wins fold of `t` retains: per key, the
/// winning row (max `ord`, ties to the oldest rid — the
/// `recover_records` convention) plus — per carry-forward column whose
/// winner cell is empty — the oldest row holding a non-empty value.
fn retained_rids(t: &TableVersion, lw: &LatestWins) -> HashSet<usize> {
    let key_pos: Vec<usize> = lw
        .key
        .iter()
        .filter_map(|c| t.schema.col_index(c))
        .collect();
    let ord_pos = lw.ord.as_ref().and_then(|c| t.schema.col_index(c));
    let carry_pos: Vec<usize> = lw
        .carry_first
        .iter()
        .filter_map(|c| t.schema.col_index(c))
        .collect();
    // A policy naming any unknown column can't be folded faithfully —
    // a typo'd `ord` would silently change which row wins, a typo'd
    // carry column would drop the carrier. Keep every row instead.
    if key_pos.len() != lw.key.len()
        || ord_pos.is_none() != lw.ord.is_none()
        || carry_pos.len() != lw.carry_first.len()
    {
        return all_rids(t);
    }
    struct KeyState {
        winner_rid: usize,
        winner_ord: Option<Value>,
        /// Per carry column: oldest rid with a non-empty cell.
        carry_rid: Vec<Option<usize>>,
    }
    let mut keys: HashMap<Vec<Value>, KeyState> = HashMap::new();
    for seg in &t.segments {
        for local in 0..seg.len() {
            let rid = seg.rid_at(local);
            let key: Vec<Value> = key_pos.iter().map(|&p| seg.cell(local, p)).collect();
            let ord = ord_pos.map(|p| seg.cell(local, p));
            let entry = keys.entry(key).or_insert_with(|| KeyState {
                winner_rid: rid,
                winner_ord: ord.clone(),
                carry_rid: vec![None; carry_pos.len()],
            });
            // Segments are walked in ascending rid order. With an `ord`
            // column a strictly greater value wins (ties keep the older
            // row — the `recover_records` fold convention); without one,
            // insertion order decides and the newest row wins.
            let wins = match (&ord, &entry.winner_ord) {
                (Some(a), Some(b)) => a > b,
                _ => true,
            };
            if rid != entry.winner_rid && wins {
                entry.winner_rid = rid;
                entry.winner_ord = ord;
            }
            for (ci, &p) in carry_pos.iter().enumerate() {
                if entry.carry_rid[ci].is_none() && !cell_is_empty(&seg.cell(local, p)) {
                    entry.carry_rid[ci] = Some(rid);
                }
            }
        }
    }
    let mut retained = HashSet::with_capacity(keys.len());
    for state in keys.values() {
        retained.insert(state.winner_rid);
        if carry_pos.is_empty() {
            continue;
        }
        // audit: allow(panic) — winner_rid was recorded while scanning
        // this same table's rows, so the row lookup cannot miss.
        let winner = t.row(state.winner_rid).expect("winner rid is retained");
        for (ci, &p) in carry_pos.iter().enumerate() {
            if cell_is_empty(&winner[p]) {
                if let Some(rid) = state.carry_rid[ci] {
                    retained.insert(rid);
                }
            }
        }
    }
    retained
}

fn all_rids(t: &TableVersion) -> HashSet<usize> {
    t.segments
        .iter()
        .flat_map(|s| (0..s.len()).map(move |i| s.rid_at(i)))
        .collect()
}

/// "Empty" for carry-forward purposes: a null, or text of length zero —
/// the shape of a `jobs.payload` cell on every transition after the
/// first.
fn cell_is_empty(v: &Value) -> bool {
    match v {
        Value::Null => true,
        Value::Str(s) => s.is_empty(),
        _ => false,
    }
}

/// Dead-row count for one table version under its declared policy (0
/// without one) — the observability fold behind
/// [`crate::Database::dead_rows`].
pub(crate) fn dead_rows(t: &TableVersion) -> usize {
    match &t.schema.latest_wins {
        None => 0,
        Some(lw) => t.total_rows - retained_rids(t, lw).len(),
    }
}

/// Plan one table's compaction, or `None` when there is nothing worth
/// doing. Pure read over the pinned version; builds the replacement
/// segments eagerly (still off-lock — the caller publishes them).
pub(crate) fn plan_table(t: &TableVersion, policy: &CompactionPolicy) -> Option<TableCompaction> {
    let k = t.segments.len();
    if k == 0 {
        return None;
    }
    let retained = t.schema.latest_wins.as_ref().map(|lw| retained_rids(t, lw));
    let droppable: usize = match &retained {
        None => 0,
        Some(r) => t.total_rows - r.len(),
    };
    let drop_mode = droppable >= policy.min_dead_rows.max(1)
        && droppable as f64 >= policy.min_dead_ratio * t.total_rows as f64;
    let keep =
        |rid: usize| -> bool { !drop_mode || retained.as_ref().is_none_or(|r| r.contains(&rid)) };
    // Group the segments into runs of at most target_segment_rows live
    // rows (an oversized single segment forms its own run).
    let live: Vec<usize> = t
        .segments
        .iter()
        .map(|s| (0..s.len()).filter(|&i| keep(s.rid_at(i))).count())
        .collect();
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let (mut run_start, mut run_live) = (0usize, 0usize);
    for (i, &n) in live.iter().enumerate() {
        if i > run_start && run_live + n > policy.target_segment_rows {
            runs.push((run_start, i));
            run_start = i;
            run_live = 0;
        }
        run_live += n;
    }
    runs.push((run_start, k));

    let mut plan = TableCompaction {
        source: t.segments.clone(),
        new_segments: Vec::new(),
        runs_merged: 0,
        rows_dropped: 0,
        rows_rewritten: 0,
    };
    // Clustering: rewritten runs are sorted by the declared cluster
    // column (ties broken by rid, i.e. insertion order), making the
    // output chunks' zone maps disjoint on that column — range scans
    // then binary-search into them.
    let cluster_pos = t
        .schema
        .cluster_by
        .as_ref()
        .and_then(|c| t.schema.col_index(&c.column));
    let mut rewrote = false;
    for &(a, b) in &runs {
        let run_rows: usize = t.segments[a..b].iter().map(|s| s.len()).sum();
        let run_live: usize = live[a..b].iter().sum();
        let cluster_ok = match cluster_pos {
            None => true,
            // An unsorted segment of a clustered table is worth a
            // rewrite even when right-sized: once sorted, the next pass
            // passes it through — compaction stays idempotent.
            Some(ci) => t.segments[a].sorted_by == Some(ci),
        };
        if b - a == 1
            && run_live == run_rows
            && run_rows <= policy.target_segment_rows
            && cluster_ok
        {
            // Nothing to merge, drop, split or sort: pass it through.
            plan.new_segments.push(Arc::clone(&t.segments[a]));
            continue;
        }
        // Rewrite the run, chunking the output at target_segment_rows —
        // this both caps merged segments and *splits* an oversized
        // monolith (e.g. a pre-chunking recovery segment) so zone maps
        // get ranges narrow enough to prune.
        rewrote = true;
        let mut pending: Vec<(usize, Vec<Value>)> = Vec::new();
        for seg in &t.segments[a..b] {
            for local in 0..seg.len() {
                let rid = seg.rid_at(local);
                if keep(rid) {
                    pending.push((rid, seg.row_at(local)));
                } else {
                    plan.rows_dropped += 1;
                }
            }
        }
        if let Some(ci) = cluster_pos {
            pending.sort_by(|x, y| x.1[ci].cmp(&y.1[ci]).then(x.0.cmp(&y.0)));
        }
        let mut chunks: Vec<Arc<Segment>> = Vec::new();
        let mut rids: Vec<usize> = Vec::new();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for (rid, row) in pending {
            rids.push(rid);
            rows.push(row);
            if rows.len() >= policy.target_segment_rows {
                chunks.push(Arc::new(Segment::seal_mapped(
                    &t.schema,
                    std::mem::take(&mut rids),
                    std::mem::take(&mut rows),
                )));
            }
        }
        if !rows.is_empty() {
            chunks.push(Arc::new(Segment::seal_mapped(&t.schema, rids, rows)));
        }
        plan.rows_rewritten += chunks.iter().map(|s| s.len()).sum::<usize>();
        plan.new_segments.extend(chunks);
        if b - a > 1 {
            plan.runs_merged += 1;
        }
    }
    if !rewrote {
        return None;
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_eager_and_trigger_is_conservative() {
        let p = CompactionPolicy::default();
        assert_eq!(p.min_dead_rows, 1);
        assert_eq!(p.min_dead_ratio, 0.0);
        let t = CompactionTrigger::default();
        assert!(t.policy.min_dead_rows > p.min_dead_rows);
        assert!(t.policy.min_dead_ratio > 0.0);
    }

    #[test]
    fn empty_cell_detection() {
        assert!(cell_is_empty(&Value::Null));
        assert!(cell_is_empty(&Value::Str("".into())));
        assert!(!cell_is_empty(&Value::Str("x".into())));
        assert!(!cell_is_empty(&Value::Int(0)));
    }
}
