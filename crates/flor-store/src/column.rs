//! Columnar segment storage: typed column vectors, dictionary-encoded
//! strings, selection bitmaps, and vectorized predicate evaluation.
//!
//! Sealed segments hold one [`Column`] per schema column instead of
//! `Vec<Vec<Value>>` rows. A column is stored as a typed primitive
//! vector (`Vec<i64>`, `Vec<f64>`, `Vec<bool>`) when every non-null
//! cell is the same [`Value`] variant, as a [`DictColumn`]
//! (per-segment dictionary + `u32` codes) for string columns, or as a
//! fallback `Vec<Value>` when the column is type-mixed. Null positions
//! in typed columns are tracked by a side [`Bitmap`] and hold a
//! placeholder in the primitive vector.
//!
//! Predicate evaluation ([`Column::eval`]) runs tight loops over the
//! primitive slices and produces a selection [`Bitmap`]; per-cell
//! [`Value`] materialization is deferred until the final projection
//! ([`Column::extend_selected`]). The comparison semantics match
//! `Value`'s total order exactly — notably floats compare via
//! `total_cmp` (so `NaN == NaN`), and cross-type comparisons follow
//! the `Null < (Bool|Int|Float) < Str` type ranking — which is what
//! keeps columnar scans byte-identical to the row-major oracle.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use flor_df::Value;

use crate::query::CmpOp;

// ---------------------------------------------------------------------------
// Bitmap
// ---------------------------------------------------------------------------

/// A fixed-length bitmap used for null tracking and scan selections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zero bitmap of `len` bits.
    pub fn zeroes(len: usize) -> Self {
        Bitmap {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// A bitmap of `len` bits with exactly `[lo, hi)` set.
    pub fn ones_in_range(len: usize, lo: usize, hi: usize) -> Self {
        let mut b = Bitmap::zeroes(len);
        b.set_range(lo, hi);
        b
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set every bit in `[lo, hi)`.
    pub fn set_range(&mut self, lo: usize, hi: usize) {
        Self::for_word_span(lo, hi, |w, mask| self.words[w] |= mask);
    }

    /// Call `f(word_index, mask)` for each word overlapping `[lo, hi)`,
    /// where `mask` has exactly the bits of that word inside the range.
    fn for_word_span(lo: usize, hi: usize, mut f: impl FnMut(usize, u64)) {
        if lo >= hi {
            return;
        }
        let (w0, w1) = (lo / 64, (hi - 1) / 64);
        for w in w0..=w1 {
            let from = if w == w0 { lo % 64 } else { 0 };
            let to = if w == w1 { (hi - 1) % 64 + 1 } else { 64 };
            let mask = if to == 64 {
                u64::MAX << from
            } else {
                (u64::MAX << from) & (u64::MAX >> (64 - to))
            };
            f(w, mask);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self &= other`.
    pub fn and_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other`.
    pub fn and_not_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `self |= other & mask([lo, hi))` — OR in another bitmap's bits,
    /// restricted to the `[lo, hi)` window.
    pub fn or_range(&mut self, other: &Bitmap, lo: usize, hi: usize) {
        debug_assert_eq!(self.len, other.len);
        Self::for_word_span(lo, hi, |w, mask| self.words[w] |= other.words[w] & mask);
    }

    /// Invoke `f(i)` for each set bit `i`, in ascending order.
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Column storage
// ---------------------------------------------------------------------------

/// Dictionary-encoded string column: a per-segment dictionary of
/// distinct strings in first-appearance order plus one `u32` code per
/// row. Null rows carry code 0 as a placeholder (masked by the null
/// bitmap); the dictionary is guaranteed non-empty whenever this
/// representation is chosen.
#[derive(Debug, Clone)]
pub(crate) struct DictColumn {
    pub dict: Vec<Arc<str>>,
    pub codes: Vec<u32>,
}

/// The typed backing store for one column.
#[derive(Debug, Clone)]
pub(crate) enum ColumnData {
    /// All non-null cells are `Value::Int`.
    Int(Vec<i64>),
    /// All non-null cells are `Value::Float`.
    Float(Vec<f64>),
    /// All non-null cells are `Value::Bool`.
    Bool(Vec<bool>),
    /// All non-null cells are `Value::Str` — dictionary encoded.
    Str(DictColumn),
    /// Type-mixed column: cells stored as-is (including nulls inline).
    Any(Vec<Value>),
}

/// One sealed-segment column: typed data plus an optional null bitmap.
///
/// Typed variants hold a placeholder (`0` / `0.0` / `false` / code 0)
/// at null positions; `nulls` is `None` when the column has no nulls.
/// The `Any` variant stores `Value::Null` inline and never has a
/// bitmap.
#[derive(Debug, Clone)]
pub(crate) struct Column {
    pub data: ColumnData,
    pub nulls: Option<Bitmap>,
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(d) => d.codes.len(),
            ColumnData::Any(v) => v.len(),
        }
    }

    fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n.get(i))
    }

    /// Materialize the cell at row `i` as an owned [`Value`].
    pub fn value_at(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Str(d) => Value::Str(Arc::clone(&d.dict[d.codes[i] as usize])),
            ColumnData::Any(v) => v[i].clone(),
        }
    }

    /// Append every cell to `out` in row order.
    pub fn extend_all(&self, out: &mut Vec<Value>) {
        match (&self.data, &self.nulls) {
            (ColumnData::Int(v), None) => out.extend(v.iter().map(|&x| Value::Int(x))),
            (ColumnData::Float(v), None) => out.extend(v.iter().map(|&x| Value::Float(x))),
            (ColumnData::Bool(v), None) => out.extend(v.iter().map(|&x| Value::Bool(x))),
            (ColumnData::Str(d), None) => out.extend(
                d.codes
                    .iter()
                    .map(|&c| Value::Str(Arc::clone(&d.dict[c as usize]))),
            ),
            (ColumnData::Any(v), _) => out.extend(v.iter().cloned()),
            _ => {
                for i in 0..self.len() {
                    out.push(self.value_at(i));
                }
            }
        }
    }

    /// Append the cells at selected rows to `out`.
    pub fn extend_selected(&self, sel: &Bitmap, out: &mut Vec<Value>) {
        sel.for_each_set(|i| out.push(self.value_at(i)));
    }

    /// AND the rows matching `op` against `lit` into `out`.
    ///
    /// Semantics are identical to evaluating `CmpOp::eval` on the
    /// materialized `Value` of every row: typed fast paths below
    /// reproduce `Value`'s total order (floats via `total_cmp`,
    /// cross-type via type rank) and then patch null positions with
    /// the constant verdict of `Null <op> lit`.
    pub fn eval(&self, op: CmpOp, lit: &Value, lo: usize, hi: usize, out: &mut Bitmap) {
        let mut sel = Bitmap::zeroes(self.len());
        match &self.data {
            ColumnData::Any(vals) => {
                for (i, v) in vals.iter().enumerate().take(hi).skip(lo) {
                    if op.eval(v, lit) {
                        sel.set(i);
                    }
                }
                out.and_assign(&sel);
                return;
            }
            ColumnData::Int(vals) => match numeric_lit(lit) {
                Some(NumLit::Int(b)) => {
                    fill_cmp(vals, lo, hi, &mut sel, |v| op_accepts(op, v.cmp(&b)))
                }
                Some(NumLit::Float(b)) => fill_cmp(vals, lo, hi, &mut sel, |v| {
                    op_accepts(op, (v as f64).total_cmp(&b))
                }),
                None => const_verdict(lit, op, lo, hi, &mut sel),
            },
            ColumnData::Float(vals) => match numeric_lit(lit) {
                Some(lit_f) => {
                    let b = match lit_f {
                        NumLit::Int(i) => i as f64,
                        NumLit::Float(f) => f,
                    };
                    fill_cmp(vals, lo, hi, &mut sel, |v| op_accepts(op, v.total_cmp(&b)));
                }
                None => const_verdict(lit, op, lo, hi, &mut sel),
            },
            ColumnData::Bool(vals) => match numeric_lit(lit) {
                Some(NumLit::Int(b)) => fill_cmp(vals, lo, hi, &mut sel, |v| {
                    op_accepts(op, (v as i64).cmp(&b))
                }),
                Some(NumLit::Float(b)) => fill_cmp(vals, lo, hi, &mut sel, |v| {
                    op_accepts(op, ((v as i64) as f64).total_cmp(&b))
                }),
                None => const_verdict(lit, op, lo, hi, &mut sel),
            },
            ColumnData::Str(d) => {
                if let Value::Str(s) = lit {
                    // Precompute the verdict per dictionary entry, then
                    // evaluate rows by code — equality compares codes.
                    let verdicts: Vec<bool> = d
                        .dict
                        .iter()
                        .map(|e| op_accepts(op, e.as_ref().cmp(s.as_ref())))
                        .collect();
                    for (i, &c) in d.codes.iter().enumerate().take(hi).skip(lo) {
                        if verdicts[c as usize] {
                            sel.set(i);
                        }
                    }
                } else {
                    // Str ranks above every non-Str value.
                    const_rank(op, Ordering::Greater, lo, hi, &mut sel);
                }
            }
        }
        // Typed columns hold placeholders at null positions: overwrite
        // those bits with the constant verdict of `Null <op> lit`.
        if let Some(nulls) = &self.nulls {
            if op.eval(&Value::Null, lit) {
                sel.or_range(nulls, lo, hi);
            } else {
                sel.and_not_assign(nulls);
            }
        }
        out.and_assign(&sel);
    }

    /// AND the rows equal to any of `values` into `out`.
    pub fn eval_in(&self, values: &[Value], lo: usize, hi: usize, out: &mut Bitmap) {
        let mut any = Bitmap::zeroes(self.len());
        for v in values {
            let mut one = Bitmap::ones_in_range(self.len(), lo, hi);
            self.eval(CmpOp::Eq, v, lo, hi, &mut one);
            any.or_range(&one, lo, hi);
        }
        out.and_assign(&any);
    }

    /// Min and max cell values under `Value`'s total order, preserving
    /// first-appearance ties (strict `<` / `>` updates) to match the
    /// row-major zone-map construction exactly.
    pub fn min_max(&self) -> Option<(Value, Value)> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        if let (ColumnData::Int(vals), None) = (&self.data, &self.nulls) {
            let mut lo = vals[0];
            let mut hi = vals[0];
            for &v in &vals[1..] {
                if v < lo {
                    lo = v;
                } else if v > hi {
                    hi = v;
                }
            }
            return Some((Value::Int(lo), Value::Int(hi)));
        }
        let mut lo = self.value_at(0);
        let mut hi = lo.clone();
        for i in 1..n {
            let v = self.value_at(i);
            if v < lo {
                lo = v;
            } else if v > hi {
                hi = v;
            }
        }
        Some((lo, hi))
    }

    /// Whether the column is non-decreasing under `Value`'s order.
    pub fn is_non_decreasing(&self) -> bool {
        if let (ColumnData::Int(vals), None) = (&self.data, &self.nulls) {
            return vals.windows(2).all(|w| w[0] <= w[1]);
        }
        (1..self.len()).all(|i| self.value_at(i - 1) <= self.value_at(i))
    }

    /// First row index whose value is `>= v` (column must be sorted).
    pub fn lower_bound(&self, v: &Value) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.value_at(mid) < *v {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First row index whose value is `> v` (column must be sorted).
    pub fn upper_bound(&self, v: &Value) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.value_at(mid) <= *v {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Approximate resident heap bytes of this column.
    pub fn mem_bytes(&self) -> usize {
        let data = match &self.data {
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(d) => {
                d.codes.len() * 4
                    + d.dict
                        .iter()
                        .map(|s| s.len() + std::mem::size_of::<Arc<str>>())
                        .sum::<usize>()
            }
            ColumnData::Any(v) => {
                v.len() * std::mem::size_of::<Value>()
                    + v.iter()
                        .map(|c| match c {
                            Value::Str(s) => s.len(),
                            _ => 0,
                        })
                        .sum::<usize>()
            }
        };
        let nulls = self.nulls.as_ref().map_or(0, |b| b.words.len() * 8);
        data + nulls
    }
}

// ---------------------------------------------------------------------------
// Predicate evaluation helpers
// ---------------------------------------------------------------------------

/// Does `op` accept an operand pair whose comparison is `ord`?
fn op_accepts(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// Numeric interpretation of a literal for comparison against a
/// numeric column, mirroring `Value`'s cross-type arms (`Bool`
/// compares as its integer value).
enum NumLit {
    Int(i64),
    Float(f64),
}

fn numeric_lit(lit: &Value) -> Option<NumLit> {
    match lit {
        Value::Int(i) => Some(NumLit::Int(*i)),
        Value::Bool(b) => Some(NumLit::Int(*b as i64)),
        Value::Float(f) => Some(NumLit::Float(*f)),
        _ => None,
    }
}

/// Set `sel[i]` for each `i` in `[lo, hi)` where `pred(vals[i])`.
fn fill_cmp<T: Copy>(vals: &[T], lo: usize, hi: usize, sel: &mut Bitmap, pred: impl Fn(T) -> bool) {
    for (i, &v) in vals.iter().enumerate().take(hi).skip(lo) {
        if pred(v) {
            sel.set(i);
        }
    }
}

/// Constant verdict for a whole typed column compared against a
/// literal of a different type rank: every non-null cell yields the
/// same ordering, so the range is either all-set or left clear.
fn const_verdict(lit: &Value, op: CmpOp, lo: usize, hi: usize, sel: &mut Bitmap) {
    // Numeric columns vs non-numeric literal: Null ranks below and Str
    // ranks above every number.
    let ord = match lit {
        Value::Null => Ordering::Greater,
        _ => Ordering::Less,
    };
    const_rank(op, ord, lo, hi, sel);
}

fn const_rank(op: CmpOp, ord: Ordering, lo: usize, hi: usize, sel: &mut Bitmap) {
    if op_accepts(op, ord) {
        sel.set_range(lo, hi);
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Incremental column builder used at seal time: adaptively promotes
/// to a typed representation and degrades to `Any` on the first
/// type-mixed cell.
pub(crate) struct ColumnBuilder {
    len: usize,
    nulls: Vec<u32>,
    data: BuilderData,
}

enum BuilderData {
    /// No non-null cell seen yet.
    Empty,
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Str {
        map: HashMap<Arc<str>, u32>,
        dict: Vec<Arc<str>>,
        codes: Vec<u32>,
    },
    Any(Vec<Value>),
}

impl ColumnBuilder {
    pub fn new() -> Self {
        ColumnBuilder {
            len: 0,
            nulls: Vec::new(),
            data: BuilderData::Empty,
        }
    }

    pub fn push(&mut self, v: &Value) {
        let i = self.len;
        self.len += 1;
        match (&mut self.data, v) {
            (BuilderData::Any(vals), _) => vals.push(v.clone()),
            (_, Value::Null) => {
                self.nulls.push(i as u32);
                match &mut self.data {
                    BuilderData::Empty => {}
                    BuilderData::Int(vals) => vals.push(0),
                    BuilderData::Float(vals) => vals.push(0.0),
                    BuilderData::Bool(vals) => vals.push(false),
                    BuilderData::Str { codes, .. } => codes.push(0),
                    // audit: allow(panic) — the `(Any, _)` arm above
                    // already consumed every Any case.
                    BuilderData::Any(_) => unreachable!(),
                }
            }
            (BuilderData::Empty, _) => {
                // First non-null cell: promote, backfilling the `i`
                // null placeholders seen so far.
                self.data = match v {
                    Value::Int(x) => {
                        let mut vals = vec![0i64; i];
                        vals.push(*x);
                        BuilderData::Int(vals)
                    }
                    Value::Float(x) => {
                        let mut vals = vec![0.0f64; i];
                        vals.push(*x);
                        BuilderData::Float(vals)
                    }
                    Value::Bool(x) => {
                        let mut vals = vec![false; i];
                        vals.push(*x);
                        BuilderData::Bool(vals)
                    }
                    Value::Str(s) => {
                        let mut map = HashMap::new();
                        map.insert(Arc::clone(s), 0u32);
                        let mut codes = vec![0u32; i];
                        codes.push(0);
                        BuilderData::Str {
                            map,
                            dict: vec![Arc::clone(s)],
                            codes,
                        }
                    }
                    // audit: allow(panic) — this arm promotes on the first
                    // NON-null cell; Null was handled by the arm above.
                    Value::Null => unreachable!(),
                };
            }
            (BuilderData::Int(vals), Value::Int(x)) => vals.push(*x),
            (BuilderData::Float(vals), Value::Float(x)) => vals.push(*x),
            (BuilderData::Bool(vals), Value::Bool(x)) => vals.push(*x),
            (BuilderData::Str { map, dict, codes }, Value::Str(s)) => {
                let code = match map.get(&**s) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        map.insert(Arc::clone(s), c);
                        dict.push(Arc::clone(s));
                        c
                    }
                };
                codes.push(code);
            }
            _ => {
                // Variant mismatch: degrade to Any and retry the push.
                self.degrade();
                if let BuilderData::Any(vals) = &mut self.data {
                    vals.push(v.clone());
                }
            }
        }
    }

    /// Materialize the typed prefix back into `Value`s and switch to
    /// the `Any` representation (nulls stored inline from here on).
    fn degrade(&mut self) {
        let prefix = self.len - 1;
        let mut vals = Vec::with_capacity(self.len);
        let mut null_cursor = 0usize;
        for i in 0..prefix {
            if null_cursor < self.nulls.len() && self.nulls[null_cursor] as usize == i {
                null_cursor += 1;
                vals.push(Value::Null);
                continue;
            }
            vals.push(match &self.data {
                BuilderData::Int(v) => Value::Int(v[i]),
                BuilderData::Float(v) => Value::Float(v[i]),
                BuilderData::Bool(v) => Value::Bool(v[i]),
                BuilderData::Str { dict, codes, .. } => {
                    Value::Str(Arc::clone(&dict[codes[i] as usize]))
                }
                // audit: allow(panic) — degrade is entered only from the
                // variant-mismatch push arm, where data is one of the
                // typed variants (Empty and Any have their own arms).
                BuilderData::Empty | BuilderData::Any(_) => unreachable!(),
            });
        }
        self.nulls.clear();
        self.data = BuilderData::Any(vals);
    }

    pub fn finish(self) -> Column {
        let nulls = if self.nulls.is_empty() {
            None
        } else {
            let mut b = Bitmap::zeroes(self.len);
            for &i in &self.nulls {
                b.set(i as usize);
            }
            Some(b)
        };
        match self.data {
            BuilderData::Empty => Column {
                data: ColumnData::Any(vec![Value::Null; self.len]),
                nulls: None,
            },
            BuilderData::Int(v) => Column {
                data: ColumnData::Int(v),
                nulls,
            },
            BuilderData::Float(v) => Column {
                data: ColumnData::Float(v),
                nulls,
            },
            BuilderData::Bool(v) => Column {
                data: ColumnData::Bool(v),
                nulls,
            },
            BuilderData::Str { dict, codes, .. } => Column {
                data: ColumnData::Str(DictColumn { dict, codes }),
                nulls,
            },
            BuilderData::Any(v) => Column {
                data: ColumnData::Any(v),
                nulls: None,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn build(cells: &[Value]) -> Column {
        let mut b = ColumnBuilder::new();
        for c in cells {
            b.push(c);
        }
        b.finish()
    }

    fn s(x: &str) -> Value {
        Value::Str(Arc::from(x))
    }

    fn oracle_eval(cells: &[Value], op: CmpOp, lit: &Value) -> Vec<usize> {
        cells
            .iter()
            .enumerate()
            .filter(|(_, v)| op.eval(v, lit))
            .map(|(i, _)| i)
            .collect()
    }

    fn col_eval(col: &Column, op: CmpOp, lit: &Value) -> Vec<usize> {
        let n = col.len();
        let mut sel = Bitmap::ones_in_range(n, 0, n);
        col.eval(op, lit, 0, n, &mut sel);
        let mut out = Vec::new();
        sel.for_each_set(|i| out.push(i));
        out
    }

    const OPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    #[test]
    fn builder_round_trips_every_shape() {
        let shapes: Vec<Vec<Value>> = vec![
            vec![Value::Int(3), Value::Int(-1), Value::Int(7)],
            vec![Value::Null, Value::Int(5), Value::Null, Value::Int(2)],
            vec![s("a"), s("b"), s("a"), Value::Null, s("c")],
            vec![Value::Float(1.5), Value::Float(f64::NAN), Value::Null],
            vec![Value::Bool(true), Value::Null, Value::Bool(false)],
            vec![Value::Int(1), s("mixed"), Value::Null, Value::Float(2.0)],
            vec![Value::Null, Value::Null],
            vec![],
        ];
        for cells in shapes {
            let col = build(&cells);
            assert_eq!(col.len(), cells.len());
            for (i, want) in cells.iter().enumerate() {
                assert_eq!(col.value_at(i), *want, "cell {i} of {cells:?}");
            }
            let mut all = Vec::new();
            col.extend_all(&mut all);
            assert_eq!(all, cells);
        }
    }

    #[test]
    fn dictionary_reuses_codes() {
        let col = build(&[s("x"), s("y"), s("x"), s("x")]);
        match &col.data {
            ColumnData::Str(d) => {
                assert_eq!(d.dict.len(), 2);
                assert_eq!(d.codes, vec![0, 1, 0, 0]);
            }
            other => panic!("expected dict column, got {other:?}"),
        }
    }

    #[test]
    fn eval_matches_row_major_oracle() {
        let columns: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Int(5), Value::Null, Value::Int(5)],
            vec![
                Value::Float(1.0),
                Value::Float(f64::NAN),
                Value::Null,
                Value::Float(-2.5),
            ],
            vec![Value::Bool(true), Value::Bool(false), Value::Null],
            vec![s("a"), s("bb"), Value::Null, s("a")],
            vec![Value::Int(1), s("zz"), Value::Float(2.0), Value::Null],
        ];
        let lits = vec![
            Value::Int(5),
            Value::Int(0),
            Value::Float(1.0),
            Value::Float(f64::NAN),
            Value::Bool(true),
            s("a"),
            s("m"),
            Value::Null,
        ];
        for cells in &columns {
            let col = build(cells);
            for op in OPS {
                for lit in &lits {
                    assert_eq!(
                        col_eval(&col, op, lit),
                        oracle_eval(cells, op, lit),
                        "cells={cells:?} op={op:?} lit={lit:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn eval_in_matches_oracle() {
        let cells = vec![Value::Int(1), Value::Int(2), Value::Null, Value::Int(4)];
        let col = build(&cells);
        let wanted = vec![Value::Int(2), Value::Int(4), Value::Int(9)];
        let n = col.len();
        let mut sel = Bitmap::ones_in_range(n, 0, n);
        col.eval_in(&wanted, 0, n, &mut sel);
        let mut got = Vec::new();
        sel.for_each_set(|i| got.push(i));
        let want: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter(|(_, v)| wanted.iter().any(|w| *v == w))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn min_max_and_bounds() {
        let col = build(&[Value::Int(3), Value::Int(3), Value::Int(9), Value::Int(1)]);
        assert_eq!(col.min_max(), Some((Value::Int(1), Value::Int(9))));
        assert!(!col.is_non_decreasing());

        let sorted = build(&[Value::Int(1), Value::Int(3), Value::Int(3), Value::Int(9)]);
        assert!(sorted.is_non_decreasing());
        assert_eq!(sorted.lower_bound(&Value::Int(3)), 1);
        assert_eq!(sorted.upper_bound(&Value::Int(3)), 3);
        assert_eq!(sorted.lower_bound(&Value::Int(10)), 4);
        assert_eq!(sorted.upper_bound(&Value::Int(0)), 0);
    }

    #[test]
    fn bitmap_ops() {
        let mut b = Bitmap::zeroes(130);
        b.set_range(60, 70);
        assert_eq!(b.count_ones(), 10);
        assert!(b.get(60) && b.get(69) && !b.get(70) && !b.get(59));
        let ones = Bitmap::ones_in_range(130, 0, 130);
        b.and_assign(&ones);
        assert_eq!(b.count_ones(), 10);
        let mut mask = Bitmap::zeroes(130);
        mask.set(65);
        b.and_not_assign(&mask);
        assert_eq!(b.count_ones(), 9);
        let mut acc = Bitmap::zeroes(130);
        acc.or_range(&b, 0, 64);
        assert_eq!(acc.count_ones(), 4); // bits 60..64
        let mut seen = Vec::new();
        acc.for_each_set(|i| seen.push(i));
        assert_eq!(seen, vec![60, 61, 62, 63]);
    }
}
