//! Write-ahead log: durability and crash recovery.
//!
//! `flor.commit()` is the paper's "application-level transaction commit
//! marker supporting visibility control for long-running processes"
//! (§2.1). The WAL gives that marker teeth: staged inserts reach the log
//! immediately, but recovery only surfaces rows whose transaction has a
//! commit marker — an uncommitted tail (crashed run) is invisible, exactly
//! the visibility semantics the paper describes.

use crate::codec::{decode_record, encode_record, CodecError, WalRecord};
use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Where the WAL lives: a real file, or in memory (for tests and
/// benchmarks that should not touch disk).
#[derive(Debug)]
pub enum WalBackend {
    /// Append to a file on disk.
    File {
        /// Open appendable handle.
        file: File,
        /// Path (for reopening).
        path: PathBuf,
    },
    /// Keep frames in a growable buffer.
    Memory(Vec<u8>),
}

/// The write-ahead log.
#[derive(Debug)]
pub struct Wal {
    backend: WalBackend,
    /// Count of appended records (for stats).
    pub records_written: u64,
    /// Physical log offset: total bytes in the log, including any prefix
    /// recovered from disk. Views use this (with the epoch) for cheap
    /// staleness checks without re-reading the log.
    pub bytes_written: u64,
}

impl Wal {
    /// Open (or create) a file-backed WAL.
    pub fn open(path: &Path) -> std::io::Result<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        let existing = file.metadata()?.len();
        Ok(Wal {
            backend: WalBackend::File {
                file,
                path: path.to_path_buf(),
            },
            records_written: 0,
            bytes_written: existing,
        })
    }

    /// Purely in-memory WAL.
    pub fn in_memory() -> Wal {
        Wal {
            backend: WalBackend::Memory(Vec::new()),
            records_written: 0,
            bytes_written: 0,
        }
    }

    /// Append a record. File backend writes through to the OS immediately
    /// (the file is opened in append mode); callers control transaction
    /// visibility via commit markers, not buffering.
    pub fn append(&mut self, rec: &WalRecord) -> std::io::Result<()> {
        let frame = encode_record(rec);
        match &mut self.backend {
            WalBackend::File { file, .. } => {
                file.write_all(&frame)?;
            }
            WalBackend::Memory(buf) => buf.extend_from_slice(&frame),
        }
        self.records_written += 1;
        self.bytes_written += frame.len() as u64;
        Ok(())
    }

    /// Force file contents to stable storage (no-op for memory).
    pub fn sync(&mut self) -> std::io::Result<()> {
        if let WalBackend::File { file, .. } = &mut self.backend {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Read back the raw byte stream.
    pub fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
        match &mut self.backend {
            WalBackend::File { path, .. } => {
                let mut f = File::open(path)?;
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                Ok(buf)
            }
            WalBackend::Memory(buf) => Ok(buf.clone()),
        }
    }

    /// Byte length of the log.
    pub fn len_bytes(&mut self) -> std::io::Result<u64> {
        Ok(self.read_all()?.len() as u64)
    }
}

/// Result of WAL recovery.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Rows from committed transactions, in log order: `(table, row)`.
    pub committed: Vec<(String, Vec<flor_df::Value>)>,
    /// Records belonging to transactions without a commit marker.
    pub discarded_uncommitted: usize,
    /// Whether a torn/corrupt tail was truncated away.
    pub torn_tail: bool,
    /// Highest transaction id seen (committed or not).
    pub max_txn: u64,
    /// Number of distinct committed transactions: the epoch a database
    /// recovered from this log resumes at.
    pub committed_txns: usize,
}

/// Replay a WAL byte stream, honouring commit markers.
///
/// Records after the first torn frame are dropped (append-only format: a
/// crash can only damage the tail). Inserts from transactions that never
/// committed are discarded.
pub fn recover(bytes: Vec<u8>) -> Result<Recovery, CodecError> {
    let mut buf = Bytes::from(bytes);
    let mut staged: Vec<(u64, String, Vec<flor_df::Value>)> = Vec::new();
    let mut committed_txns: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut rec = Recovery::default();
    loop {
        match decode_record(&mut buf) {
            Ok(Some(WalRecord::Insert { txn, table, row })) => {
                rec.max_txn = rec.max_txn.max(txn);
                staged.push((txn, table, row));
            }
            Ok(Some(WalRecord::Commit { txn })) => {
                rec.max_txn = rec.max_txn.max(txn);
                committed_txns.insert(txn);
            }
            Ok(None) => break,
            Err(CodecError::Truncated) => {
                rec.torn_tail = true;
                break;
            }
            Err(CodecError::BadChecksum) => {
                // Treat like a torn tail: everything from here on is suspect.
                rec.torn_tail = true;
                break;
            }
            Err(e) => return Err(e),
        }
    }
    rec.committed_txns = committed_txns.len();
    for (txn, table, row) in staged {
        if committed_txns.contains(&txn) {
            rec.committed.push((table, row));
        } else {
            rec.discarded_uncommitted += 1;
        }
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_df::Value;

    fn ins(txn: u64, table: &str, v: i64) -> WalRecord {
        WalRecord::Insert {
            txn,
            table: table.into(),
            row: vec![Value::Int(v)],
        }
    }

    #[test]
    fn committed_rows_recovered_in_order() {
        let mut wal = Wal::in_memory();
        wal.append(&ins(1, "logs", 10)).unwrap();
        wal.append(&ins(1, "logs", 11)).unwrap();
        wal.append(&WalRecord::Commit { txn: 1 }).unwrap();
        let rec = recover(wal.read_all().unwrap()).unwrap();
        assert_eq!(rec.committed.len(), 2);
        assert_eq!(rec.committed[0].1[0], Value::Int(10));
        assert_eq!(rec.committed[1].1[0], Value::Int(11));
        assert!(!rec.torn_tail);
    }

    #[test]
    fn uncommitted_tail_is_invisible() {
        let mut wal = Wal::in_memory();
        wal.append(&ins(1, "logs", 1)).unwrap();
        wal.append(&WalRecord::Commit { txn: 1 }).unwrap();
        wal.append(&ins(2, "logs", 2)).unwrap(); // never committed
        let rec = recover(wal.read_all().unwrap()).unwrap();
        assert_eq!(rec.committed.len(), 1);
        assert_eq!(rec.discarded_uncommitted, 1);
        assert_eq!(rec.max_txn, 2);
    }

    #[test]
    fn torn_tail_truncated() {
        let mut wal = Wal::in_memory();
        wal.append(&ins(1, "logs", 1)).unwrap();
        wal.append(&WalRecord::Commit { txn: 1 }).unwrap();
        let mut bytes = wal.read_all().unwrap();
        // Simulate a crash mid-append of a new frame.
        let extra = encode_record(&ins(2, "logs", 2));
        bytes.extend_from_slice(&extra[..extra.len() / 2]);
        let rec = recover(bytes).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.committed.len(), 1);
    }

    #[test]
    fn corrupt_middle_stops_replay_conservatively() {
        let mut wal = Wal::in_memory();
        wal.append(&ins(1, "logs", 1)).unwrap();
        wal.append(&WalRecord::Commit { txn: 1 }).unwrap();
        wal.append(&ins(2, "logs", 2)).unwrap();
        wal.append(&WalRecord::Commit { txn: 2 }).unwrap();
        let mut bytes = wal.read_all().unwrap();
        // Flip a payload byte in the third frame.
        let f1 = encode_record(&ins(1, "logs", 1)).len();
        let f2 = encode_record(&WalRecord::Commit { txn: 1 }).len();
        bytes[f1 + f2 + 13] ^= 0xff;
        let rec = recover(bytes).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.committed.len(), 1);
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("florwal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&ins(1, "logs", 99)).unwrap();
            wal.append(&WalRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            let rec = recover(wal.read_all().unwrap()).unwrap();
            assert_eq!(rec.committed.len(), 1);
            assert_eq!(rec.committed[0].1[0], Value::Int(99));
            // Appending after reopen extends, not truncates.
            wal.append(&ins(2, "logs", 100)).unwrap();
            wal.append(&WalRecord::Commit { txn: 2 }).unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            let rec = recover(wal.read_all().unwrap()).unwrap();
            assert_eq!(rec.committed.len(), 2);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_wal_recovers_empty() {
        let rec = recover(Vec::new()).unwrap();
        assert!(rec.committed.is_empty());
        assert!(!rec.torn_tail);
        assert_eq!(rec.max_txn, 0);
    }

    #[test]
    fn interleaved_transactions() {
        let mut wal = Wal::in_memory();
        wal.append(&ins(1, "a", 1)).unwrap();
        wal.append(&ins(2, "b", 2)).unwrap();
        wal.append(&ins(1, "a", 3)).unwrap();
        wal.append(&WalRecord::Commit { txn: 2 }).unwrap();
        // txn 1 never commits.
        let rec = recover(wal.read_all().unwrap()).unwrap();
        assert_eq!(rec.committed.len(), 1);
        assert_eq!(rec.committed[0].0, "b");
        assert_eq!(rec.discarded_uncommitted, 2);
    }
}
