//! Write-ahead log: durability and crash recovery.
//!
//! `flor.commit()` is the paper's "application-level transaction commit
//! marker supporting visibility control for long-running processes"
//! (§2.1). The WAL gives that marker teeth: staged inserts reach the log
//! immediately, but recovery only surfaces rows whose transaction has a
//! commit marker — an uncommitted tail (crashed run) is invisible, exactly
//! the visibility semantics the paper describes.
//!
//! Recovery *streams* frames from the log (a small reused buffer per
//! frame) instead of slurping the whole file into memory, so reopening a
//! database costs O(tail) memory no matter how long the history is. With
//! [`crate::checkpoint`] the tail itself is short: `Database::open` loads
//! the sidecar snapshot and replays only the records the checkpoint does
//! not cover (`base_txn` below).

use crate::codec::{decode_payload, encode_record, fnv1a, CodecError, WalRecord};
use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Fsync the directory containing `path`, making a just-completed rename
/// durable (file-content fsyncs alone do not order or persist the
/// directory entry).
fn fsync_dir(path: &Path) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    File::open(dir)?.sync_all()
}

/// Upper bound on a single frame's payload. Real frames are far smaller
/// (rows, plus occasional `obj_store` blobs); a length prefix beyond this
/// is treated as tail corruption rather than honoured with a giant
/// allocation.
const MAX_FRAME_BYTES: usize = 1 << 30;

/// Where the WAL lives: a real file, or in memory (for tests and
/// benchmarks that should not touch disk).
#[derive(Debug)]
pub enum WalBackend {
    /// Append to a file on disk.
    File {
        /// Open appendable handle.
        file: File,
        /// Path (for reopening).
        path: PathBuf,
    },
    /// Keep frames in a growable buffer.
    Memory(Vec<u8>),
}

/// The write-ahead log.
#[derive(Debug)]
pub struct Wal {
    backend: WalBackend,
    /// Count of appended records (for stats).
    pub records_written: u64,
    /// Physical log offset: total bytes in the log, including any prefix
    /// recovered from disk. Views use this (with the epoch) for cheap
    /// staleness checks without re-reading the log.
    pub bytes_written: u64,
}

/// Errors surfaced by WAL recovery: I/O on the log file, or a frame that
/// is structurally bad in a way truncation can't explain.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Frame decode failure.
    Codec(CodecError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Codec(e) => write!(f, "wal codec error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl Wal {
    /// Open (or create) a file-backed WAL.
    pub fn open(path: &Path) -> std::io::Result<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        let existing = file.metadata()?.len();
        Ok(Wal {
            backend: WalBackend::File {
                file,
                path: path.to_path_buf(),
            },
            records_written: 0,
            bytes_written: existing,
        })
    }

    /// Purely in-memory WAL.
    pub fn in_memory() -> Wal {
        Wal {
            backend: WalBackend::Memory(Vec::new()),
            records_written: 0,
            bytes_written: 0,
        }
    }

    /// The path of a file-backed log.
    pub fn path(&self) -> Option<&Path> {
        match &self.backend {
            WalBackend::File { path, .. } => Some(path),
            WalBackend::Memory(_) => None,
        }
    }

    /// Append a record. File backend writes through to the OS immediately
    /// (the file is opened in append mode); callers control transaction
    /// visibility via commit markers, not buffering.
    pub fn append(&mut self, rec: &WalRecord) -> std::io::Result<()> {
        let frame = encode_record(rec);
        match &mut self.backend {
            WalBackend::File { file, .. } => {
                file.write_all(&frame)?;
            }
            WalBackend::Memory(buf) => buf.extend_from_slice(&frame),
        }
        self.records_written += 1;
        self.bytes_written += frame.len() as u64;
        Ok(())
    }

    /// Force file contents to stable storage (no-op for memory).
    pub fn sync(&mut self) -> std::io::Result<()> {
        if let WalBackend::File { file, .. } = &mut self.backend {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Byte length of the log. Bookkept, not re-read: `bytes_written`
    /// includes any prefix found on disk at open time.
    pub fn len_bytes(&self) -> u64 {
        self.bytes_written
    }

    /// Replay the log, streaming frames (no full-log buffering), skipping
    /// every record with `txn <= base_txn` — the transactions a checkpoint
    /// already covers. `base_txn == 0` replays everything.
    pub fn recover(&self, base_txn: u64) -> Result<Recovery, WalError> {
        match &self.backend {
            WalBackend::File { path, .. } => {
                let f = File::open(path)?;
                recover_frames(BufReader::new(f), base_txn)
            }
            WalBackend::Memory(buf) => recover_frames(buf.as_slice(), base_txn),
        }
    }

    /// Atomically replace the log's contents with `records` — the
    /// checkpoint truncation step. File backend stages the new log in a
    /// sidecar temp file, fsyncs it, renames it over the old log, and
    /// fsyncs the directory, so a crash at any point leaves either the
    /// complete old log or the complete new one; memory backend just
    /// swaps the buffer.
    pub fn rewrite(&mut self, records: &[WalRecord]) -> std::io::Result<()> {
        let mut bytes = Vec::new();
        for rec in records {
            bytes.extend_from_slice(&encode_record(rec));
        }
        match &mut self.backend {
            WalBackend::File { file, path } => {
                let tmp = PathBuf::from(format!("{}.rewrite", path.display()));
                {
                    let mut t = File::create(&tmp)?;
                    t.write_all(&bytes)?;
                    t.sync_data()?;
                }
                std::fs::rename(&tmp, &*path)?;
                fsync_dir(path)?;
                // The old handle points at the unlinked inode; reopen.
                *file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .read(true)
                    .open(path)?;
            }
            WalBackend::Memory(buf) => {
                *buf = bytes.clone();
            }
        }
        self.records_written = records.len() as u64;
        self.bytes_written = bytes.len() as u64;
        Ok(())
    }
}

/// A partially-built replacement log: the kept tail of `[0, upto)`
/// already staged (and fsynced) at `<wal>.rewrite`. Built with *no*
/// database lock held; [`Wal::finish_rewrite`] completes it under the
/// lock by appending only what committed since.
pub struct TailStage {
    tmp_path: PathBuf,
    file: File,
    records: u64,
}

/// Stage the kept tail of the log file at `path`: decode the frames in
/// `[0, upto)` — `upto` must be an offset captured under the database
/// lock, so every frame below it is complete — keep those with
/// `txn > keep_txn_above`, write them to `<path>.rewrite`, and fsync.
/// Runs lock-free; the bulk of the truncation I/O happens here.
pub fn stage_tail(path: &Path, upto: u64, keep_txn_above: u64) -> Result<TailStage, WalError> {
    let f = File::open(path)?;
    let records = read_records(BufReader::new(f).take(upto), keep_txn_above)?;
    let tmp_path = PathBuf::from(format!("{}.rewrite", path.display()));
    let mut file = File::create(&tmp_path)?;
    for rec in &records {
        file.write_all(&encode_record(rec))?;
    }
    file.sync_data()?;
    Ok(TailStage {
        tmp_path,
        file,
        records: records.len() as u64,
    })
}

impl Wal {
    /// Complete a staged rewrite under the database write lock: append
    /// the records that landed at or past `from` (only what committed
    /// while the stage was built — the fsync pays for the small delta,
    /// not the whole tail), rename the staged file over the log, fsync
    /// the directory, and reopen the append handle.
    pub fn finish_rewrite(
        &mut self,
        mut stage: TailStage,
        from: u64,
        keep_txn_above: u64,
    ) -> Result<(), WalError> {
        let WalBackend::File { file, path } = &mut self.backend else {
            return Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "finish_rewrite requires a file-backed log",
            )));
        };
        let mut reader = File::open(&*path)?;
        reader.seek(SeekFrom::Start(from))?;
        let delta = read_records(BufReader::new(reader), keep_txn_above)?;
        for rec in &delta {
            stage.file.write_all(&encode_record(rec))?;
        }
        stage.records += delta.len() as u64;
        stage.file.sync_data()?;
        std::fs::rename(&stage.tmp_path, &*path)?;
        fsync_dir(path)?;
        *file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&*path)?;
        self.records_written = stage.records;
        self.bytes_written = file.metadata().map_err(WalError::Io)?.len();
        Ok(())
    }
}

/// Result of WAL recovery.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Rows from committed transactions, in log order: `(table, row)`.
    pub committed: Vec<(String, Vec<flor_df::Value>)>,
    /// Records belonging to transactions without a commit marker.
    pub discarded_uncommitted: usize,
    /// Whether a torn/corrupt tail was truncated away.
    pub torn_tail: bool,
    /// Highest transaction id seen (committed or not).
    pub max_txn: u64,
    /// Number of distinct committed transactions replayed — the epochs
    /// the log tail adds on top of a checkpoint's epoch.
    pub committed_txns: usize,
    /// Frames decoded from the log, including skipped and uncommitted
    /// ones — the physical replay cost of this recovery.
    pub records_replayed: usize,
    /// Frames skipped because a checkpoint already covered their
    /// transaction (`txn <= base_txn`).
    pub records_skipped: usize,
}

/// Read one `[len:u32][crc:u64][payload]` frame from `r`. Returns
/// `Ok(None)` at a clean end of stream; a partial header/payload or a
/// checksum mismatch reads as a torn tail (`Err(Truncated)` /
/// `Err(BadChecksum)`). On success the record comes with its framed size
/// in bytes (header + payload), so streaming readers can track exact
/// byte offsets.
fn read_frame(r: &mut impl Read) -> Result<Option<(WalRecord, u64)>, WalError> {
    let mut header = [0u8; 12];
    match read_exact_or_eof(r, &mut header)? {
        FillResult::Empty => return Ok(None),
        FillResult::Partial => return Err(WalError::Codec(CodecError::Truncated)),
        FillResult::Full => {}
    }
    // audit: allow(panic) — `header` is a [u8; 12] filled by
    // read_exact_or_eof; the fixed-offset slices always convert.
    let len = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u64::from_be_bytes(header[4..12].try_into().expect("8 bytes")); // audit: allow(panic) — fixed [u8; 12] header
    if len > MAX_FRAME_BYTES {
        return Err(WalError::Codec(CodecError::Truncated));
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(r, &mut payload)? {
        FillResult::Full => {}
        _ => return Err(WalError::Codec(CodecError::Truncated)),
    }
    if fnv1a(&payload) != crc {
        return Err(WalError::Codec(CodecError::BadChecksum));
    }
    decode_payload(Bytes::from(payload))
        .map(|rec| Some((rec, 12 + len as u64)))
        .map_err(WalError::Codec)
}

enum FillResult {
    Full,
    Empty,
    Partial,
}

/// `read_exact`, but distinguishing "stream ended before the first byte"
/// from "stream ended mid-buffer" (a torn frame).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<FillResult> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 => {
                return Ok(if filled == 0 {
                    FillResult::Empty
                } else {
                    FillResult::Partial
                })
            }
            n => filled += n,
        }
    }
    Ok(FillResult::Full)
}

/// Replay a WAL frame stream, honouring commit markers and skipping
/// records whose transaction a checkpoint already covers
/// (`txn <= base_txn`).
///
/// Records after the first torn frame are dropped (append-only format: a
/// crash can only damage the tail). Inserts from transactions that never
/// committed are discarded.
pub fn recover_frames(mut read: impl Read, base_txn: u64) -> Result<Recovery, WalError> {
    let mut staged: Vec<(u64, String, Vec<flor_df::Value>)> = Vec::new();
    let mut committed_txns: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut rec = Recovery::default();
    loop {
        match read_frame(&mut read) {
            Ok(Some((WalRecord::Insert { txn, table, row }, _))) => {
                rec.records_replayed += 1;
                rec.max_txn = rec.max_txn.max(txn);
                if txn <= base_txn {
                    rec.records_skipped += 1;
                    continue;
                }
                staged.push((txn, table, row));
            }
            Ok(Some((WalRecord::Commit { txn }, _))) => {
                rec.records_replayed += 1;
                rec.max_txn = rec.max_txn.max(txn);
                if txn <= base_txn {
                    rec.records_skipped += 1;
                    continue;
                }
                committed_txns.insert(txn);
            }
            Ok(None) => break,
            Err(WalError::Codec(CodecError::Truncated | CodecError::BadChecksum)) => {
                // Torn or corrupt: everything from here on is suspect.
                rec.torn_tail = true;
                break;
            }
            Err(e) => return Err(e),
        }
    }
    rec.committed_txns = committed_txns.len();
    for (txn, table, row) in staged {
        if committed_txns.contains(&txn) {
            rec.committed.push((table, row));
        } else {
            rec.discarded_uncommitted += 1;
        }
    }
    Ok(rec)
}

/// Replay an in-memory WAL byte stream from its start (no checkpoint
/// base). Convenience for tests and tools holding raw bytes.
pub fn recover(bytes: &[u8]) -> Result<Recovery, CodecError> {
    recover_frames(bytes, 0).map_err(|e| match e {
        WalError::Codec(c) => c,
        // A slice reader cannot fail with a real I/O error.
        WalError::Io(e) => CodecError::Malformed(e.to_string()),
    })
}

/// Collect the full record stream of a reader, stopping at a torn tail —
/// what the checkpoint truncation step uses to carry the post-checkpoint
/// tail (and any open transaction's staged inserts) into the fresh log.
pub fn read_records(mut read: impl Read, keep_txn_above: u64) -> Result<Vec<WalRecord>, WalError> {
    let mut out = Vec::new();
    loop {
        match read_frame(&mut read) {
            Ok(Some((rec, _))) => {
                let txn = match &rec {
                    WalRecord::Insert { txn, .. } | WalRecord::Commit { txn } => *txn,
                };
                if txn > keep_txn_above {
                    out.push(rec);
                }
            }
            Ok(None) => break,
            Err(WalError::Codec(CodecError::Truncated | CodecError::BadChecksum)) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

impl Wal {
    /// The log's records with `txn > keep_txn_above`, streamed from the
    /// backend — the tail a checkpoint must preserve.
    pub fn tail_records(&self, keep_txn_above: u64) -> Result<Vec<WalRecord>, WalError> {
        match &self.backend {
            WalBackend::File { path, .. } => {
                let f = File::open(path)?;
                read_records(BufReader::new(f), keep_txn_above)
            }
            WalBackend::Memory(buf) => read_records(buf.as_slice(), keep_txn_above),
        }
    }
}

/// One incremental read of a live log, produced by [`tail_from`].
#[derive(Debug)]
pub enum TailChunk {
    /// Complete frames decoded from `[offset, new_offset)`. A partial
    /// frame at end of file (the writer mid-append) is left unconsumed:
    /// the next poll re-reads it from `new_offset` once it is whole.
    Frames {
        /// Decoded records, in log order.
        records: Vec<WalRecord>,
        /// Byte offset of the first unconsumed frame.
        new_offset: u64,
    },
    /// The log shrank below `offset`, vanished, or the bytes at `offset`
    /// no longer parse as frames: a checkpoint rewrote the log under the
    /// reader, so byte offsets into the old log are void. Re-bootstrap
    /// from the checkpoint sidecar.
    Truncated,
}

/// Stream complete frames from the log file at `path`, starting at byte
/// `offset` — the follower's incremental tailing primitive. Unlike
/// [`recover_frames`] this does **not** interpret commit markers: it
/// returns raw records plus the exact offset consumed, so a caller can
/// poll repeatedly and carry uncommitted transactions across polls.
///
/// The three outcomes:
/// - complete frames (possibly none) and a new offset — the common poll;
/// - a torn final frame — the writer is mid-append; the complete prefix
///   is returned and the torn frame stays unconsumed;
/// - [`TailChunk::Truncated`] — the log was rewritten (checkpoint
///   truncation); the caller must re-bootstrap from the sidecar.
pub fn tail_from(path: &Path, offset: u64) -> Result<TailChunk, WalError> {
    let f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // No log yet is a valid (empty) tail only from the start.
            return Ok(if offset == 0 {
                TailChunk::Frames {
                    records: Vec::new(),
                    new_offset: 0,
                }
            } else {
                TailChunk::Truncated
            });
        }
        Err(e) => return Err(WalError::Io(e)),
    };
    if f.metadata()?.len() < offset {
        return Ok(TailChunk::Truncated);
    }
    let mut r = BufReader::new(f);
    r.seek(SeekFrom::Start(offset))?;
    let mut records = Vec::new();
    let mut consumed = 0u64;
    loop {
        match read_frame(&mut r) {
            Ok(Some((rec, n))) => {
                consumed += n;
                records.push(rec);
            }
            Ok(None) => break,
            // Partial frame at EOF: the writer is mid-append (or a crash
            // left a torn tail). Surface the complete prefix; the caller
            // re-reads from `new_offset` next poll.
            Err(WalError::Codec(CodecError::Truncated)) => break,
            // Structurally bad bytes that a short read cannot explain
            // (checksum/tag/shape): `offset` is not a frame boundary in
            // this file any more — the log was rewritten underneath us.
            Err(WalError::Codec(_)) => return Ok(TailChunk::Truncated),
            Err(e) => return Err(e),
        }
    }
    Ok(TailChunk::Frames {
        records,
        new_offset: offset + consumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_df::Value;

    fn ins(txn: u64, table: &str, v: i64) -> WalRecord {
        WalRecord::Insert {
            txn,
            table: table.into(),
            row: vec![Value::Int(v)],
        }
    }

    fn frames(recs: &[WalRecord]) -> Vec<u8> {
        let mut all = Vec::new();
        for r in recs {
            all.extend_from_slice(&encode_record(r));
        }
        all
    }

    #[test]
    fn committed_rows_recovered_in_order() {
        let mut wal = Wal::in_memory();
        wal.append(&ins(1, "logs", 10)).unwrap();
        wal.append(&ins(1, "logs", 11)).unwrap();
        wal.append(&WalRecord::Commit { txn: 1 }).unwrap();
        let rec = wal.recover(0).unwrap();
        assert_eq!(rec.committed.len(), 2);
        assert_eq!(rec.committed[0].1[0], Value::Int(10));
        assert_eq!(rec.committed[1].1[0], Value::Int(11));
        assert_eq!(rec.records_replayed, 3);
        assert!(!rec.torn_tail);
    }

    #[test]
    fn uncommitted_tail_is_invisible() {
        let mut wal = Wal::in_memory();
        wal.append(&ins(1, "logs", 1)).unwrap();
        wal.append(&WalRecord::Commit { txn: 1 }).unwrap();
        wal.append(&ins(2, "logs", 2)).unwrap(); // never committed
        let rec = wal.recover(0).unwrap();
        assert_eq!(rec.committed.len(), 1);
        assert_eq!(rec.discarded_uncommitted, 1);
        assert_eq!(rec.max_txn, 2);
    }

    #[test]
    fn base_txn_skips_checkpointed_transactions() {
        let mut wal = Wal::in_memory();
        wal.append(&ins(1, "logs", 1)).unwrap();
        wal.append(&WalRecord::Commit { txn: 1 }).unwrap();
        wal.append(&ins(2, "logs", 2)).unwrap();
        wal.append(&WalRecord::Commit { txn: 2 }).unwrap();
        let rec = wal.recover(1).unwrap();
        assert_eq!(rec.committed.len(), 1);
        assert_eq!(rec.committed[0].1[0], Value::Int(2));
        assert_eq!(rec.committed_txns, 1);
        assert_eq!(rec.records_skipped, 2);
        assert_eq!(rec.max_txn, 2, "max_txn still counts skipped frames");
    }

    #[test]
    fn torn_tail_truncated() {
        let mut bytes = frames(&[ins(1, "logs", 1), WalRecord::Commit { txn: 1 }]);
        // Simulate a crash mid-append of a new frame.
        let extra = encode_record(&ins(2, "logs", 2));
        bytes.extend_from_slice(&extra[..extra.len() / 2]);
        let rec = recover(&bytes).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.committed.len(), 1);
    }

    #[test]
    fn corrupt_middle_stops_replay_conservatively() {
        let mut bytes = frames(&[
            ins(1, "logs", 1),
            WalRecord::Commit { txn: 1 },
            ins(2, "logs", 2),
            WalRecord::Commit { txn: 2 },
        ]);
        // Flip a payload byte in the third frame.
        let f1 = encode_record(&ins(1, "logs", 1)).len();
        let f2 = encode_record(&WalRecord::Commit { txn: 1 }).len();
        bytes[f1 + f2 + 13] ^= 0xff;
        let rec = recover(&bytes).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.committed.len(), 1);
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("florwal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&ins(1, "logs", 99)).unwrap();
            wal.append(&WalRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            let rec = wal.recover(0).unwrap();
            assert_eq!(rec.committed.len(), 1);
            assert_eq!(rec.committed[0].1[0], Value::Int(99));
            // Appending after reopen extends, not truncates.
            wal.append(&ins(2, "logs", 100)).unwrap();
            wal.append(&WalRecord::Commit { txn: 2 }).unwrap();
        }
        {
            let wal = Wal::open(&path).unwrap();
            let rec = wal.recover(0).unwrap();
            assert_eq!(rec.committed.len(), 2);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rewrite_replaces_log_atomically() {
        let dir = std::env::temp_dir().join(format!("florwal-rw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rewrite.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        for t in 1..=5u64 {
            wal.append(&ins(t, "logs", t as i64)).unwrap();
            wal.append(&WalRecord::Commit { txn: t }).unwrap();
        }
        let tail = wal.tail_records(3).unwrap();
        assert_eq!(tail.len(), 4, "two txns × (insert + commit)");
        wal.rewrite(&tail).unwrap();
        assert_eq!(wal.records_written, 4);
        // The rewritten log recovers only the preserved tail...
        let rec = wal.recover(0).unwrap();
        assert_eq!(rec.committed.len(), 2);
        assert_eq!(rec.committed[0].1[0], Value::Int(4));
        // ...and stays appendable afterwards.
        wal.append(&ins(6, "logs", 6)).unwrap();
        wal.append(&WalRecord::Commit { txn: 6 }).unwrap();
        let rec = Wal::open(&path).unwrap().recover(0).unwrap();
        assert_eq!(rec.committed.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_wal_recovers_empty() {
        let rec = recover(&[]).unwrap();
        assert!(rec.committed.is_empty());
        assert!(!rec.torn_tail);
        assert_eq!(rec.max_txn, 0);
        assert_eq!(rec.records_replayed, 0);
    }

    #[test]
    fn tail_from_streams_incrementally() {
        let dir = std::env::temp_dir().join(format!("florwal-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.wal");
        let _ = std::fs::remove_file(&path);
        // Tailing a not-yet-created log from the start is an empty chunk.
        match tail_from(&path, 0).unwrap() {
            TailChunk::Frames {
                records,
                new_offset,
            } => {
                assert!(records.is_empty());
                assert_eq!(new_offset, 0);
            }
            TailChunk::Truncated => panic!("missing log at offset 0 is an empty tail"),
        }
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&ins(1, "logs", 1)).unwrap();
        wal.append(&WalRecord::Commit { txn: 1 }).unwrap();
        let off1 = match tail_from(&path, 0).unwrap() {
            TailChunk::Frames {
                records,
                new_offset,
            } => {
                assert_eq!(records.len(), 2);
                assert_eq!(new_offset, wal.len_bytes());
                new_offset
            }
            TailChunk::Truncated => panic!("clean log"),
        };
        // Append more; a poll from the saved offset sees only the delta.
        wal.append(&ins(2, "logs", 2)).unwrap();
        match tail_from(&path, off1).unwrap() {
            TailChunk::Frames {
                records,
                new_offset,
            } => {
                assert_eq!(records.len(), 1);
                assert_eq!(new_offset, wal.len_bytes());
            }
            TailChunk::Truncated => panic!("clean log"),
        }
        // A torn final frame (writer mid-append) yields the complete
        // prefix and leaves the torn bytes unconsumed.
        let torn = encode_record(&ins(3, "logs", 3));
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        raw.write_all(&torn[..torn.len() / 2]).unwrap();
        match tail_from(&path, off1).unwrap() {
            TailChunk::Frames {
                records,
                new_offset,
            } => {
                assert_eq!(records.len(), 1, "only the complete frame");
                assert_eq!(new_offset, wal.len_bytes(), "torn bytes unconsumed");
            }
            TailChunk::Truncated => panic!("a torn tail is not a rewrite"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tail_from_detects_rewrite() {
        let dir = std::env::temp_dir().join(format!("florwal-tailrw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tailrw.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        for t in 1..=6u64 {
            wal.append(&ins(t, "logs", t as i64)).unwrap();
            wal.append(&WalRecord::Commit { txn: t }).unwrap();
        }
        let old_len = wal.len_bytes();
        // Truncating rewrite: the file shrinks below the reader's offset.
        let tail = wal.tail_records(5).unwrap();
        wal.rewrite(&tail).unwrap();
        assert!(wal.len_bytes() < old_len);
        assert!(matches!(
            tail_from(&path, old_len).unwrap(),
            TailChunk::Truncated
        ));
        // An offset inside the new, shorter file that is not a frame
        // boundary reads as a rewrite too (checksum/shape mismatch), not
        // as frames.
        if wal.len_bytes() > 4 {
            match tail_from(&path, 3).unwrap() {
                TailChunk::Truncated => {}
                TailChunk::Frames { records, .. } => {
                    assert!(
                        records.is_empty(),
                        "misaligned offset must never decode records"
                    );
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interleaved_transactions() {
        let mut wal = Wal::in_memory();
        wal.append(&ins(1, "a", 1)).unwrap();
        wal.append(&ins(2, "b", 2)).unwrap();
        wal.append(&ins(1, "a", 3)).unwrap();
        wal.append(&WalRecord::Commit { txn: 2 }).unwrap();
        // txn 1 never commits.
        let rec = wal.recover(0).unwrap();
        assert_eq!(rec.committed.len(), 1);
        assert_eq!(rec.committed[0].0, "b");
        assert_eq!(rec.discarded_uncommitted, 2);
    }
}
