//! # flor-store — the embedded relational engine under FlorDB
//!
//! The FlorDB paper (CIDR 2025) backs its context framework with a
//! relational data model (Fig. 1): `logs`, `loops`, `ts2vid`, `git`,
//! `obj_store` and `build_deps`. This crate is that storage layer, built
//! from scratch:
//!
//! * typed [`schema::TableSchema`]s, including [`schema::flor_schema`] —
//!   the paper's six tables verbatim;
//! * an append-only, CRC-framed [`wal`] with *streaming* crash recovery
//!   that honours transaction commit markers (the semantics of
//!   `flor.commit()`, §2.1: staged rows are invisible until the marker
//!   lands);
//! * an MVCC table layout — immutable, `Arc`-shared sealed segments —
//!   where [`db::Database::pin`] hands out epoch-stamped
//!   [`db::Snapshot`]s in O(1) and every scan runs **lock-free**:
//!   readers never block the writer and the writer never blocks readers
//!   (see the [`db`] module docs for the full concurrency model);
//! * **columnar segments**: sealing transposes rows into typed column
//!   vectors (`i64`/`f64`/`bool` plus a null bitmap) with string columns
//!   **dictionary-encoded** — one `Arc<str>` per distinct value, `u32`
//!   codes per row — so predicates run as tight loops over primitive
//!   vectors producing selection bitmaps, and only the selected rows
//!   ever materialise [`flor_df::Value`]s; the same seal pass builds the
//!   secondary-index postings and zone maps;
//! * **sorted clustering**: a table may declare a [`schema::ClusterBy`]
//!   column (`logs` clusters by `tstamp`) — compaction sorts rewritten
//!   segments by it, so their zone maps become disjoint and range scans
//!   binary-search into each admitted segment instead of filtering it;
//! * [`checkpoint`]ing: `Database::checkpoint` serializes the live state
//!   to a sidecar — a **columnar body** (version 2) whose string columns
//!   are dictionary-encoded on disk, with version-1 row-major sidecars
//!   from earlier builds still read transparently — and truncates the
//!   WAL, making reopen O(live data) instead of O(history);
//! * **read-only followers**: [`db::Database::open_follower`] bootstraps
//!   from the sidecar, then tails the live WAL incrementally
//!   ([`wal::tail_from`] + [`db::Database::poll_tail`]) so a second
//!   process serves the same data with staleness bounded by its poll
//!   interval — checkpoint truncation under the reader triggers a clean
//!   re-bootstrap, and every mutating call returns
//!   [`db::StoreError::ReadOnly`];
//! * background segment [`compact`]ion: `Database::compact` merges runs
//!   of cold sealed segments and drops rows superseded under a table's
//!   declared [`schema::LatestWins`] policy, so scans touch only live
//!   data — published by the same pointer swap commits use, invisible to
//!   pinned snapshots and the change feed (see the [`db`] module docs on
//!   the seal → coalesce → compact → checkpoint lifecycle);
//! * secondary hash indexes (per sealed segment) and a [`query::Query`]
//!   layer with predicate pushdown plus seal-time zone maps (per-segment
//!   min/max) that prune whole segments from range scans ("NoSQL-like
//!   writes, SQL-like reads", §3.1) — `order_by` + `limit` queries run a
//!   bounded-heap **streaming top-K** instead of a full sort, surfaced
//!   as [`query::OrderPath`] in the explain output;
//! * materialisation into `flor-df` [`flor_df::DataFrame`]s, feeding the
//!   pivoted `flor.dataframe` view.
//!
//! ```
//! use flor_store::{Database, Query, schema::flor_schema};
//! let db = Database::in_memory(flor_schema());
//! db.insert("logs", vec![
//!     "demo".into(), 1.into(), "train.fl".into(), 0.into(),
//!     "loss".into(), "0.25".into(), 3.into(),
//! ]).unwrap();
//! db.commit().unwrap();
//! let df = Query::table("logs").filter_eq("value_name", "loss").execute(&db).unwrap();
//! assert_eq!(df.n_rows(), 1);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub(crate) mod column;
pub mod compact;
pub mod db;
pub mod feed;
pub(crate) mod metrics;
pub mod query;
pub mod schema;
pub mod wal;

pub use checkpoint::SidecarMark;
pub use compact::{CompactionPolicy, CompactionStats, CompactionTrigger};
pub use db::{
    CheckpointStats, Database, DbStats, RecoveryInfo, Snapshot, StoreError, StoreResult,
    TailProgress,
};
pub use feed::{CommitBatch, RowDelta, Subscription};
pub use flor_obs::{MetricsRegistry, MetricsSnapshot};
pub use query::{AccessPath, CmpOp, OrderPath, Predicate, Query, QueryExplain};
pub use schema::{flor_schema, ClusterBy, ColType, ColumnDef, LatestWins, TableSchema};
