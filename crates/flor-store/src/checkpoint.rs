//! Checkpoints: O(live-data) recovery instead of O(history) replay.
//!
//! The WAL is append-only and latest-wins tables (`jobs`, and much of
//! `logs`/`loops` after hindsight backfill) accumulate long dead
//! prefixes, so replaying the whole log on `Database::open` costs time
//! proportional to everything that *ever* happened. A checkpoint
//! serializes the committed state — the sealed segments of a pinned
//! [`crate::db::Snapshot`] — into a sidecar file next to the WAL, then
//! truncates the log down to the records the checkpoint does not cover.
//! Recovery becomes: load the sidecar (O(live rows)), then replay only
//! the short WAL tail.
//!
//! Crash safety is rename-based, in two independently-atomic steps:
//!
//! 1. The sidecar is staged at `<wal>.ckpt.tmp`, fsynced, and renamed to
//!    `<wal>.ckpt`. A crash before the rename leaves the old state
//!    (previous sidecar, full WAL) — recovery is unchanged.
//! 2. The WAL is rewritten via [`crate::wal::Wal::rewrite`] (stage, fsync,
//!    rename) keeping only records with `txn > max_txn`. A crash *between*
//!    steps leaves the new sidecar plus the full WAL: replay skips every
//!    record the checkpoint covers (`txn <= max_txn`), so recovery still
//!    converges to the same state — the property the
//!    `checkpoint_recovery` tests assert.
//!
//! The sidecar is one CRC-guarded blob:
//! `[magic u32][version u8][fnv u64 of body][body]` where the body is
//! `[epoch u64][max_txn u64][n_tables u16]` followed by one block per
//! table. Two body versions exist:
//!
//! * **Version 1** (row-major, legacy): per table
//!   `[name_len u16][name][n_rows u64][rows…]` in [`crate::codec`] row
//!   encoding. Still *read* transparently — a database checkpointed
//!   before the columnar refactor reopens cleanly.
//! * **Version 2** (columnar, written since the columnar segment
//!   layout): per table `[name_len u16][name][n_rows u64][n_cols u16]`
//!   then per column `[enc u8]` + payload. `enc = 0` (plain) is
//!   `n_rows` tagged values; `enc = 1` (dictionary) is
//!   `[n_dict u32][dict strings as u32-len + bytes][n_rows × u32
//!   codes]` with the out-of-range code `n_dict` standing for null —
//!   chosen for string columns whose distinct count is at most half the
//!   row count, so string-heavy tables (`logs.value`, `git.contents`)
//!   serialize each distinct string once.
//!
//! [`encode_checkpoint`] writes version 2 (falling back to version 1
//! for the shape it cannot express: tables with non-uniform row arity,
//! impossible through the schema'd write path); [`decode_checkpoint`]
//! and [`peek_sidecar`] accept both.

use crate::codec::{decode_row, decode_value, encode_row, encode_value, fnv1a, CodecError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use flor_df::Value;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: u32 = 0x464C_4F52; // "FLOR"
/// Row-major body layout (legacy; read-only since the columnar bump).
const VERSION_ROW: u8 = 1;
/// Columnar body layout with dictionary-encoded string columns.
const VERSION_COLUMNAR: u8 = 2;

/// Plain column payload: `n_rows` tagged values.
const ENC_PLAIN: u8 = 0;
/// Dictionary column payload: distinct strings once + u32 codes.
const ENC_DICT: u8 = 1;

/// A decoded checkpoint: the committed state at `epoch`, covering every
/// transaction with id `<= max_txn`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointData {
    /// Epoch (commit count) the snapshot reflects.
    pub epoch: u64,
    /// Highest committed transaction id the snapshot covers; WAL replay
    /// skips records at or below it.
    pub max_txn: u64,
    /// Per-table committed rows, in scan order.
    pub tables: Vec<(String, Vec<Vec<Value>>)>,
}

impl CheckpointData {
    /// Total rows across all tables.
    pub fn rows(&self) -> usize {
        self.tables.iter().map(|(_, r)| r.len()).sum()
    }
}

/// The sidecar path for a WAL at `wal_path`: `<wal>.ckpt` (appended, not
/// substituted, so distinct WALs can never share a sidecar).
pub fn sidecar_path(wal_path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.ckpt", wal_path.display()))
}

/// Serialize a checkpoint body in the current (columnar, version 2)
/// layout. Falls back to the row-major version 1 layout for the one
/// shape the columnar body cannot express — a table whose rows disagree
/// on arity (impossible through the schema'd write path).
pub fn encode_checkpoint(data: &CheckpointData) -> Vec<u8> {
    let uniform = data.tables.iter().all(|(_, rows)| {
        rows.first()
            .is_none_or(|first| rows.iter().all(|r| r.len() == first.len()))
    });
    if !uniform {
        return encode_checkpoint_v1(data);
    }
    let mut body = BytesMut::new();
    body.put_u64(data.epoch);
    body.put_u64(data.max_txn);
    body.put_u16(data.tables.len() as u16);
    for (name, rows) in &data.tables {
        body.put_u16(name.len() as u16);
        body.put_slice(name.as_bytes());
        body.put_u64(rows.len() as u64);
        let n_cols = rows.first().map_or(0, Vec::len);
        body.put_u16(n_cols as u16);
        for c in 0..n_cols {
            encode_column(rows, c, &mut body);
        }
    }
    seal_blob(VERSION_COLUMNAR, &body)
}

/// Serialize a checkpoint body in the legacy row-major (version 1)
/// layout. Kept public so back-compat tests (and tooling that needs a
/// pre-columnar sidecar) can produce one; [`decode_checkpoint`] reads
/// both versions.
pub fn encode_checkpoint_v1(data: &CheckpointData) -> Vec<u8> {
    let mut body = BytesMut::new();
    body.put_u64(data.epoch);
    body.put_u64(data.max_txn);
    body.put_u16(data.tables.len() as u16);
    for (name, rows) in &data.tables {
        body.put_u16(name.len() as u16);
        body.put_slice(name.as_bytes());
        body.put_u64(rows.len() as u64);
        for row in rows {
            encode_row(row, &mut body);
        }
    }
    seal_blob(VERSION_ROW, &body)
}

fn seal_blob(version: u8, body: &BytesMut) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 13);
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.push(version);
    out.extend_from_slice(&fnv1a(body).to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// Encode one column of a uniform-arity table. String columns (nulls
/// allowed) whose distinct count is at most half the row count use the
/// dictionary layout; everything else is plain tagged values.
fn encode_column(rows: &[Vec<Value>], c: usize, body: &mut BytesMut) {
    let dictable = rows
        .iter()
        .all(|r| matches!(&r[c], Value::Str(_) | Value::Null))
        && rows.iter().any(|r| matches!(&r[c], Value::Str(_)));
    if dictable {
        let mut map: HashMap<&str, u32> = HashMap::new();
        let mut dict: Vec<&str> = Vec::new();
        for row in rows {
            if let Value::Str(s) = &row[c] {
                map.entry(s.as_ref()).or_insert_with(|| {
                    dict.push(s.as_ref());
                    dict.len() as u32 - 1
                });
            }
        }
        if dict.len() * 2 <= rows.len() {
            body.put_u8(ENC_DICT);
            body.put_u32(dict.len() as u32);
            for s in &dict {
                body.put_u32(s.len() as u32);
                body.put_slice(s.as_bytes());
            }
            let null_code = dict.len() as u32;
            for row in rows {
                match &row[c] {
                    Value::Str(s) => body.put_u32(map[s.as_ref()]),
                    _ => body.put_u32(null_code),
                }
            }
            return;
        }
    }
    body.put_u8(ENC_PLAIN);
    for row in rows {
        encode_value(&row[c], body);
    }
}

fn decode_column(b: &mut Bytes, n_rows: usize) -> Result<Vec<Value>, CodecError> {
    if b.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    match b.get_u8() {
        ENC_PLAIN => (0..n_rows).map(|_| decode_value(b)).collect(),
        ENC_DICT => {
            if b.remaining() < 4 {
                return Err(CodecError::Truncated);
            }
            let n_dict = b.get_u32() as usize;
            let mut dict: Vec<Arc<str>> = Vec::with_capacity(n_dict.min(1 << 20));
            for _ in 0..n_dict {
                if b.remaining() < 4 {
                    return Err(CodecError::Truncated);
                }
                let len = b.get_u32() as usize;
                if b.remaining() < len {
                    return Err(CodecError::Truncated);
                }
                let raw = b.copy_to_bytes(len);
                let s =
                    std::str::from_utf8(&raw).map_err(|e| CodecError::Malformed(e.to_string()))?;
                dict.push(Arc::from(s));
            }
            let mut out = Vec::with_capacity(n_rows.min(1 << 20));
            for _ in 0..n_rows {
                if b.remaining() < 4 {
                    return Err(CodecError::Truncated);
                }
                let code = b.get_u32() as usize;
                if code == n_dict {
                    out.push(Value::Null);
                } else if code < n_dict {
                    out.push(Value::Str(Arc::clone(&dict[code])));
                } else {
                    return Err(CodecError::Malformed(format!(
                        "dictionary code {code} out of range ({n_dict} entries)"
                    )));
                }
            }
            Ok(out)
        }
        other => Err(CodecError::Malformed(format!(
            "unknown column encoding {other}"
        ))),
    }
}

/// Decode a checkpoint blob (header, checksum, body) of either body
/// version. Takes the bytes by value: the body is consumed through a
/// zero-copy [`Bytes`] view, so the only per-cell copies are the
/// decoded values themselves.
pub fn decode_checkpoint(bytes: Vec<u8>) -> Result<CheckpointData, CodecError> {
    if bytes.len() < 13 {
        return Err(CodecError::Truncated);
    }
    // audit: allow(panic) — bytes.len() >= 13 was checked above, so the
    // fixed-width header slices below always convert.
    let magic = u32::from_be_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(CodecError::Malformed("bad checkpoint magic".into()));
    }
    let version = bytes[4];
    if version != VERSION_ROW && version != VERSION_COLUMNAR {
        return Err(CodecError::Malformed(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    let crc = u64::from_be_bytes(bytes[5..13].try_into().expect("8 bytes")); // audit: allow(panic) — same length check
    let all = Bytes::from(bytes);
    let b = all.slice(13..);
    if fnv1a(&b) != crc {
        return Err(CodecError::BadChecksum);
    }
    let mut b = b;
    if b.remaining() < 18 {
        return Err(CodecError::Truncated);
    }
    let epoch = b.get_u64();
    let max_txn = b.get_u64();
    let n_tables = b.get_u16() as usize;
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        if b.remaining() < 2 {
            return Err(CodecError::Truncated);
        }
        let nlen = b.get_u16() as usize;
        if b.remaining() < nlen {
            return Err(CodecError::Truncated);
        }
        let raw = b.copy_to_bytes(nlen);
        let name = std::str::from_utf8(&raw)
            .map_err(|e| CodecError::Malformed(e.to_string()))?
            .to_string();
        if b.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        let n_rows = b.get_u64() as usize;
        let rows = if version == VERSION_ROW {
            let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
            for _ in 0..n_rows {
                rows.push(decode_row(&mut b)?);
            }
            rows
        } else {
            if b.remaining() < 2 {
                return Err(CodecError::Truncated);
            }
            let n_cols = b.get_u16() as usize;
            let mut cols = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                cols.push(decode_column(&mut b, n_rows)?);
            }
            // Transpose back to the row-major interchange shape.
            let mut rows = vec![Vec::with_capacity(n_cols); n_rows];
            for col in cols {
                for (row, v) in rows.iter_mut().zip(col) {
                    row.push(v);
                }
            }
            rows
        };
        tables.push((name, rows));
    }
    Ok(CheckpointData {
        epoch,
        max_txn,
        tables,
    })
}

/// Write the sidecar atomically: stage at `<sidecar>.tmp`, fsync, rename,
/// fsync the directory (the rename itself must be durable before the WAL
/// may be truncated). Returns the sidecar's byte size.
pub fn write_sidecar(wal_path: &Path, data: &CheckpointData) -> std::io::Result<u64> {
    let bytes = encode_checkpoint(data);
    let final_path = sidecar_path(wal_path);
    let tmp = PathBuf::from(format!("{}.tmp", final_path.display()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, &final_path)?;
    let dir = match final_path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    File::open(dir)?.sync_all()?;
    Ok(bytes.len() as u64)
}

/// Cheap identity of a sidecar file: header fields read without decoding
/// (or checksumming) the body. The `crc` covers the whole body — epoch
/// and max_txn included — so two sidecars with equal marks are the same
/// checkpoint. Followers compare marks around every WAL tail read: a
/// changed mark means a checkpoint replaced the sidecar (and may have
/// truncated the WAL), so byte offsets into the old log are void.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SidecarMark {
    /// FNV-1a checksum of the sidecar body.
    pub crc: u64,
    /// Epoch the checkpoint reflects.
    pub epoch: u64,
    /// Highest committed transaction id the checkpoint covers.
    pub max_txn: u64,
}

/// Read just the header of the sidecar for `wal_path` — magic, version,
/// checksum, epoch, max_txn — without decoding the table payload. `None`
/// when no sidecar exists. O(1) in the sidecar size: this is the
/// per-poll staleness probe a follower runs before and after each tail
/// read.
pub fn peek_sidecar(wal_path: &Path) -> Result<Option<SidecarMark>, crate::db::StoreError> {
    let path = sidecar_path(wal_path);
    let mut f = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(crate::db::StoreError::Io(e)),
    };
    let mut header = [0u8; 29];
    f.read_exact(&mut header)
        .map_err(|_| crate::db::StoreError::Codec(CodecError::Truncated))?;
    // audit: allow(panic) — `header` is a [u8; 29] filled by read_exact;
    // every fixed-offset slice below has the width its target needs.
    let magic = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(crate::db::StoreError::Codec(CodecError::Malformed(
            "bad checkpoint magic".into(),
        )));
    }
    if header[4] != VERSION_ROW && header[4] != VERSION_COLUMNAR {
        return Err(crate::db::StoreError::Codec(CodecError::Malformed(
            format!("unsupported checkpoint version {}", header[4]),
        )));
    }
    Ok(Some(SidecarMark {
        crc: u64::from_be_bytes(header[5..13].try_into().expect("8 bytes")), // audit: allow(panic) — fixed [u8; 29] header
        epoch: u64::from_be_bytes(header[13..21].try_into().expect("8 bytes")), // audit: allow(panic) — fixed [u8; 29] header
        max_txn: u64::from_be_bytes(header[21..29].try_into().expect("8 bytes")), // audit: allow(panic) — fixed [u8; 29] header
    }))
}

/// Load the sidecar for `wal_path`, if one exists. A corrupt sidecar is
/// an error, not silently ignored: its WAL may already be truncated, so
/// pretending there is no checkpoint would silently drop committed data.
pub fn load_sidecar(wal_path: &Path) -> Result<Option<CheckpointData>, crate::db::StoreError> {
    let path = sidecar_path(wal_path);
    let mut f = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(crate::db::StoreError::Io(e)),
    };
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)
        .map_err(crate::db::StoreError::Io)?;
    decode_checkpoint(bytes)
        .map(Some)
        .map_err(crate::db::StoreError::Codec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointData {
        CheckpointData {
            epoch: 7,
            max_txn: 12,
            tables: vec![
                (
                    "logs".into(),
                    vec![
                        vec![Value::from("p"), Value::Int(1), Value::Null],
                        vec![Value::from("p"), Value::Int(2), Value::Float(0.5)],
                    ],
                ),
                ("loops".into(), Vec::new()),
            ],
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let data = sample();
        let bytes = encode_checkpoint(&data);
        assert_eq!(bytes[4], VERSION_COLUMNAR);
        assert_eq!(decode_checkpoint(bytes).unwrap(), data);
        assert_eq!(data.rows(), 2);
    }

    #[test]
    fn legacy_v1_blob_still_decodes() {
        let data = sample();
        let bytes = encode_checkpoint_v1(&data);
        assert_eq!(bytes[4], VERSION_ROW);
        assert_eq!(decode_checkpoint(bytes).unwrap(), data);
    }

    #[test]
    fn legacy_v1_sidecar_loads_and_peeks() {
        let dir = std::env::temp_dir().join(format!("florckpt-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("v1.wal");
        let data = sample();
        std::fs::write(sidecar_path(&wal), encode_checkpoint_v1(&data)).unwrap();
        assert_eq!(load_sidecar(&wal).unwrap(), Some(data.clone()));
        let mark = peek_sidecar(&wal).unwrap().expect("v1 sidecar present");
        assert_eq!(mark.epoch, data.epoch);
        assert_eq!(mark.max_txn, data.max_txn);
        let _ = std::fs::remove_file(sidecar_path(&wal));
    }

    #[test]
    fn dictionary_shrinks_string_heavy_tables() {
        // 256 rows over 3 distinct strings: the dictionary body must be
        // far smaller than the row-major layout that repeats each string.
        let rows: Vec<Vec<Value>> = (0..256)
            .map(|i| {
                vec![
                    Value::from(format!("metric_name_number_{}", i % 3).as_str()),
                    Value::Int(i),
                ]
            })
            .collect();
        let data = CheckpointData {
            epoch: 1,
            max_txn: 1,
            tables: vec![("logs".into(), rows)],
        };
        let v2 = encode_checkpoint(&data);
        let v1 = encode_checkpoint_v1(&data);
        assert!(
            v2.len() * 2 < v1.len(),
            "dictionary layout should at least halve this blob: v2={} v1={}",
            v2.len(),
            v1.len()
        );
        assert_eq!(decode_checkpoint(v2).unwrap(), data);
    }

    #[test]
    fn mixed_arity_falls_back_to_v1() {
        let data = CheckpointData {
            epoch: 1,
            max_txn: 1,
            tables: vec![(
                "odd".into(),
                vec![vec![Value::Int(1)], vec![Value::Int(1), Value::Int(2)]],
            )],
        };
        let bytes = encode_checkpoint(&data);
        assert_eq!(bytes[4], VERSION_ROW);
        assert_eq!(decode_checkpoint(bytes).unwrap(), data);
    }

    #[test]
    fn dict_code_out_of_range_is_malformed() {
        let rows: Vec<Vec<Value>> = (0..8).map(|_| vec![Value::from("x")]).collect();
        let data = CheckpointData {
            epoch: 1,
            max_txn: 1,
            tables: vec![("t".into(), rows)],
        };
        let mut bytes = encode_checkpoint(&data);
        // Corrupt the last code (the final 4 body bytes) to a huge value,
        // then re-seal the checksum so decoding reaches the dict check.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&99u32.to_be_bytes());
        let crc = fnv1a(&bytes[13..]);
        bytes[5..13].copy_from_slice(&crc.to_be_bytes());
        assert!(matches!(
            decode_checkpoint(bytes),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn corruption_is_detected() {
        let data = sample();
        let mut bytes = encode_checkpoint(&data);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            decode_checkpoint(bytes[..5].to_vec()),
            Err(CodecError::Truncated)
        ));
        assert!(matches!(
            decode_checkpoint(bytes),
            Err(CodecError::BadChecksum)
        ));
        let mut bad_magic = encode_checkpoint(&data);
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            decode_checkpoint(bad_magic),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn sidecar_write_and_load() {
        let dir = std::env::temp_dir().join(format!("florckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("a.wal");
        let _ = std::fs::remove_file(sidecar_path(&wal));
        assert!(load_sidecar(&wal).unwrap().is_none());
        let data = sample();
        write_sidecar(&wal, &data).unwrap();
        assert_eq!(load_sidecar(&wal).unwrap(), Some(data));
        let _ = std::fs::remove_file(sidecar_path(&wal));
    }

    #[test]
    fn peek_matches_full_decode_and_distinguishes_checkpoints() {
        let dir = std::env::temp_dir().join(format!("florckpt-peek-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("b.wal");
        let _ = std::fs::remove_file(sidecar_path(&wal));
        assert!(peek_sidecar(&wal).unwrap().is_none());
        let data = sample();
        write_sidecar(&wal, &data).unwrap();
        let mark1 = peek_sidecar(&wal).unwrap().expect("sidecar written");
        assert_eq!(mark1.epoch, data.epoch);
        assert_eq!(mark1.max_txn, data.max_txn);
        // A different checkpoint (one more row) produces a different mark.
        let mut data2 = sample();
        data2.epoch += 1;
        data2.max_txn += 3;
        data2.tables[0]
            .1
            .push(vec![Value::from("p"), Value::Int(9), Value::Null]);
        write_sidecar(&wal, &data2).unwrap();
        let mark2 = peek_sidecar(&wal).unwrap().expect("sidecar replaced");
        assert_ne!(mark1, mark2);
        assert_eq!(mark2.epoch, data2.epoch);
        let _ = std::fs::remove_file(sidecar_path(&wal));
    }
}
