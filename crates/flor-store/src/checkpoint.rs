//! Checkpoints: O(live-data) recovery instead of O(history) replay.
//!
//! The WAL is append-only and latest-wins tables (`jobs`, and much of
//! `logs`/`loops` after hindsight backfill) accumulate long dead
//! prefixes, so replaying the whole log on `Database::open` costs time
//! proportional to everything that *ever* happened. A checkpoint
//! serializes the committed state — the sealed segments of a pinned
//! [`crate::db::Snapshot`] — into a sidecar file next to the WAL, then
//! truncates the log down to the records the checkpoint does not cover.
//! Recovery becomes: load the sidecar (O(live rows)), then replay only
//! the short WAL tail.
//!
//! Crash safety is rename-based, in two independently-atomic steps:
//!
//! 1. The sidecar is staged at `<wal>.ckpt.tmp`, fsynced, and renamed to
//!    `<wal>.ckpt`. A crash before the rename leaves the old state
//!    (previous sidecar, full WAL) — recovery is unchanged.
//! 2. The WAL is rewritten via [`crate::wal::Wal::rewrite`] (stage, fsync,
//!    rename) keeping only records with `txn > max_txn`. A crash *between*
//!    steps leaves the new sidecar plus the full WAL: replay skips every
//!    record the checkpoint covers (`txn <= max_txn`), so recovery still
//!    converges to the same state — the property the
//!    `checkpoint_recovery` tests assert.
//!
//! The sidecar is one CRC-guarded blob:
//! `[magic u32][version u8][fnv u64 of body][body]` where the body is
//! `[epoch u64][max_txn u64][n_tables u16]` followed per table by
//! `[name_len u16][name][n_rows u64][rows…]` in [`crate::codec`] row
//! encoding.

use crate::codec::{decode_row, encode_row, fnv1a, CodecError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use flor_df::Value;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: u32 = 0x464C_4F52; // "FLOR"
const VERSION: u8 = 1;

/// A decoded checkpoint: the committed state at `epoch`, covering every
/// transaction with id `<= max_txn`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointData {
    /// Epoch (commit count) the snapshot reflects.
    pub epoch: u64,
    /// Highest committed transaction id the snapshot covers; WAL replay
    /// skips records at or below it.
    pub max_txn: u64,
    /// Per-table committed rows, in scan order.
    pub tables: Vec<(String, Vec<Vec<Value>>)>,
}

impl CheckpointData {
    /// Total rows across all tables.
    pub fn rows(&self) -> usize {
        self.tables.iter().map(|(_, r)| r.len()).sum()
    }
}

/// The sidecar path for a WAL at `wal_path`: `<wal>.ckpt` (appended, not
/// substituted, so distinct WALs can never share a sidecar).
pub fn sidecar_path(wal_path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.ckpt", wal_path.display()))
}

/// Serialize a checkpoint body.
pub fn encode_checkpoint(data: &CheckpointData) -> Vec<u8> {
    let mut body = BytesMut::new();
    body.put_u64(data.epoch);
    body.put_u64(data.max_txn);
    body.put_u16(data.tables.len() as u16);
    for (name, rows) in &data.tables {
        body.put_u16(name.len() as u16);
        body.put_slice(name.as_bytes());
        body.put_u64(rows.len() as u64);
        for row in rows {
            encode_row(row, &mut body);
        }
    }
    let mut out = Vec::with_capacity(body.len() + 13);
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.push(VERSION);
    out.extend_from_slice(&fnv1a(&body).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode a checkpoint blob (header, checksum, body). Takes the bytes by
/// value: the body is consumed through a zero-copy [`Bytes`] view, so
/// the only per-cell copies are the decoded values themselves.
pub fn decode_checkpoint(bytes: Vec<u8>) -> Result<CheckpointData, CodecError> {
    if bytes.len() < 13 {
        return Err(CodecError::Truncated);
    }
    let magic = u32::from_be_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(CodecError::Malformed("bad checkpoint magic".into()));
    }
    if bytes[4] != VERSION {
        return Err(CodecError::Malformed(format!(
            "unsupported checkpoint version {}",
            bytes[4]
        )));
    }
    let crc = u64::from_be_bytes(bytes[5..13].try_into().expect("8 bytes"));
    let all = Bytes::from(bytes);
    let b = all.slice(13..);
    if fnv1a(&b) != crc {
        return Err(CodecError::BadChecksum);
    }
    let mut b = b;
    if b.remaining() < 18 {
        return Err(CodecError::Truncated);
    }
    let epoch = b.get_u64();
    let max_txn = b.get_u64();
    let n_tables = b.get_u16() as usize;
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        if b.remaining() < 2 {
            return Err(CodecError::Truncated);
        }
        let nlen = b.get_u16() as usize;
        if b.remaining() < nlen {
            return Err(CodecError::Truncated);
        }
        let raw = b.copy_to_bytes(nlen);
        let name = std::str::from_utf8(&raw)
            .map_err(|e| CodecError::Malformed(e.to_string()))?
            .to_string();
        if b.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        let n_rows = b.get_u64() as usize;
        let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
        for _ in 0..n_rows {
            rows.push(decode_row(&mut b)?);
        }
        tables.push((name, rows));
    }
    Ok(CheckpointData {
        epoch,
        max_txn,
        tables,
    })
}

/// Write the sidecar atomically: stage at `<sidecar>.tmp`, fsync, rename,
/// fsync the directory (the rename itself must be durable before the WAL
/// may be truncated). Returns the sidecar's byte size.
pub fn write_sidecar(wal_path: &Path, data: &CheckpointData) -> std::io::Result<u64> {
    let bytes = encode_checkpoint(data);
    let final_path = sidecar_path(wal_path);
    let tmp = PathBuf::from(format!("{}.tmp", final_path.display()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, &final_path)?;
    let dir = match final_path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    File::open(dir)?.sync_all()?;
    Ok(bytes.len() as u64)
}

/// Cheap identity of a sidecar file: header fields read without decoding
/// (or checksumming) the body. The `crc` covers the whole body — epoch
/// and max_txn included — so two sidecars with equal marks are the same
/// checkpoint. Followers compare marks around every WAL tail read: a
/// changed mark means a checkpoint replaced the sidecar (and may have
/// truncated the WAL), so byte offsets into the old log are void.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SidecarMark {
    /// FNV-1a checksum of the sidecar body.
    pub crc: u64,
    /// Epoch the checkpoint reflects.
    pub epoch: u64,
    /// Highest committed transaction id the checkpoint covers.
    pub max_txn: u64,
}

/// Read just the header of the sidecar for `wal_path` — magic, version,
/// checksum, epoch, max_txn — without decoding the table payload. `None`
/// when no sidecar exists. O(1) in the sidecar size: this is the
/// per-poll staleness probe a follower runs before and after each tail
/// read.
pub fn peek_sidecar(wal_path: &Path) -> Result<Option<SidecarMark>, crate::db::StoreError> {
    let path = sidecar_path(wal_path);
    let mut f = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(crate::db::StoreError::Io(e)),
    };
    let mut header = [0u8; 29];
    f.read_exact(&mut header)
        .map_err(|_| crate::db::StoreError::Codec(CodecError::Truncated))?;
    let magic = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(crate::db::StoreError::Codec(CodecError::Malformed(
            "bad checkpoint magic".into(),
        )));
    }
    if header[4] != VERSION {
        return Err(crate::db::StoreError::Codec(CodecError::Malformed(
            format!("unsupported checkpoint version {}", header[4]),
        )));
    }
    Ok(Some(SidecarMark {
        crc: u64::from_be_bytes(header[5..13].try_into().expect("8 bytes")),
        epoch: u64::from_be_bytes(header[13..21].try_into().expect("8 bytes")),
        max_txn: u64::from_be_bytes(header[21..29].try_into().expect("8 bytes")),
    }))
}

/// Load the sidecar for `wal_path`, if one exists. A corrupt sidecar is
/// an error, not silently ignored: its WAL may already be truncated, so
/// pretending there is no checkpoint would silently drop committed data.
pub fn load_sidecar(wal_path: &Path) -> Result<Option<CheckpointData>, crate::db::StoreError> {
    let path = sidecar_path(wal_path);
    let mut f = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(crate::db::StoreError::Io(e)),
    };
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)
        .map_err(crate::db::StoreError::Io)?;
    decode_checkpoint(bytes)
        .map(Some)
        .map_err(crate::db::StoreError::Codec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointData {
        CheckpointData {
            epoch: 7,
            max_txn: 12,
            tables: vec![
                (
                    "logs".into(),
                    vec![
                        vec![Value::from("p"), Value::Int(1), Value::Null],
                        vec![Value::from("p"), Value::Int(2), Value::Float(0.5)],
                    ],
                ),
                ("loops".into(), Vec::new()),
            ],
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let data = sample();
        let bytes = encode_checkpoint(&data);
        assert_eq!(decode_checkpoint(bytes).unwrap(), data);
        assert_eq!(data.rows(), 2);
    }

    #[test]
    fn corruption_is_detected() {
        let data = sample();
        let mut bytes = encode_checkpoint(&data);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            decode_checkpoint(bytes[..5].to_vec()),
            Err(CodecError::Truncated)
        ));
        assert!(matches!(
            decode_checkpoint(bytes),
            Err(CodecError::BadChecksum)
        ));
        let mut bad_magic = encode_checkpoint(&data);
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            decode_checkpoint(bad_magic),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn sidecar_write_and_load() {
        let dir = std::env::temp_dir().join(format!("florckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("a.wal");
        let _ = std::fs::remove_file(sidecar_path(&wal));
        assert!(load_sidecar(&wal).unwrap().is_none());
        let data = sample();
        write_sidecar(&wal, &data).unwrap();
        assert_eq!(load_sidecar(&wal).unwrap(), Some(data));
        let _ = std::fs::remove_file(sidecar_path(&wal));
    }

    #[test]
    fn peek_matches_full_decode_and_distinguishes_checkpoints() {
        let dir = std::env::temp_dir().join(format!("florckpt-peek-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("b.wal");
        let _ = std::fs::remove_file(sidecar_path(&wal));
        assert!(peek_sidecar(&wal).unwrap().is_none());
        let data = sample();
        write_sidecar(&wal, &data).unwrap();
        let mark1 = peek_sidecar(&wal).unwrap().expect("sidecar written");
        assert_eq!(mark1.epoch, data.epoch);
        assert_eq!(mark1.max_txn, data.max_txn);
        // A different checkpoint (one more row) produces a different mark.
        let mut data2 = sample();
        data2.epoch += 1;
        data2.max_txn += 3;
        data2.tables[0]
            .1
            .push(vec![Value::from("p"), Value::Int(9), Value::Null]);
        write_sidecar(&wal, &data2).unwrap();
        let mark2 = peek_sidecar(&wal).unwrap().expect("sidecar replaced");
        assert_ne!(mark1, mark2);
        assert_eq!(mark2.epoch, data2.epoch);
        let _ = std::fs::remove_file(sidecar_path(&wal));
    }
}
