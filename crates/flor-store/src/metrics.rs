//! Store-side metric wiring: one [`MetricsRegistry`] per [`crate::Database`],
//! with every hot-path handle resolved once at construction.
//!
//! The handles live outside the database's `RwLock` so recording never
//! takes it; call sites gate on [`MetricsRegistry::enabled`] (one relaxed
//! load) before touching an `Instant`. See the `flor-obs` crate docs for
//! the full metric-name registry.

use flor_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;

/// Pre-bound store metric handles, shared by the database handle, every
/// pinned snapshot (for query accounting), and the feed publisher.
#[derive(Debug)]
pub(crate) struct StoreMetrics {
    pub registry: MetricsRegistry,
    /// `store.commit.nanos` — whole commit latency.
    pub commit_nanos: Arc<Histogram>,
    /// `store.commit.rows` — rows made visible by commits.
    pub commit_rows: Arc<Counter>,
    /// `store.wal.append_nanos` — per-record WAL append latency.
    pub wal_append_nanos: Arc<Histogram>,
    /// `store.wal.fsync_nanos` — commit-marker fsync latency.
    pub wal_fsync_nanos: Arc<Histogram>,
    /// `store.segment.rows_coalesced` — rows re-copied by tail folding.
    pub rows_coalesced: Arc<Counter>,
    /// `store.checkpoint.nanos` — whole checkpoint duration.
    pub checkpoint_nanos: Arc<Histogram>,
    /// `store.compaction.nanos` — whole compaction-pass duration.
    pub compaction_nanos: Arc<Histogram>,
    /// `store.query.segments_scanned` — segments visited by queries.
    pub query_segments_scanned: Arc<Counter>,
    /// `store.query.segments_pruned` — segments skipped via zone maps.
    pub query_segments_pruned: Arc<Counter>,
    /// `store.query.rows_examined` — rows materialized and tested.
    pub query_rows_examined: Arc<Counter>,
    /// `store.query.rows_returned` — rows returned to callers.
    pub query_rows_returned: Arc<Counter>,
}

impl StoreMetrics {
    pub fn new(registry: MetricsRegistry) -> StoreMetrics {
        StoreMetrics {
            commit_nanos: registry.histogram("store.commit.nanos"),
            commit_rows: registry.counter("store.commit.rows"),
            wal_append_nanos: registry.histogram("store.wal.append_nanos"),
            wal_fsync_nanos: registry.histogram("store.wal.fsync_nanos"),
            rows_coalesced: registry.counter("store.segment.rows_coalesced"),
            checkpoint_nanos: registry.histogram("store.checkpoint.nanos"),
            compaction_nanos: registry.histogram("store.compaction.nanos"),
            query_segments_scanned: registry.counter("store.query.segments_scanned"),
            query_segments_pruned: registry.counter("store.query.segments_pruned"),
            query_rows_examined: registry.counter("store.query.rows_examined"),
            query_rows_returned: registry.counter("store.query.rows_returned"),
            registry,
        }
    }

    /// Publish one query's execution accounting (no-op when disabled).
    pub fn record_query(&self, ex: &crate::query::QueryExplain) {
        if !self.registry.enabled() {
            return;
        }
        self.query_segments_scanned.add(ex.segments_scanned as u64);
        self.query_segments_pruned.add(ex.segments_pruned as u64);
        self.query_rows_examined.add(ex.rows_examined as u64);
        self.query_rows_returned.add(ex.rows_returned as u64);
    }

    /// The feed publisher's handle bundle.
    pub fn feed(&self) -> FeedMetrics {
        FeedMetrics {
            registry: self.registry.clone(),
            coalesced: self.registry.counter("store.feed.coalesced"),
            shed: self.registry.counter("store.feed.shed"),
            depth: self.registry.gauge("store.feed.depth"),
        }
    }
}

/// Change-feed backpressure handles, owned by the publisher.
#[derive(Debug, Clone)]
pub(crate) struct FeedMetrics {
    pub registry: MetricsRegistry,
    /// `store.feed.coalesced` — queued batch pairs merged.
    pub coalesced: Arc<Counter>,
    /// `store.feed.shed` — batches dropped at the memory bound.
    pub shed: Arc<Counter>,
    /// `store.feed.depth` — deepest subscriber queue after last publish.
    pub depth: Arc<Gauge>,
}
