//! A small query layer: predicate pushdown onto indexes, projection, and
//! ordering, materialising [`DataFrame`]s.
//!
//! FlorDB promises "powerful, SQL-like data reads" (§3.1). Complex
//! relational work (joins, pivots) happens on the dataframe layer; the
//! query layer's job is to get the right rows out of the store cheaply.
//! The planner picks the most selective index-backed access path among the
//! equality ([`Query::filter_eq`]) and set-membership ([`Query::filter_in`])
//! predicates, then applies the rest as residual filters over the fetched
//! rows. Full scans prune whole segments through the per-segment zone
//! maps (min/max per column, built at seal time): a range predicate —
//! e.g. a `tstamp` window for `runs_of` or a time-travel query — skips
//! every segment whose range cannot intersect it, so cold history is
//! never read. The same [`CmpOp`]/[`Predicate`] vocabulary is reused by
//! the lazy query builder (`flor_view::QueryPlan` / `Flor::query`) so one
//! predicate type spans every layer of the stack.

use crate::column::Bitmap;
use crate::db::{rows_to_frame, Database, StoreResult, TableVersion};
use flor_df::{Column, DataFrame, DfError, DfResult, Value};
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Comparison operators for scan predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality (index-eligible).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Evaluate `a op b` under the total value order of [`Value`].
    pub fn eval(&self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One predicate: `column op literal`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Column name.
    pub col: String,
    /// Operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Value,
}

impl Predicate {
    /// Build a predicate.
    pub fn new(col: &str, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate {
            col: col.to_string(),
            op,
            value: value.into(),
        }
    }

    /// Whether a cell value satisfies this predicate.
    pub fn matches(&self, v: &Value) -> bool {
        self.op.eval(v, &self.value)
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {:?}", self.col, self.op, self.value)
    }
}

/// A declarative query against one table.
#[derive(Debug, Clone)]
pub struct Query {
    table: String,
    predicates: Vec<Predicate>,
    /// Set-membership predicates: `col IN (values)`, index-eligible.
    in_predicates: Vec<(String, Vec<Value>)>,
    projection: Option<Vec<String>>,
    order_by: Vec<(String, bool)>,
    limit: Option<usize>,
}

/// The access path the planner settled on (see [`Query::run_traced`]).
enum Access {
    /// Full scan: every row id is a candidate.
    Scan,
    /// The `i`-th equality predicate, served from a secondary index.
    EqIndex(usize),
    /// The `i`-th IN predicate, served from a secondary index
    /// (the `lookup_many` fast path).
    InIndex(usize),
}

/// The access path a query executed with, as reported by
/// [`QueryExplain`] — the public mirror of the planner's decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Full segment scan (zone-map pruned).
    FullScan,
    /// Equality probe against the secondary index on the named column.
    IndexEq(String),
    /// Set-membership probe against the secondary index on the named
    /// column.
    IndexIn(String),
}

impl std::fmt::Display for AccessPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessPath::FullScan => f.write_str("full-scan"),
            AccessPath::IndexEq(c) => write!(f, "index-eq({c})"),
            AccessPath::IndexIn(c) => write!(f, "index-in({c})"),
        }
    }
}

/// How the executor satisfied `order_by`, as reported by
/// [`QueryExplain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderPath {
    /// No ordering requested.
    Unordered,
    /// Full sort of the matched rows.
    FullSort,
    /// Bounded binary heap: `order_by` + `limit(n)` kept only the `n`
    /// best rows — O(rows · log n) instead of a full sort.
    TopK,
}

impl std::fmt::Display for OrderPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderPath::Unordered => f.write_str("unordered"),
            OrderPath::FullSort => f.write_str("full-sort"),
            OrderPath::TopK => f.write_str("top-k"),
        }
    }
}

/// Execution accounting for one store query, produced by every run and
/// surfaced through [`crate::Snapshot::explain`] (and, at the kernel,
/// `QueryBuilder::explain`).
///
/// Counts describe the run itself, not estimates: `rows_examined` is the
/// number of rows the engine materialized and tested against residual
/// predicates, `rows_matched` how many survived them, and
/// `rows_returned` the final frame size after ordering/limit/projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryExplain {
    /// Queried table.
    pub table: String,
    /// Access path the planner chose.
    pub access: AccessPath,
    /// Segments in the pinned table version.
    pub segments_total: usize,
    /// Segments actually visited (scanned or index-probed).
    pub segments_scanned: usize,
    /// Segments skipped wholesale via zone maps.
    pub segments_pruned: usize,
    /// Rows materialized and tested against residual predicates.
    pub rows_examined: usize,
    /// Rows that satisfied every predicate.
    pub rows_matched: usize,
    /// Rows in the returned frame (after order/limit/projection).
    pub rows_returned: usize,
    /// Predicates applied as residual filters (not served by the access
    /// path).
    pub residual_predicates: usize,
    /// Range predicates answered by **binary search** into a clustered
    /// (sorted) segment instead of filtering it: each probe narrows one
    /// segment's scan window and consumes the predicate there.
    pub clustered_probes: usize,
    /// How `order_by` was satisfied ([`OrderPath::TopK`] when a `limit`
    /// let a bounded heap replace the full sort).
    pub order: OrderPath,
    /// Wall-clock execution time. Zero unless the caller timed the run
    /// (e.g. [`crate::Snapshot::explain`]).
    pub elapsed_nanos: u64,
}

impl std::fmt::Display for QueryExplain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "QUERY {} via {}", self.table, self.access)?;
        writeln!(
            f,
            "  segments: {} scanned, {} pruned of {}",
            self.segments_scanned, self.segments_pruned, self.segments_total
        )?;
        writeln!(
            f,
            "  rows: {} examined, {} matched, {} returned",
            self.rows_examined, self.rows_matched, self.rows_returned
        )?;
        if self.clustered_probes > 0 {
            writeln!(f, "  clustered probes: {}", self.clustered_probes)?;
        }
        if self.order != OrderPath::Unordered {
            writeln!(f, "  order: {}", self.order)?;
        }
        write!(
            f,
            "  residual predicates: {}; elapsed: {}ns",
            self.residual_predicates, self.elapsed_nanos
        )
    }
}

impl Query {
    /// Query all rows of `table`.
    pub fn table(table: &str) -> Query {
        Query {
            table: table.to_string(),
            predicates: Vec::new(),
            in_predicates: Vec::new(),
            projection: None,
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// The queried table's name.
    pub fn table_name(&self) -> &str {
        &self.table
    }

    /// Add an equality predicate (index-eligible).
    pub fn filter_eq(mut self, col: &str, value: impl Into<Value>) -> Query {
        self.predicates.push(Predicate {
            col: col.to_string(),
            op: CmpOp::Eq,
            value: value.into(),
        });
        self
    }

    /// Add a set-membership predicate: `col IN (values)`. Index-eligible —
    /// over an indexed column this is the `lookup_many` fast path, yielding
    /// matches in insertion order without touching non-matching rows.
    pub fn filter_in(mut self, col: &str, values: Vec<Value>) -> Query {
        self.in_predicates.push((col.to_string(), values));
        self
    }

    /// Add a general comparison predicate.
    pub fn filter(mut self, col: &str, op: CmpOp, value: impl Into<Value>) -> Query {
        self.predicates.push(Predicate {
            col: col.to_string(),
            op,
            value: value.into(),
        });
        self
    }

    /// Add a ready-made [`Predicate`].
    pub fn filter_pred(mut self, pred: Predicate) -> Query {
        self.predicates.push(pred);
        self
    }

    /// Project only these columns (in order).
    pub fn project(mut self, cols: &[&str]) -> Query {
        self.projection = Some(cols.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Sort by `col` ascending (`true`) or descending; may be chained.
    pub fn order_by(mut self, col: &str, ascending: bool) -> Query {
        self.order_by.push((col.to_string(), ascending));
        self
    }

    /// Keep at most `n` rows (applied after ordering).
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// Execute against `db`: pins a snapshot and runs lock-free against
    /// it (equivalent to `db.pin().query(self)`).
    pub fn execute(&self, db: &Database) -> StoreResult<DataFrame> {
        db.pin().query(self)
    }

    /// Candidate row count if the access path `a` were chosen — the
    /// planner's (exact, hash-index-backed) selectivity estimate.
    fn candidates(&self, t: &TableVersion, a: &Access) -> usize {
        match a {
            Access::Scan => t.total_rows,
            Access::EqIndex(i) => {
                let p = &self.predicates[*i];
                t.index_len(&p.col, &p.value)
            }
            Access::InIndex(i) => {
                let (col, values) = &self.in_predicates[*i];
                values.iter().map(|v| t.index_len(col, v)).sum()
            }
        }
    }

    /// Execute against one pinned table version, returning the frame plus
    /// its execution accounting. Crate-internal: this is what lets
    /// [`crate::db::Snapshot::query`] (and therefore
    /// [`Database::snapshot_with`]) run several queries against one
    /// consistent epoch, entirely lock-free. The trace rides along on
    /// every run (a handful of `Cell` bumps per row — noise next to row
    /// materialization); timing is left to callers so the untimed path
    /// never touches the clock.
    pub(crate) fn run_traced(&self, t: &TableVersion) -> StoreResult<(DataFrame, QueryExplain)> {
        // Plan: among the index-eligible predicates (Eq and IN over indexed
        // columns), pick the one with the fewest candidate rows; everything
        // else becomes a residual filter over the fetched rows.
        let mut access = Access::Scan;
        let mut best = self.candidates(t, &access);
        for (i, p) in self.predicates.iter().enumerate() {
            if p.op == CmpOp::Eq && t.has_index(&p.col) {
                let cand = Access::EqIndex(i);
                let n = self.candidates(t, &cand);
                if n < best {
                    best = n;
                    access = cand;
                }
            }
        }
        for (i, (col, _)) in self.in_predicates.iter().enumerate() {
            if t.has_index(col) {
                let cand = Access::InIndex(i);
                let n = self.candidates(t, &cand);
                if n < best {
                    best = n;
                    access = cand;
                }
            }
        }

        let candidate_rids: Option<Vec<usize>> = match access {
            // Full scan iterates the segments directly; no rid list.
            Access::Scan => None,
            Access::EqIndex(i) => {
                let p = &self.predicates[i];
                Some(t.index_rids(&p.col, &p.value).unwrap_or_default())
            }
            Access::InIndex(i) => {
                let (col, values) = &self.in_predicates[i];
                let mut rids: Vec<usize> = values
                    .iter()
                    .flat_map(|v| t.index_rids(col, v).unwrap_or_default())
                    .collect();
                // Restore insertion order (per-value postings are each
                // ascending, but values interleave in the log).
                rids.sort_unstable();
                rids.dedup();
                Some(rids)
            }
        };

        let residual: Vec<(usize, &Predicate)> = self
            .predicates
            .iter()
            .enumerate()
            .filter(|(i, _)| !matches!(access, Access::EqIndex(j) if j == *i))
            .filter_map(|(_, p)| t.schema.col_index(&p.col).map(|ci| (ci, p)))
            .collect();
        let residual_in: Vec<(usize, &Vec<Value>)> = self
            .in_predicates
            .iter()
            .enumerate()
            .filter(|(i, _)| !matches!(access, Access::InIndex(j) if j == *i))
            .filter_map(|(_, (col, vs))| t.schema.col_index(col).map(|ci| (ci, vs)))
            .collect();
        let examined = Cell::new(0usize);
        let matched = Cell::new(0usize);
        let keep = |row: &Vec<Value>| {
            examined.set(examined.get() + 1);
            let ok = residual.iter().all(|(ci, p)| p.matches(&row[*ci]))
                && residual_in.iter().all(|(ci, vs)| vs.contains(&row[*ci]));
            if ok {
                matched.set(matched.get() + 1);
            }
            ok
        };
        let segments_total = t.segments.len();
        let segments_scanned = Cell::new(0usize);
        let mut clustered_probes = 0usize;
        let mut df = match &candidate_rids {
            None => {
                // Zone-map pruning: a segment whose per-column min/max
                // range proves a predicate can match no row in it is
                // skipped wholesale — a `tstamp` window over a long
                // history reads only the segments the window touches.
                //
                // Surviving segments evaluate columnar: range predicates
                // on a clustered segment's sort column binary-search the
                // scan window down first, then each residual predicate
                // runs as a tight loop over the segment's typed column,
                // ANDing a selection bitmap. Values materialize only for
                // selected rows, straight into the output columns.
                let prunable: Vec<&Predicate> = self.predicates.iter().collect();
                let mut out_cols: Vec<Vec<Value>> = vec![Vec::new(); t.schema.columns.len()];
                for seg in t.pruned_segments(&prunable) {
                    segments_scanned.set(segments_scanned.get() + 1);
                    let n = seg.len();
                    if n == 0 {
                        continue;
                    }
                    let (mut lo, mut hi) = (0usize, n);
                    let mut consumed = vec![false; residual.len()];
                    if let Some(ci) = seg.sorted_by {
                        for (k, (pci, p)) in residual.iter().enumerate() {
                            if *pci != ci {
                                continue;
                            }
                            let col = &seg.cols[ci];
                            let narrowed = match p.op {
                                CmpOp::Ge => {
                                    lo = lo.max(col.lower_bound(&p.value));
                                    true
                                }
                                CmpOp::Gt => {
                                    lo = lo.max(col.upper_bound(&p.value));
                                    true
                                }
                                CmpOp::Le => {
                                    hi = hi.min(col.upper_bound(&p.value));
                                    true
                                }
                                CmpOp::Lt => {
                                    hi = hi.min(col.lower_bound(&p.value));
                                    true
                                }
                                CmpOp::Eq => {
                                    lo = lo.max(col.lower_bound(&p.value));
                                    hi = hi.min(col.upper_bound(&p.value));
                                    true
                                }
                                CmpOp::Ne => false,
                            };
                            if narrowed {
                                consumed[k] = true;
                                clustered_probes += 1;
                            }
                        }
                    }
                    if lo >= hi {
                        continue;
                    }
                    examined.set(examined.get() + (hi - lo));
                    let mut sel = Bitmap::ones_in_range(n, lo, hi);
                    for (k, (ci, p)) in residual.iter().enumerate() {
                        if consumed[k] {
                            continue;
                        }
                        seg.cols[*ci].eval(p.op, &p.value, lo, hi, &mut sel);
                    }
                    for (ci, vs) in &residual_in {
                        seg.cols[*ci].eval_in(vs, lo, hi, &mut sel);
                    }
                    matched.set(matched.get() + sel.count_ones());
                    for (col, out) in seg.cols.iter().zip(&mut out_cols) {
                        col.extend_selected(&sel, out);
                    }
                }
                let cols = t
                    .schema
                    .columns
                    .iter()
                    .zip(out_cols)
                    .map(|(def, vals)| Column::new(def.name.as_str(), vals))
                    .collect();
                // audit: allow(panic) — one value vec per schema column,
                // filled row-by-row: lengths and names are uniform.
                DataFrame::from_columns(cols).expect("schema columns are uniform")
            }
            Some(rids) => {
                // Index probes skip segments through the same zone maps
                // (`index_rids` pre-filters on `zone_admits_eq`); count
                // the segments the probe actually touched.
                let probed = match &access {
                    Access::EqIndex(i) => {
                        let p = &self.predicates[*i];
                        t.segments
                            .iter()
                            .filter(|s| s.zone_admits_eq(&p.col, &p.value))
                            .count()
                    }
                    Access::InIndex(i) => {
                        let (col, values) = &self.in_predicates[*i];
                        t.segments
                            .iter()
                            .filter(|s| values.iter().any(|v| s.zone_admits_eq(col, v)))
                            .count()
                    }
                    // audit: allow(panic) — this arm is inside the
                    // `Some(rids)` branch, which only index accesses produce.
                    Access::Scan => unreachable!("scan path has no rid list"),
                };
                segments_scanned.set(probed);
                rows_to_frame(
                    &t.schema,
                    rids.iter().filter_map(|&r| t.row(r)).filter(keep),
                )
            }
        };

        // Drop rows referencing unknown predicate columns conservatively:
        // a predicate over a column the schema lacks matches nothing.
        let unknown_col = self
            .predicates
            .iter()
            .map(|p| p.col.as_str())
            .chain(self.in_predicates.iter().map(|(c, _)| c.as_str()))
            .any(|c| df.column(c).is_none());
        if unknown_col {
            df = df.head(0);
        }
        let mut order = OrderPath::Unordered;
        if !self.order_by.is_empty() {
            let keys: Vec<(&str, bool)> = self
                .order_by
                .iter()
                .map(|(c, a)| (c.as_str(), *a))
                .collect();
            match self.limit {
                // A limit below the matched row count bounds the sort:
                // a binary heap keeps only the `n` best rows seen so
                // far, O(rows · log n) instead of O(rows · log rows).
                Some(n) if n < df.n_rows() => {
                    df = top_k(&df, &keys, n)?;
                    order = OrderPath::TopK;
                }
                _ => {
                    df = df.sort_by(&keys)?;
                    order = OrderPath::FullSort;
                }
            }
        }
        if let Some(n) = self.limit {
            df = df.head(n);
        }
        if let Some(proj) = &self.projection {
            let cols: Vec<&str> = proj.iter().map(String::as_str).collect();
            df = df.select(&cols)?;
        }
        let explain = QueryExplain {
            table: self.table.clone(),
            access: match access {
                Access::Scan => AccessPath::FullScan,
                Access::EqIndex(i) => AccessPath::IndexEq(self.predicates[i].col.clone()),
                Access::InIndex(i) => AccessPath::IndexIn(self.in_predicates[i].0.clone()),
            },
            segments_total,
            segments_scanned: segments_scanned.get(),
            segments_pruned: segments_total - segments_scanned.get(),
            rows_examined: examined.get(),
            rows_matched: matched.get(),
            rows_returned: df.n_rows(),
            residual_predicates: residual.len() + residual_in.len(),
            clustered_probes,
            order,
            elapsed_nanos: 0,
        };
        Ok((df, explain))
    }
}

/// The `n` smallest rows of `df` under `keys` (each `(column, asc)`),
/// in sorted order — byte-identical to `df.sort_by(keys)?.head(n)`,
/// computed with a bounded max-heap instead of a full sort. Ties
/// preserve row order, matching the stable sort.
fn top_k(df: &DataFrame, keys: &[(&str, bool)], n: usize) -> DfResult<DataFrame> {
    for (k, _) in keys {
        if df.column(k).is_none() {
            return Err(DfError::UnknownColumn((*k).to_string()));
        }
    }
    if n == 0 {
        return Ok(df.head(0));
    }
    let cols: Vec<&Column> = keys
        .iter()
        // audit: allow(panic) — every key was checked against the frame in
        // the validation loop above (UnknownColumn otherwise).
        .map(|(k, _)| df.column(k).expect("validated above"))
        .collect();
    let dirs: Vec<bool> = keys.iter().map(|(_, asc)| *asc).collect();

    struct Entry<'a> {
        key: Vec<&'a Value>,
        dirs: &'a [bool],
        idx: usize,
    }
    impl PartialEq for Entry<'_> {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Entry<'_> {}
    impl PartialOrd for Entry<'_> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry<'_> {
        fn cmp(&self, other: &Self) -> Ordering {
            for ((a, b), &asc) in self.key.iter().zip(&other.key).zip(self.dirs) {
                let ord = if asc { a.cmp(b) } else { b.cmp(a) };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            self.idx.cmp(&other.idx)
        }
    }

    // Max-heap of the n best (smallest) rows: the root is the worst of
    // the kept set and is evicted by any strictly better row.
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(n + 1);
    for idx in 0..df.n_rows() {
        let e = Entry {
            key: cols.iter().map(|c| &c.values[idx]).collect(),
            dirs: &dirs,
            idx,
        };
        if heap.len() < n {
            heap.push(e);
        // audit: allow(panic) — this branch runs only when len == n and
        // n > 0 (the n == 0 case returned early), so peek succeeds.
        } else if e < *heap.peek().expect("heap is non-empty at capacity") {
            heap.pop();
            heap.push(e);
        }
    }
    let indices: Vec<usize> = heap.into_sorted_vec().into_iter().map(|e| e.idx).collect();
    Ok(df.take(&indices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, ColumnDef, TableSchema};

    fn db_with_rows(n: i64) -> Database {
        let db = Database::in_memory(vec![TableSchema::new(
            "logs",
            vec![
                ColumnDef::indexed("name", ColType::Str),
                ColumnDef::new("tstamp", ColType::Int),
                ColumnDef::new("value", ColType::Float),
            ],
        )]);
        for i in 0..n {
            db.insert(
                "logs",
                vec![
                    format!("m{}", i % 3).into(),
                    i.into(),
                    (i as f64 / 10.0).into(),
                ],
            )
            .unwrap();
        }
        db.commit().unwrap();
        db
    }

    #[test]
    fn eq_uses_index_and_matches_scan() {
        let db = db_with_rows(30);
        let q = Query::table("logs").filter_eq("name", "m1");
        let df = q.execute(&db).unwrap();
        assert_eq!(df.n_rows(), 10);
        let scan = db.scan("logs").unwrap().filter_eq("name", &"m1".into());
        assert_eq!(df.to_rows(), scan.to_rows());
    }

    #[test]
    fn range_predicates() {
        let db = db_with_rows(20);
        let df = Query::table("logs")
            .filter("tstamp", CmpOp::Ge, 15)
            .filter("tstamp", CmpOp::Lt, 18)
            .execute(&db)
            .unwrap();
        assert_eq!(df.n_rows(), 3);
    }

    #[test]
    fn combined_index_and_residual() {
        let db = db_with_rows(30);
        let df = Query::table("logs")
            .filter_eq("name", "m0")
            .filter("tstamp", CmpOp::Gt, 10)
            .execute(&db)
            .unwrap();
        // m0 occurs at tstamps 0,3,...,27; those > 10: 12,15,...,27 → 6 rows
        assert_eq!(df.n_rows(), 6);
    }

    #[test]
    fn in_predicate_uses_index_in_insertion_order() {
        let db = db_with_rows(9);
        let df = Query::table("logs")
            .filter_in("name", vec!["m2".into(), "m0".into()])
            .execute(&db)
            .unwrap();
        // Insertion order, not per-value order: m0 at 0,3,6; m2 at 2,5,8.
        let ts: Vec<i64> = df
            .column("tstamp")
            .unwrap()
            .values
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        assert_eq!(ts, vec![0, 2, 3, 5, 6, 8]);
        // Identical to the unindexed evaluation of the same predicate.
        let scan = db
            .scan("logs")
            .unwrap()
            .filter(|r| ["m0", "m2"].contains(&r.get("name").unwrap().to_text().as_str()));
        assert_eq!(df.to_rows(), scan.to_rows());
    }

    #[test]
    fn in_predicate_residual_on_unindexed_column() {
        let db = db_with_rows(10);
        let df = Query::table("logs")
            .filter_in("tstamp", vec![1.into(), 4.into(), 99.into()])
            .execute(&db)
            .unwrap();
        assert_eq!(df.n_rows(), 2);
    }

    #[test]
    fn planner_picks_most_selective_index() {
        // name is indexed with 10 rows per value; the IN predicate narrows
        // to a single value → the IN path (10 candidates) must win over the
        // Eq path only when it is tighter.
        let db = db_with_rows(30);
        let df = Query::table("logs")
            .filter_eq("name", "m0")
            .filter_in("name", vec!["m0".into()])
            .execute(&db)
            .unwrap();
        assert_eq!(df.n_rows(), 10);
        // Disjoint Eq + IN predicates conjoin to nothing.
        let df = Query::table("logs")
            .filter_eq("name", "m0")
            .filter_in("name", vec!["m1".into()])
            .execute(&db)
            .unwrap();
        assert_eq!(df.n_rows(), 0);
    }

    #[test]
    fn projection_and_order_and_limit() {
        let db = db_with_rows(10);
        let df = Query::table("logs")
            .order_by("tstamp", false)
            .limit(3)
            .project(&["tstamp"])
            .execute(&db)
            .unwrap();
        assert_eq!(df.column_names(), vec!["tstamp"]);
        let ts: Vec<i64> = df
            .column("tstamp")
            .unwrap()
            .values
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        assert_eq!(ts, vec![9, 8, 7]);
    }

    #[test]
    fn top_k_matches_full_sort_exactly() {
        // 40 rows, 3-way ties on `name`: the heap must reproduce the
        // stable sort's tie-breaking (row order) byte for byte, on both
        // single- and multi-key orderings, ascending and descending.
        let db = db_with_rows(40);
        for keys in [
            vec![("name", true)],
            vec![("name", false)],
            vec![("name", true), ("tstamp", false)],
            vec![("tstamp", false)],
        ] {
            for n in [0usize, 1, 7, 39, 40, 100] {
                let mut q = Query::table("logs").limit(n);
                for (c, asc) in &keys {
                    q = q.order_by(c, *asc);
                }
                let got = q.execute(&db).unwrap();
                let want = db
                    .pin()
                    .scan("logs")
                    .unwrap()
                    .sort_by(&keys)
                    .unwrap()
                    .head(n);
                assert_eq!(got.to_rows(), want.to_rows(), "keys={keys:?} n={n}");
            }
        }
    }

    #[test]
    fn explain_reports_order_path() {
        let db = db_with_rows(20);
        let snap = db.pin();
        let (_, ex) = snap
            .explain(&Query::table("logs").order_by("tstamp", false).limit(3))
            .unwrap();
        assert_eq!(ex.order, OrderPath::TopK);
        assert!(ex.to_string().contains("order: top-k"));
        let (_, ex) = snap
            .explain(&Query::table("logs").order_by("tstamp", false))
            .unwrap();
        assert_eq!(ex.order, OrderPath::FullSort);
        let (_, ex) = snap.explain(&Query::table("logs")).unwrap();
        assert_eq!(ex.order, OrderPath::Unordered);
        assert!(!ex.to_string().contains("order:"));
    }

    #[test]
    fn unknown_predicate_column_matches_nothing() {
        let db = db_with_rows(5);
        let df = Query::table("logs")
            .filter_eq("no_such_col", 1)
            .execute(&db)
            .unwrap();
        assert_eq!(df.n_rows(), 0);
        let df = Query::table("logs")
            .filter_in("no_such_col", vec![1.into()])
            .execute(&db)
            .unwrap();
        assert_eq!(df.n_rows(), 0);
    }

    #[test]
    fn ne_lt_le_operators() {
        let db = db_with_rows(4);
        assert_eq!(
            Query::table("logs")
                .filter("tstamp", CmpOp::Ne, 0)
                .execute(&db)
                .unwrap()
                .n_rows(),
            3
        );
        assert_eq!(
            Query::table("logs")
                .filter("tstamp", CmpOp::Le, 1)
                .execute(&db)
                .unwrap()
                .n_rows(),
            2
        );
    }

    #[test]
    fn missing_table_errors() {
        let db = db_with_rows(1);
        assert!(Query::table("absent").execute(&db).is_err());
    }

    #[test]
    fn predicate_matches_and_displays() {
        let p = Predicate::new("tstamp", CmpOp::Ge, 5);
        assert!(p.matches(&Value::Int(5)));
        assert!(!p.matches(&Value::Int(4)));
        assert_eq!(p.to_string(), "tstamp >= Int(5)");
    }
}
