//! A small query layer: predicate pushdown onto indexes, projection, and
//! ordering, materialising [`DataFrame`]s.
//!
//! FlorDB promises "powerful, SQL-like data reads" (§3.1). Complex
//! relational work (joins, pivots) happens on the dataframe layer; the
//! query layer's job is to get the right rows out of the store cheaply —
//! equality predicates are served from secondary hash indexes when one is
//! available.

use crate::db::{rows_to_frame, Database, StoreResult};
use flor_df::{DataFrame, Value};

/// Comparison operators for scan predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality (index-eligible).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

impl CmpOp {
    fn eval(&self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// One predicate: `column op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Column name.
    pub col: String,
    /// Operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Value,
}

/// A declarative query against one table.
#[derive(Debug, Clone)]
pub struct Query {
    table: String,
    predicates: Vec<Predicate>,
    projection: Option<Vec<String>>,
    order_by: Vec<(String, bool)>,
    limit: Option<usize>,
}

impl Query {
    /// Query all rows of `table`.
    pub fn table(table: &str) -> Query {
        Query {
            table: table.to_string(),
            predicates: Vec::new(),
            projection: None,
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// Add an equality predicate (index-eligible).
    pub fn filter_eq(mut self, col: &str, value: impl Into<Value>) -> Query {
        self.predicates.push(Predicate {
            col: col.to_string(),
            op: CmpOp::Eq,
            value: value.into(),
        });
        self
    }

    /// Add a general comparison predicate.
    pub fn filter(mut self, col: &str, op: CmpOp, value: impl Into<Value>) -> Query {
        self.predicates.push(Predicate {
            col: col.to_string(),
            op,
            value: value.into(),
        });
        self
    }

    /// Project only these columns (in order).
    pub fn project(mut self, cols: &[&str]) -> Query {
        self.projection = Some(cols.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Sort by `col` ascending (`true`) or descending; may be chained.
    pub fn order_by(mut self, col: &str, ascending: bool) -> Query {
        self.order_by.push((col.to_string(), ascending));
        self
    }

    /// Keep at most `n` rows (applied after ordering).
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// Execute against `db`.
    pub fn execute(&self, db: &Database) -> StoreResult<DataFrame> {
        // Plan: pick the first Eq predicate over an indexed column as the
        // access path; residual predicates filter the fetched rows.
        let access = self
            .predicates
            .iter()
            .position(|p| p.op == CmpOp::Eq && db.has_index(&self.table, &p.col));

        let mut df = db.with_table(&self.table, |t| {
            let candidate_rids: Vec<usize> = match access {
                Some(i) => {
                    let p = &self.predicates[i];
                    t.indexes
                        .get(&p.col)
                        .and_then(|idx| idx.get(&p.value))
                        .cloned()
                        .unwrap_or_default()
                }
                None => (0..t.rows.len()).collect(),
            };
            let residual: Vec<(usize, &Predicate)> = self
                .predicates
                .iter()
                .enumerate()
                .filter(|(i, _)| Some(*i) != access)
                .filter_map(|(_, p)| t.schema.col_index(&p.col).map(|ci| (ci, p)))
                .collect();
            let rows = candidate_rids.iter().map(|&r| &t.rows[r]).filter(|row| {
                residual
                    .iter()
                    .all(|(ci, p)| p.op.eval(&row[*ci], &p.value))
            });
            rows_to_frame(&t.schema, rows)
        })?;

        // Drop rows referencing unknown predicate columns conservatively:
        // a predicate over a column the schema lacks matches nothing.
        for p in &self.predicates {
            if df.column(&p.col).is_none() {
                df = df.head(0);
            }
        }
        if !self.order_by.is_empty() {
            let keys: Vec<(&str, bool)> = self
                .order_by
                .iter()
                .map(|(c, a)| (c.as_str(), *a))
                .collect();
            df = df.sort_by(&keys)?;
        }
        if let Some(n) = self.limit {
            df = df.head(n);
        }
        if let Some(proj) = &self.projection {
            let cols: Vec<&str> = proj.iter().map(String::as_str).collect();
            df = df.select(&cols)?;
        }
        Ok(df)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, ColumnDef, TableSchema};

    fn db_with_rows(n: i64) -> Database {
        let db = Database::in_memory(vec![TableSchema::new(
            "logs",
            vec![
                ColumnDef::indexed("name", ColType::Str),
                ColumnDef::new("tstamp", ColType::Int),
                ColumnDef::new("value", ColType::Float),
            ],
        )]);
        for i in 0..n {
            db.insert(
                "logs",
                vec![
                    format!("m{}", i % 3).into(),
                    i.into(),
                    (i as f64 / 10.0).into(),
                ],
            )
            .unwrap();
        }
        db.commit().unwrap();
        db
    }

    #[test]
    fn eq_uses_index_and_matches_scan() {
        let db = db_with_rows(30);
        let q = Query::table("logs").filter_eq("name", "m1");
        let df = q.execute(&db).unwrap();
        assert_eq!(df.n_rows(), 10);
        let scan = db.scan("logs").unwrap().filter_eq("name", &"m1".into());
        assert_eq!(df.to_rows(), scan.to_rows());
    }

    #[test]
    fn range_predicates() {
        let db = db_with_rows(20);
        let df = Query::table("logs")
            .filter("tstamp", CmpOp::Ge, 15)
            .filter("tstamp", CmpOp::Lt, 18)
            .execute(&db)
            .unwrap();
        assert_eq!(df.n_rows(), 3);
    }

    #[test]
    fn combined_index_and_residual() {
        let db = db_with_rows(30);
        let df = Query::table("logs")
            .filter_eq("name", "m0")
            .filter("tstamp", CmpOp::Gt, 10)
            .execute(&db)
            .unwrap();
        // m0 occurs at tstamps 0,3,...,27; those > 10: 12,15,...,27 → 6 rows
        assert_eq!(df.n_rows(), 6);
    }

    #[test]
    fn projection_and_order_and_limit() {
        let db = db_with_rows(10);
        let df = Query::table("logs")
            .order_by("tstamp", false)
            .limit(3)
            .project(&["tstamp"])
            .execute(&db)
            .unwrap();
        assert_eq!(df.column_names(), vec!["tstamp"]);
        let ts: Vec<i64> = df
            .column("tstamp")
            .unwrap()
            .values
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        assert_eq!(ts, vec![9, 8, 7]);
    }

    #[test]
    fn unknown_predicate_column_matches_nothing() {
        let db = db_with_rows(5);
        let df = Query::table("logs")
            .filter_eq("no_such_col", 1)
            .execute(&db)
            .unwrap();
        assert_eq!(df.n_rows(), 0);
    }

    #[test]
    fn ne_lt_le_operators() {
        let db = db_with_rows(4);
        assert_eq!(
            Query::table("logs")
                .filter("tstamp", CmpOp::Ne, 0)
                .execute(&db)
                .unwrap()
                .n_rows(),
            3
        );
        assert_eq!(
            Query::table("logs")
                .filter("tstamp", CmpOp::Le, 1)
                .execute(&db)
                .unwrap()
                .n_rows(),
            2
        );
    }

    #[test]
    fn missing_table_errors() {
        let db = db_with_rows(1);
        assert!(Query::table("absent").execute(&db).is_err());
    }
}
