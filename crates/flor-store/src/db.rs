//! The database: segmented MVCC tables, secondary indexes, transactions,
//! checkpointed recovery.
//!
//! # Concurrency model
//!
//! The paper's FlorDB is embedded in one driver process per run; we
//! mirror that with a single logical writer and any number of readers.
//! Readers only ever see committed rows ("visibility control", §2.1) —
//! but unlike the original lock-per-scan design, readers here never hold
//! a lock while scanning.
//!
//! Each table is a list of immutable, `Arc`-shared **sealed segments**.
//! [`Database::commit`] seals the staged delta into a new segment (small
//! tail segments are coalesced so segment counts stay logarithmic-ish in
//! history, not linear in commit count) and publishes a new table version
//! — a fresh `Arc` list; the rows themselves are never copied for
//! publication and never mutated after sealing.
//!
//! [`Database::pin`] takes the inner lock for the nanoseconds needed to
//! clone one `Arc` and read the epoch, and returns an epoch-stamped
//! [`Snapshot`]. Every scan, lookup and query then runs **lock-free**
//! against the pinned segments: a concurrent commit builds new versions
//! beside them and can neither block nor be blocked by any number of
//! readers. A pinned snapshot is stable forever — re-scanning it yields
//! byte-identical frames no matter how many commits land meanwhile (the
//! `snapshot_isolation` property test).
//!
//! Secondary hash indexes are per-segment, built once at seal time, with
//! global row ids (`segment.start + local offset`) so multi-segment
//! results recover scan order by a plain sort.
//!
//! # Durability
//!
//! Writes go to the [`crate::wal`] as before (staged inserts immediately,
//! visibility at the commit marker). [`Database::checkpoint`] serializes
//! a pinned snapshot to a `<wal>.ckpt` sidecar and truncates the WAL to
//! the uncovered tail, making [`Database::open`] O(live data): load the
//! sidecar, replay only the tail (see [`crate::checkpoint`] for the
//! crash-safety argument, including a crash *between* the sidecar write
//! and the truncation).

use crate::checkpoint::{self, CheckpointData};
use crate::codec::WalRecord;
use crate::feed::{CommitBatch, Publisher, RowDelta, Subscription};
use crate::schema::TableSchema;
use crate::wal::{Wal, WalError};
use flor_df::{Column, DataFrame, DfResult, Value};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Tail segments smaller than this are coalesced into their successor at
/// commit time, bounding per-table segment counts (and therefore pin and
/// multi-segment-lookup costs) under many small commits. Coalescing
/// copies at most this many row vectors of cheap `Arc`-clone values; the
/// sealed segments readers already pinned are untouched.
pub const SEGMENT_COALESCE_ROWS: usize = 512;

/// Store-level errors.
#[derive(Debug)]
pub enum StoreError {
    /// Unknown table name.
    NoSuchTable(String),
    /// Row failed schema validation.
    Invalid(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// WAL or checkpoint decode failure on recovery.
    Codec(crate::codec::CodecError),
    /// Dataframe construction failure.
    Df(flor_df::DfError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StoreError::Invalid(m) => write!(f, "invalid row: {m}"),
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Codec(e) => write!(f, "wal codec error: {e}"),
            StoreError::Df(e) => write!(f, "dataframe error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
impl From<flor_df::DfError> for StoreError {
    fn from(e: flor_df::DfError) -> Self {
        StoreError::Df(e)
    }
}
impl From<WalError> for StoreError {
    fn from(e: WalError) -> Self {
        match e {
            WalError::Io(e) => StoreError::Io(e),
            WalError::Codec(e) => StoreError::Codec(e),
        }
    }
}

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// One immutable run of committed rows. Sealed at commit time, shared by
/// `Arc` between the live table and every pinned snapshot; never mutated
/// afterwards.
#[derive(Debug)]
pub(crate) struct Segment {
    /// Global row id of this segment's first row.
    pub start: usize,
    /// Committed rows, in insertion order.
    pub rows: Vec<Vec<Value>>,
    /// column name → value → local row offsets (ascending). Built once
    /// at seal time.
    pub indexes: HashMap<String, HashMap<Value, Vec<u32>>>,
}

impl Segment {
    fn seal(schema: &TableSchema, start: usize, rows: Vec<Vec<Value>>) -> Segment {
        let mut indexes: HashMap<String, HashMap<Value, Vec<u32>>> = schema
            .columns
            .iter()
            .filter(|c| c.indexed)
            .map(|c| (c.name.clone(), HashMap::new()))
            .collect();
        for (col, idx) in &mut indexes {
            let pos = schema
                .col_index(col)
                .expect("indexed column exists in schema");
            for (i, row) in rows.iter().enumerate() {
                idx.entry(row[pos].clone()).or_default().push(i as u32);
            }
        }
        Segment {
            start,
            rows,
            indexes,
        }
    }
}

/// One published version of a table: its schema plus the segment list at
/// some epoch. Immutable; commits publish a successor version.
#[derive(Debug)]
pub(crate) struct TableVersion {
    pub schema: Arc<TableSchema>,
    pub segments: Vec<Arc<Segment>>,
    pub total_rows: usize,
}

impl TableVersion {
    fn empty(schema: Arc<TableSchema>) -> TableVersion {
        TableVersion {
            schema,
            segments: Vec::new(),
            total_rows: 0,
        }
    }

    /// Successor version with `new_rows` appended: seals a new segment,
    /// coalescing a small tail segment (not the pinned copies of it).
    fn with_appended(&self, new_rows: Vec<Vec<Value>>) -> TableVersion {
        let mut segments = self.segments.clone();
        let added = new_rows.len();
        let merged = match segments.last() {
            Some(last) if last.rows.len() < SEGMENT_COALESCE_ROWS => {
                let last = segments.pop().expect("just matched");
                let mut rows = last.rows.clone();
                rows.extend(new_rows);
                Segment::seal(&self.schema, last.start, rows)
            }
            _ => Segment::seal(&self.schema, self.total_rows, new_rows),
        };
        segments.push(Arc::new(merged));
        TableVersion {
            schema: Arc::clone(&self.schema),
            segments,
            total_rows: self.total_rows + added,
        }
    }

    /// Row by global id.
    pub fn row(&self, rid: usize) -> &Vec<Value> {
        let i = self.segments.partition_point(|s| s.start <= rid) - 1;
        let seg = &self.segments[i];
        &seg.rows[rid - seg.start]
    }

    /// All rows, in insertion (global id) order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &Vec<Value>> {
        self.segments.iter().flat_map(|s| s.rows.iter())
    }

    /// Whether `col` carries a secondary index.
    pub fn has_index(&self, col: &str) -> bool {
        self.schema
            .columns
            .iter()
            .any(|c| c.indexed && c.name == col)
    }

    /// Global row ids matching `col == value` via the per-segment
    /// indexes, ascending. `None` when the column has no index.
    pub fn index_rids(&self, col: &str, value: &Value) -> Option<Vec<usize>> {
        if !self.has_index(col) {
            return None;
        }
        let mut out = Vec::new();
        for seg in &self.segments {
            if let Some(postings) = seg.indexes.get(col).and_then(|idx| idx.get(value)) {
                out.extend(postings.iter().map(|&i| seg.start + i as usize));
            }
        }
        Some(out)
    }

    /// Number of rows matching `col == value` via the index (0 without
    /// an index — callers check [`TableVersion::has_index`] first).
    pub fn index_len(&self, col: &str, value: &Value) -> usize {
        self.segments
            .iter()
            .filter_map(|seg| seg.indexes.get(col).and_then(|idx| idx.get(value)))
            .map(Vec::len)
            .sum()
    }
}

/// Recovery cost accounting for the most recent [`Database::open`] —
/// how much state came from the checkpoint sidecar versus WAL replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Whether a checkpoint sidecar seeded the tables.
    pub from_checkpoint: bool,
    /// Rows loaded directly from the sidecar (no per-record replay).
    pub checkpoint_rows: usize,
    /// WAL frames decoded during replay (the physical tail cost).
    pub wal_records_replayed: usize,
    /// Committed rows applied from the WAL tail.
    pub rows_replayed: usize,
}

/// Summary of one completed [`Database::checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Epoch the sidecar snapshot reflects.
    pub epoch: u64,
    /// Highest committed transaction the sidecar covers.
    pub max_txn: u64,
    /// Rows serialized.
    pub rows: usize,
    /// Sidecar size in bytes (0 for in-memory databases, which compact
    /// the log without writing a sidecar).
    pub sidecar_bytes: u64,
    /// WAL size before truncation.
    pub wal_bytes_before: u64,
    /// WAL size after truncation (the uncovered tail).
    pub wal_bytes_after: u64,
}

struct DbInner {
    /// The published table versions. Swapped wholesale at commit /
    /// `ensure_table`, so [`Database::pin`] is one `Arc` clone.
    tables: Arc<HashMap<String, Arc<TableVersion>>>,
    wal: Wal,
    next_txn: u64,
    open_txn: Option<u64>,
    staged: Vec<(String, Vec<Value>)>,
    /// Count of applied commits; the staleness watermark for the change
    /// feed and materialized views.
    epoch: u64,
    /// Highest committed transaction id — the coverage bound a checkpoint
    /// records (an open transaction always has a higher id).
    last_committed_txn: u64,
    feed: Publisher,
    /// WAL-bytes threshold past which a commit spawns a background
    /// checkpoint (None = disabled, the store default; the kernel turns
    /// it on).
    auto_checkpoint: Option<u64>,
    /// Checkpoints taken by this handle.
    checkpoints: u64,
    /// Epoch of the newest completed checkpoint.
    last_checkpoint_epoch: u64,
    /// What the last `open` cost (checkpoint rows vs WAL replay).
    recovery: RecoveryInfo,
}

/// An embedded relational database holding the FlorDB context tables.
///
/// Cloning shares the same underlying state (cheap `Arc` clone).
#[derive(Clone)]
pub struct Database {
    inner: Arc<RwLock<DbInner>>,
    /// Serializes whole checkpoints. Two concurrent checkpoints could
    /// otherwise interleave so that a *stale* sidecar (pinned earlier)
    /// overwrites a newer one after the newer run already truncated the
    /// WAL — permanently losing the transactions in between.
    ckpt_serial: Arc<parking_lot::Mutex<()>>,
    /// Single-flight guard for the auto-checkpoint thread.
    auto_ckpt_running: Arc<std::sync::atomic::AtomicBool>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.read();
        f.debug_struct("Database")
            .field("tables", &g.tables.len())
            .field("epoch", &g.epoch)
            .finish_non_exhaustive()
    }
}

/// An epoch-stamped, immutable view of every table: the unit of
/// isolation. Obtained from [`Database::pin`] in O(1); all reads against
/// it are lock-free and stable — concurrent commits publish new table
/// versions without touching the pinned segments.
///
/// Cloning a snapshot is one `Arc` clone.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    tables: Arc<HashMap<String, Arc<TableVersion>>>,
}

impl Snapshot {
    /// The commit count this snapshot reflects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    pub(crate) fn table(&self, name: &str) -> StoreResult<&TableVersion> {
        self.tables
            .get(name)
            .map(Arc::as_ref)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    /// Number of committed rows in a table.
    pub fn row_count(&self, table: &str) -> StoreResult<usize> {
        Ok(self.table(table)?.total_rows)
    }

    /// Full scan of committed rows as a [`DataFrame`].
    pub fn scan(&self, table: &str) -> StoreResult<DataFrame> {
        let t = self.table(table)?;
        Ok(rows_to_frame(&t.schema, t.iter_rows()))
    }

    /// Point lookup via a secondary index if one exists on `col`; falls
    /// back to a filtered scan otherwise.
    pub fn lookup(&self, table: &str, col: &str, value: &Value) -> StoreResult<DataFrame> {
        let t = self.table(table)?;
        if let Some(rids) = t.index_rids(col, value) {
            return Ok(rows_to_frame(&t.schema, rids.iter().map(|&r| t.row(r))));
        }
        let pos = t
            .schema
            .col_index(col)
            .ok_or_else(|| StoreError::Invalid(format!("no column {col}")))?;
        Ok(rows_to_frame(
            &t.schema,
            t.iter_rows().filter(|r| &r[pos] == value),
        ))
    }

    /// Multi-value point lookup: rows where `col` equals any of `values`,
    /// in insertion order (the order a full scan yields), via the
    /// secondary indexes when they exist.
    pub fn lookup_many(&self, table: &str, col: &str, values: &[Value]) -> StoreResult<DataFrame> {
        let t = self.table(table)?;
        if t.has_index(col) {
            let mut rids: Vec<usize> = values
                .iter()
                .flat_map(|v| t.index_rids(col, v).unwrap_or_default())
                .collect();
            rids.sort_unstable();
            rids.dedup();
            return Ok(rows_to_frame(&t.schema, rids.iter().map(|&r| t.row(r))));
        }
        let pos = t
            .schema
            .col_index(col)
            .ok_or_else(|| StoreError::Invalid(format!("no column {col}")))?;
        Ok(rows_to_frame(
            &t.schema,
            t.iter_rows().filter(|r| values.contains(&r[pos])),
        ))
    }

    /// Execute a [`crate::query::Query`] against this snapshot.
    pub fn query(&self, q: &crate::query::Query) -> StoreResult<DataFrame> {
        q.run_on(self.table(q.table_name())?)
    }

    /// Total committed rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.total_rows).sum()
    }

    /// The raw committed rows of every table, in scan order — what a
    /// checkpoint serializes.
    fn to_checkpoint(&self, max_txn: u64) -> CheckpointData {
        let mut tables: Vec<(String, Vec<Vec<Value>>)> = self
            .tables
            .iter()
            .map(|(name, t)| (name.clone(), t.iter_rows().cloned().collect()))
            .collect();
        tables.sort_by(|(a, _), (b, _)| a.cmp(b));
        CheckpointData {
            epoch: self.epoch,
            max_txn,
            tables,
        }
    }
}

/// Statistics snapshot for monitoring and benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbStats {
    /// Committed rows per table.
    pub rows_per_table: Vec<(String, usize)>,
    /// Total committed rows.
    pub total_rows: usize,
    /// Sealed segments across all tables.
    pub segments: usize,
    /// Records appended to the WAL so far.
    pub wal_records: u64,
    /// Rows staged in the open transaction.
    pub staged_rows: usize,
    /// Commits applied so far: the staleness watermark that change-feed
    /// batches and materialized views are stamped with.
    pub wal_epoch: u64,
    /// Bytes currently in the WAL (including any recovered prefix for
    /// file-backed logs) — the physical log offset. Shrinks when a
    /// checkpoint truncates the log.
    pub wal_offset_bytes: u64,
    /// Checkpoints completed by this handle.
    pub checkpoints: u64,
    /// Epoch of the newest completed checkpoint (0 if none).
    pub last_checkpoint_epoch: u64,
    /// Live change-feed subscriptions.
    pub subscribers: usize,
}

impl Database {
    /// In-memory database with the given schemas.
    pub fn in_memory(schemas: Vec<TableSchema>) -> Database {
        Database::from_parts(schemas, Wal::in_memory(), None)
            .expect("an empty in-memory log cannot fail recovery")
    }

    /// File-backed database: loads the checkpoint sidecar if one exists,
    /// then replays the WAL tail (committed transactions only) — O(live
    /// data), not O(history) — and then accepts new appends.
    pub fn open(path: &Path, schemas: Vec<TableSchema>) -> StoreResult<Database> {
        let wal = Wal::open(path)?;
        let ckpt = checkpoint::load_sidecar(path)?;
        Database::from_parts(schemas, wal, ckpt)
    }

    fn from_parts(
        schemas: Vec<TableSchema>,
        wal: Wal,
        ckpt: Option<CheckpointData>,
    ) -> StoreResult<Database> {
        let mut tables: HashMap<String, Arc<TableVersion>> = schemas
            .into_iter()
            .map(|s| {
                let schema = Arc::new(s);
                (schema.name.clone(), Arc::new(TableVersion::empty(schema)))
            })
            .collect();
        let mut recovery_info = RecoveryInfo::default();
        let (base_epoch, base_txn) = match ckpt {
            Some(data) => {
                recovery_info.from_checkpoint = true;
                // Move the decoded rows straight into segments — the
                // sidecar decode is the only copy on the reopen path.
                for (name, rows) in data.tables {
                    recovery_info.checkpoint_rows += rows.len();
                    if let Some(t) = tables.get_mut(&name) {
                        if !rows.is_empty() {
                            *t = Arc::new(t.with_appended(rows));
                        }
                    }
                }
                (data.epoch, data.max_txn)
            }
            None => (0, 0),
        };
        let recovery = wal.recover(base_txn)?;
        recovery_info.wal_records_replayed = recovery.records_replayed;
        recovery_info.rows_replayed = recovery.committed.len();
        // Group the replayed tail per table, preserving log order, and
        // seal one segment per table.
        let mut per_table: HashMap<String, Vec<Vec<Value>>> = HashMap::new();
        for (tname, row) in recovery.committed {
            per_table.entry(tname).or_default().push(row);
        }
        for (tname, rows) in per_table {
            if let Some(t) = tables.get_mut(&tname) {
                *t = Arc::new(t.with_appended(rows));
            }
        }
        // Uncommitted ids from a crashed process never commit later, so
        // the checkpoint coverage bound may safely advance past them.
        let last_committed_txn = recovery.max_txn.max(base_txn);
        Ok(Database {
            ckpt_serial: Arc::new(parking_lot::Mutex::new(())),
            auto_ckpt_running: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            inner: Arc::new(RwLock::new(DbInner {
                tables: Arc::new(tables),
                next_txn: last_committed_txn + 1,
                open_txn: None,
                staged: Vec::new(),
                epoch: base_epoch + recovery.committed_txns as u64,
                last_committed_txn,
                feed: Publisher::default(),
                auto_checkpoint: None,
                checkpoints: 0,
                last_checkpoint_epoch: if recovery_info.from_checkpoint {
                    base_epoch
                } else {
                    0
                },
                recovery: recovery_info,
                wal,
            })),
        })
    }

    /// Register an additional table (no-op if it already exists).
    pub fn ensure_table(&self, schema: TableSchema) {
        let mut g = self.inner.write();
        if g.tables.contains_key(&schema.name) {
            return;
        }
        let tables = Arc::make_mut(&mut g.tables);
        let schema = Arc::new(schema);
        tables.insert(schema.name.clone(), Arc::new(TableVersion::empty(schema)));
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.pin().table_names()
    }

    /// Pin the current committed state: an epoch-stamped [`Snapshot`]
    /// sharing the sealed segments by `Arc`. O(1) — the lock is held for
    /// one pointer clone — and every read against the snapshot afterwards
    /// is lock-free.
    pub fn pin(&self) -> Snapshot {
        let g = self.inner.read();
        Snapshot {
            epoch: g.epoch,
            tables: Arc::clone(&g.tables),
        }
    }

    /// Stage a row into the open transaction (starting one if needed) and
    /// append it to the WAL. Invisible to readers until [`Database::commit`].
    pub fn insert(&self, table: &str, row: Vec<Value>) -> StoreResult<()> {
        let mut g = self.inner.write();
        let schema = Arc::clone(
            &g.tables
                .get(table)
                .ok_or_else(|| StoreError::NoSuchTable(table.to_string()))?
                .schema,
        );
        schema.validate(&row).map_err(StoreError::Invalid)?;
        let txn = match g.open_txn {
            Some(t) => t,
            None => {
                let t = g.next_txn;
                g.next_txn += 1;
                g.open_txn = Some(t);
                t
            }
        };
        g.wal.append(&WalRecord::Insert {
            txn,
            table: table.to_string(),
            row: row.clone(),
        })?;
        g.staged.push((table.to_string(), row));
        Ok(())
    }

    /// Commit the open transaction: write the commit marker, fsync, seal
    /// the staged rows into new table segments, and publish the new table
    /// versions. Returns the number of rows made visible.
    ///
    /// Publication is a pointer swap: snapshots pinned before the commit
    /// keep reading the old segment lists untouched.
    pub fn commit(&self) -> StoreResult<usize> {
        let mut g = self.inner.write();
        let Some(txn) = g.open_txn.take() else {
            return Ok(0);
        };
        g.wal.append(&WalRecord::Commit { txn })?;
        g.wal.sync()?;
        let staged = std::mem::take(&mut g.staged);
        let n = staged.len();
        // Only clone rows into a feed batch when someone is listening;
        // with no subscribers the commit path stays delta-free.
        let publishing = g.feed.live() > 0;
        let mut deltas = Vec::with_capacity(if publishing { n } else { 0 });
        // Group per table, preserving insertion order.
        let mut per_table: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
        for (tname, row) in staged {
            if publishing {
                deltas.push(RowDelta {
                    table: tname.clone(),
                    row: row.clone(),
                });
            }
            match per_table.iter_mut().find(|(t, _)| *t == tname) {
                Some((_, rows)) => rows.push(row),
                None => per_table.push((tname, vec![row])),
            }
        }
        let tables = Arc::make_mut(&mut g.tables);
        for (tname, rows) in per_table {
            if let Some(t) = tables.get_mut(&tname) {
                *t = Arc::new(t.with_appended(rows));
            }
        }
        g.epoch += 1;
        g.last_committed_txn = txn;
        if publishing {
            let batch = CommitBatch {
                epoch: g.epoch,
                txn,
                deltas: Arc::new(deltas),
            };
            g.feed.publish(batch);
        }
        // Auto-checkpoint lives here, at the store commit layer, so every
        // writer trips it — including background jobs, whose per-unit
        // transactions never pass through the kernel's commit API.
        let trigger = g
            .auto_checkpoint
            .is_some_and(|threshold| g.wal.len_bytes() >= threshold);
        drop(g);
        if trigger
            && !self
                .auto_ckpt_running
                .swap(true, std::sync::atomic::Ordering::SeqCst)
        {
            let db = self.clone();
            std::thread::spawn(move || {
                let _ = db.checkpoint();
                db.auto_ckpt_running
                    .store(false, std::sync::atomic::Ordering::SeqCst);
            });
        }
        Ok(n)
    }

    /// Enable (or disable, with `None`) auto-checkpointing: any commit
    /// that leaves the WAL at or past `threshold` bytes spawns one
    /// background [`Database::checkpoint`] (single-flight; checkpoints
    /// are serialized regardless).
    pub fn set_auto_checkpoint(&self, threshold: Option<u64>) {
        self.inner.write().auto_checkpoint = threshold;
    }

    /// Subscribe to the change feed: every subsequent [`Database::commit`]
    /// delivers one [`CommitBatch`] of the rows it made visible. Poll with
    /// [`Subscription::poll`]; drop the subscription to detach.
    pub fn subscribe(&self) -> Subscription {
        let mut g = self.inner.write();
        let epoch = g.epoch;
        Subscription::new(g.feed.attach(), epoch)
    }

    /// Current epoch: the number of commits applied so far.
    pub fn epoch(&self) -> u64 {
        self.inner.read().epoch
    }

    /// Atomic multi-table scan: the frames plus the epoch they reflect,
    /// materialized from one pinned [`Snapshot`] so no commit can
    /// interleave. This is the consistent snapshot a materialized-view
    /// build starts from.
    pub fn snapshot(&self, tables: &[&str]) -> StoreResult<(u64, Vec<DataFrame>)> {
        let snap = self.pin();
        let mut frames = Vec::with_capacity(tables.len());
        for table in tables {
            frames.push(snap.scan(table)?);
        }
        Ok((snap.epoch(), frames))
    }

    /// Atomic multi-query snapshot: like [`Database::snapshot`], but each
    /// table is fetched through a [`crate::query::Query`] — predicate
    /// pushdown and index fast paths included — against one pinned
    /// [`Snapshot`], so every result reflects the same epoch. This is how
    /// a filtered materialized-view build pushes its scan down into the
    /// store instead of materialising whole tables first.
    pub fn snapshot_with(
        &self,
        queries: &[crate::query::Query],
    ) -> StoreResult<(u64, Vec<DataFrame>)> {
        let snap = self.pin();
        let mut frames = Vec::with_capacity(queries.len());
        for q in queries {
            frames.push(snap.query(q)?);
        }
        Ok((snap.epoch(), frames))
    }

    /// Discard the open transaction's staged rows. (The WAL keeps the
    /// orphaned inserts, but without a commit marker recovery ignores
    /// them — same effect as a crash.)
    pub fn rollback(&self) -> usize {
        let mut g = self.inner.write();
        g.open_txn = None;
        std::mem::take(&mut g.staged).len()
    }

    /// Number of committed rows in a table.
    pub fn row_count(&self, table: &str) -> StoreResult<usize> {
        self.pin().row_count(table)
    }

    /// Full scan of committed rows as a [`DataFrame`] (pins internally;
    /// the scan itself holds no lock).
    pub fn scan(&self, table: &str) -> StoreResult<DataFrame> {
        self.pin().scan(table)
    }

    /// Point lookup via a secondary index if one exists on `col`; falls
    /// back to a filtered scan otherwise.
    pub fn lookup(&self, table: &str, col: &str, value: &Value) -> StoreResult<DataFrame> {
        self.pin().lookup(table, col, value)
    }

    /// Multi-value point lookup: rows where `col` equals any of `values`,
    /// in insertion order (the order a full scan yields), via the
    /// secondary index when one exists. The incremental-view oracle uses
    /// this so the from-scratch recompute visits log rows in exactly the
    /// order the change feed delivered them.
    pub fn lookup_many(&self, table: &str, col: &str, values: &[Value]) -> StoreResult<DataFrame> {
        self.pin().lookup_many(table, col, values)
    }

    /// Whether `col` has a secondary index on `table`.
    pub fn has_index(&self, table: &str, col: &str) -> bool {
        self.pin().table(table).is_ok_and(|t| t.has_index(col))
    }

    /// Checkpoint: serialize the committed state to the `<wal>.ckpt`
    /// sidecar and truncate the WAL to the uncovered tail. Reads and the
    /// writer keep flowing: the serialization runs against a pinned
    /// snapshot with no lock held; only the final WAL truncation takes
    /// the write lock briefly.
    ///
    /// In-memory databases compact the log in place (no sidecar).
    pub fn checkpoint(&self) -> StoreResult<CheckpointStats> {
        self.checkpoint_inner(true)
    }

    /// Failpoint instrumentation for crash tests: run only the
    /// sidecar-write phase of [`Database::checkpoint`], skipping the WAL
    /// truncation — the on-disk state a crash between the two steps
    /// leaves behind. Recovery must (and does) converge regardless.
    pub fn checkpoint_without_truncate(&self) -> StoreResult<CheckpointStats> {
        self.checkpoint_inner(false)
    }

    fn checkpoint_inner(&self, truncate: bool) -> StoreResult<CheckpointStats> {
        // Whole-checkpoint serialization: see the `ckpt_serial` field.
        let _serial = self.ckpt_serial.lock();
        // Phase 1: pin the committed state (O(1) under the read lock).
        // The read lock excludes the writer, so `wal_bytes_before` is a
        // frame boundary: every frame below it is complete.
        let (snap, max_txn, wal_path, wal_bytes_before) = {
            let g = self.inner.read();
            (
                Snapshot {
                    epoch: g.epoch,
                    tables: Arc::clone(&g.tables),
                },
                g.last_committed_txn,
                g.wal.path().map(Path::to_path_buf),
                g.wal.len_bytes(),
            )
        };
        // Phase 2: serialize and persist the sidecar — no lock held, so
        // neither readers nor the writer wait on the serialization.
        let data = snap.to_checkpoint(max_txn);
        let rows = data.rows();
        let sidecar_bytes = match &wal_path {
            Some(p) => checkpoint::write_sidecar(p, &data)?,
            None => 0,
        };
        // Phase 3: truncate the WAL to the records the sidecar does not
        // cover (later commits and any open transaction's staged
        // inserts). For file logs the bulk of the tail is decoded,
        // re-encoded and fsynced with NO lock held (`stage_tail`); the
        // write lock covers only the records that committed meanwhile
        // plus the rename — so the writer never stalls on tail-sized
        // I/O.
        let wal_bytes_after = if truncate {
            match &wal_path {
                Some(p) => {
                    let stage = crate::wal::stage_tail(p, wal_bytes_before, max_txn)?;
                    let mut g = self.inner.write();
                    g.wal.finish_rewrite(stage, wal_bytes_before, max_txn)?;
                    g.checkpoints += 1;
                    g.last_checkpoint_epoch = data.epoch;
                    g.wal.len_bytes()
                }
                None => {
                    let mut g = self.inner.write();
                    let tail = g.wal.tail_records(max_txn)?;
                    g.wal.rewrite(&tail)?;
                    g.checkpoints += 1;
                    g.last_checkpoint_epoch = data.epoch;
                    g.wal.len_bytes()
                }
            }
        } else {
            wal_bytes_before
        };
        Ok(CheckpointStats {
            epoch: data.epoch,
            max_txn,
            rows,
            sidecar_bytes,
            wal_bytes_before,
            wal_bytes_after,
        })
    }

    /// Current WAL size in bytes — the auto-checkpoint trigger input
    /// (shrinks back to the tail size when a checkpoint completes).
    pub fn wal_bytes(&self) -> u64 {
        self.inner.read().wal.len_bytes()
    }

    /// What the most recent [`Database::open`] cost: checkpoint rows
    /// loaded versus WAL records replayed.
    pub fn recovery_info(&self) -> RecoveryInfo {
        self.inner.read().recovery.clone()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DbStats {
        let g = self.inner.read();
        let mut rows_per_table: Vec<(String, usize)> = g
            .tables
            .iter()
            .map(|(n, t)| (n.clone(), t.total_rows))
            .collect();
        rows_per_table.sort();
        DbStats {
            total_rows: rows_per_table.iter().map(|(_, n)| n).sum(),
            segments: g.tables.values().map(|t| t.segments.len()).sum(),
            rows_per_table,
            wal_records: g.wal.records_written,
            staged_rows: g.staged.len(),
            wal_epoch: g.epoch,
            wal_offset_bytes: g.wal.len_bytes(),
            checkpoints: g.checkpoints,
            last_checkpoint_epoch: g.last_checkpoint_epoch,
            subscribers: g.feed.live(),
        }
    }
}

/// Materialise rows into a column-oriented frame with the schema's names.
pub(crate) fn rows_to_frame<'a>(
    schema: &TableSchema,
    rows: impl Iterator<Item = &'a Vec<Value>>,
) -> DataFrame {
    let mut cols: Vec<Column> = schema
        .columns
        .iter()
        .map(|c| Column {
            name: c.name.clone(),
            values: Vec::new(),
        })
        .collect();
    for row in rows {
        for (c, v) in cols.iter_mut().zip(row) {
            c.values.push(v.clone());
        }
    }
    DataFrame::from_columns(cols).expect("schema guarantees equal lengths and unique names")
}

/// Convenience conversion used by higher layers.
pub fn frame_result(df: DataFrame) -> DfResult<DataFrame> {
    Ok(df)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{flor_schema, ColType, ColumnDef};

    fn tiny_schema() -> Vec<TableSchema> {
        vec![TableSchema::new(
            "t",
            vec![
                ColumnDef::indexed("k", ColType::Str),
                ColumnDef::new("v", ColType::Int),
            ],
        )]
    }

    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("flordb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.wal"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(crate::checkpoint::sidecar_path(&path));
        path
    }

    #[test]
    fn insert_invisible_until_commit() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        assert_eq!(db.row_count("t").unwrap(), 0);
        assert_eq!(db.stats().staged_rows, 1);
        assert_eq!(db.commit().unwrap(), 1);
        assert_eq!(db.row_count("t").unwrap(), 1);
    }

    #[test]
    fn rollback_discards() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        assert_eq!(db.rollback(), 1);
        assert_eq!(db.commit().unwrap(), 0);
        assert_eq!(db.row_count("t").unwrap(), 0);
    }

    #[test]
    fn scan_returns_committed_rows() {
        let db = Database::in_memory(tiny_schema());
        for i in 0..5 {
            db.insert("t", vec![format!("k{i}").into(), i.into()])
                .unwrap();
        }
        db.commit().unwrap();
        let df = db.scan("t").unwrap();
        assert_eq!(df.n_rows(), 5);
        assert_eq!(df.column_names(), vec!["k", "v"]);
    }

    #[test]
    fn indexed_lookup_matches_scan_filter() {
        let db = Database::in_memory(tiny_schema());
        for i in 0..100 {
            db.insert("t", vec![format!("k{}", i % 10).into(), i.into()])
                .unwrap();
        }
        db.commit().unwrap();
        assert!(db.has_index("t", "k"));
        let via_index = db.lookup("t", "k", &"k3".into()).unwrap();
        let via_scan = db.scan("t").unwrap().filter_eq("k", &"k3".into());
        assert_eq!(via_index.n_rows(), 10);
        assert_eq!(via_index.to_rows(), via_scan.to_rows());
    }

    #[test]
    fn indexed_lookup_spans_segments() {
        // Rows for one key spread across many sealed segments must come
        // back complete and in insertion order.
        let db = Database::in_memory(tiny_schema());
        for batch in 0..5 {
            for i in 0..3 {
                db.insert("t", vec!["hot".into(), (batch * 10 + i).into()])
                    .unwrap();
            }
            db.commit().unwrap();
        }
        let df = db.lookup("t", "k", &"hot".into()).unwrap();
        let vs: Vec<i64> = df
            .column("v")
            .unwrap()
            .values
            .iter()
            .filter_map(Value::as_i64)
            .collect();
        assert_eq!(
            vs,
            vec![0, 1, 2, 10, 11, 12, 20, 21, 22, 30, 31, 32, 40, 41, 42]
        );
    }

    #[test]
    fn small_commits_coalesce_segments() {
        let db = Database::in_memory(tiny_schema());
        for i in 0..50 {
            db.insert("t", vec![format!("k{i}").into(), i.into()])
                .unwrap();
            db.commit().unwrap();
        }
        // 50 one-row commits coalesce into a single tail segment, not 50.
        assert_eq!(db.stats().segments, 1);
        assert_eq!(db.row_count("t").unwrap(), 50);
    }

    #[test]
    fn pinned_snapshot_is_stable_across_commits() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        let pinned = db.pin();
        let before = pinned.scan("t").unwrap();
        for i in 0..100 {
            db.insert("t", vec![format!("w{i}").into(), i.into()])
                .unwrap();
            db.commit().unwrap();
        }
        // The pinned view re-reads byte-identically; a fresh pin sees all.
        assert_eq!(pinned.scan("t").unwrap(), before);
        assert_eq!(pinned.row_count("t").unwrap(), 1);
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(db.pin().row_count("t").unwrap(), 101);
    }

    #[test]
    fn lookup_many_preserves_insertion_order() {
        let db = Database::in_memory(tiny_schema());
        for (i, k) in ["b", "a", "b", "c", "a"].iter().enumerate() {
            db.insert("t", vec![(*k).into(), (i as i64).into()])
                .unwrap();
        }
        db.commit().unwrap();
        let df = db.lookup_many("t", "k", &["a".into(), "b".into()]).unwrap();
        let order: Vec<i64> = df
            .column("v")
            .unwrap()
            .values
            .iter()
            .filter_map(Value::as_i64)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 4], "scan order, not per-key order");
        // Unindexed column falls back to a filtered scan, same order.
        let df2 = db.lookup_many("t", "v", &[1.into(), 0.into()]).unwrap();
        assert_eq!(df2.n_rows(), 2);
        assert_eq!(df2.get(0, "k"), Some(&Value::from("b")));
    }

    #[test]
    fn unindexed_lookup_falls_back() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 7.into()]).unwrap();
        db.commit().unwrap();
        assert!(!db.has_index("t", "v"));
        let df = db.lookup("t", "v", &7.into()).unwrap();
        assert_eq!(df.n_rows(), 1);
    }

    #[test]
    fn schema_validation_enforced() {
        let db = Database::in_memory(tiny_schema());
        assert!(matches!(
            db.insert("t", vec![1.into(), 1.into()]),
            Err(StoreError::Invalid(_))
        ));
        assert!(matches!(
            db.insert("nope", vec![]),
            Err(StoreError::NoSuchTable(_))
        ));
    }

    #[test]
    fn flor_schema_database_accepts_log_rows() {
        let db = Database::in_memory(flor_schema());
        db.insert(
            "logs",
            vec![
                "pdf_parser".into(),
                1.into(),
                "train.fl".into(),
                100.into(),
                "loss".into(),
                "0.5".into(),
                3.into(),
            ],
        )
        .unwrap();
        db.commit().unwrap();
        assert_eq!(db.row_count("logs").unwrap(), 1);
    }

    #[test]
    fn durability_across_reopen() {
        let path = temp_wal("durability");
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            db.insert("t", vec!["persisted".into(), 1.into()]).unwrap();
            db.commit().unwrap();
            db.insert("t", vec!["lost".into(), 2.into()]).unwrap();
            // no commit — simulates a crash
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            let df = db.scan("t").unwrap();
            assert_eq!(df.n_rows(), 1);
            assert_eq!(df.get(0, "k"), Some(&Value::from("persisted")));
            // New transactions continue with fresh ids.
            db.insert("t", vec!["after".into(), 3.into()]).unwrap();
            db.commit().unwrap();
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert_eq!(db.row_count("t").unwrap(), 2);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_makes_reopen_replay_only_the_tail() {
        let path = temp_wal("ckpt-tail");
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            for i in 0..20 {
                db.insert("t", vec![format!("k{i}").into(), i.into()])
                    .unwrap();
                db.commit().unwrap();
            }
            let stats = db.checkpoint().unwrap();
            assert_eq!(stats.epoch, 20);
            assert_eq!(stats.rows, 20);
            assert!(stats.wal_bytes_after < stats.wal_bytes_before);
            assert_eq!(stats.wal_bytes_after, 0, "no uncovered tail yet");
            // Two more commits land in the fresh tail.
            for i in 20..22 {
                db.insert("t", vec![format!("k{i}").into(), i.into()])
                    .unwrap();
                db.commit().unwrap();
            }
            assert_eq!(db.stats().checkpoints, 1);
            assert_eq!(db.stats().last_checkpoint_epoch, 20);
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert_eq!(db.row_count("t").unwrap(), 22);
            assert_eq!(db.epoch(), 22);
            let info = db.recovery_info();
            assert!(info.from_checkpoint);
            assert_eq!(info.checkpoint_rows, 20);
            assert_eq!(info.rows_replayed, 2, "only the tail is replayed");
            assert_eq!(info.wal_records_replayed, 4); // 2 × (insert + commit)
                                                      // And the clock keeps going.
            db.insert("t", vec!["next".into(), 99.into()]).unwrap();
            db.commit().unwrap();
            assert_eq!(db.epoch(), 23);
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(crate::checkpoint::sidecar_path(&path));
    }

    #[test]
    fn crash_between_sidecar_write_and_truncate_converges() {
        let path = temp_wal("ckpt-crash");
        let want;
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            for i in 0..10 {
                db.insert("t", vec![format!("k{i}").into(), i.into()])
                    .unwrap();
                db.commit().unwrap();
            }
            // Sidecar written, WAL left un-truncated — the crash window.
            db.checkpoint_without_truncate().unwrap();
            db.insert("t", vec!["tail".into(), 10.into()]).unwrap();
            db.commit().unwrap();
            want = db.scan("t").unwrap();
        }
        {
            // Replay must not double-apply the checkpointed prefix.
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert_eq!(db.scan("t").unwrap(), want);
            assert_eq!(db.epoch(), 11);
            let info = db.recovery_info();
            assert!(info.from_checkpoint);
            assert_eq!(info.rows_replayed, 1, "prefix skipped by txn bound");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(crate::checkpoint::sidecar_path(&path));
    }

    #[test]
    fn checkpoint_preserves_open_transaction_staged_inserts() {
        let path = temp_wal("ckpt-open-txn");
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            db.insert("t", vec!["committed".into(), 1.into()]).unwrap();
            db.commit().unwrap();
            // Open transaction with staged rows in the WAL, then checkpoint.
            db.insert("t", vec!["staged".into(), 2.into()]).unwrap();
            db.checkpoint().unwrap();
            // The staged insert survived the truncation: committing it
            // now must make it durable.
            db.commit().unwrap();
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert_eq!(db.row_count("t").unwrap(), 2);
            let df = db.scan("t").unwrap();
            assert_eq!(df.get(1, "k"), Some(&Value::from("staged")));
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(crate::checkpoint::sidecar_path(&path));
    }

    #[test]
    fn in_memory_checkpoint_compacts_the_log() {
        let db = Database::in_memory(tiny_schema());
        for i in 0..10 {
            db.insert("t", vec![format!("k{i}").into(), i.into()])
                .unwrap();
            db.commit().unwrap();
        }
        let before = db.wal_bytes();
        let stats = db.checkpoint().unwrap();
        assert_eq!(stats.sidecar_bytes, 0);
        assert_eq!(stats.wal_bytes_before, before);
        assert_eq!(db.wal_bytes(), 0);
        assert_eq!(db.row_count("t").unwrap(), 10, "tables untouched");
    }

    #[test]
    fn clone_shares_state() {
        let db = Database::in_memory(tiny_schema());
        let db2 = db.clone();
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        assert_eq!(db2.row_count("t").unwrap(), 1);
    }

    #[test]
    fn ensure_table_idempotent() {
        let db = Database::in_memory(vec![]);
        db.ensure_table(tiny_schema().pop().unwrap());
        db.ensure_table(tiny_schema().pop().unwrap());
        assert_eq!(db.table_names(), vec!["t"]);
    }

    #[test]
    fn stats_reflect_state() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        let s = db.stats();
        assert_eq!(s.total_rows, 1);
        assert_eq!(s.wal_records, 2); // insert + commit marker
        assert_eq!(s.staged_rows, 0);
        assert_eq!(s.wal_epoch, 1);
        assert_eq!(s.segments, 1);
        assert!(s.wal_offset_bytes > 0);
        assert_eq!(s.checkpoints, 0);
        assert_eq!(s.subscribers, 0);
    }

    #[test]
    fn feed_delivers_committed_batches_only() {
        let db = Database::in_memory(tiny_schema());
        let sub = db.subscribe();
        assert_eq!(sub.since_epoch(), 0);
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        assert!(sub.poll().is_empty(), "staged rows must not leak");
        db.insert("t", vec!["b".into(), 2.into()]).unwrap();
        db.commit().unwrap();
        let batches = sub.poll();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].epoch, 1);
        let deltas = &batches[0].deltas;
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].table, "t");
        assert_eq!(deltas[0].row[0], Value::from("a"));
        assert_eq!(deltas[1].row[0], Value::from("b"));
        assert!(sub.poll().is_empty());
    }

    #[test]
    fn feed_skips_rolled_back_rows() {
        let db = Database::in_memory(tiny_schema());
        let sub = db.subscribe();
        db.insert("t", vec!["gone".into(), 1.into()]).unwrap();
        db.rollback();
        db.insert("t", vec!["kept".into(), 2.into()]).unwrap();
        db.commit().unwrap();
        let batches = sub.poll();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].deltas.len(), 1);
        assert_eq!(batches[0].deltas[0].row[0], Value::from("kept"));
    }

    #[test]
    fn feed_subscriber_lifecycle_in_stats() {
        let db = Database::in_memory(tiny_schema());
        let sub1 = db.subscribe();
        let sub2 = db.subscribe();
        assert_eq!(db.stats().subscribers, 2);
        drop(sub2);
        assert_eq!(db.stats().subscribers, 1);
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        assert_eq!(sub1.pending(), 1);
    }

    #[test]
    fn feed_queue_is_bounded_for_slow_consumers() {
        use crate::feed::MAX_PENDING_BATCHES;
        let db = Database::in_memory(tiny_schema());
        let sub = db.subscribe();
        for i in 0..(MAX_PENDING_BATCHES + 50) {
            db.insert("t", vec![format!("k{i}").into(), (i as i64).into()])
                .unwrap();
            db.commit().unwrap();
        }
        assert_eq!(sub.pending(), MAX_PENDING_BATCHES);
        let batches = sub.poll();
        // Oldest batches were shed: the survivor prefix starts past epoch 1
        // (visible to consumers as an epoch gap) and ends at the newest.
        assert_eq!(batches[0].epoch, 51);
        assert_eq!(
            batches.last().unwrap().epoch,
            (MAX_PENDING_BATCHES + 50) as u64
        );
    }

    #[test]
    fn epoch_advances_per_commit_and_survives_reopen() {
        let path = temp_wal("epoch");
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            for i in 0..3 {
                db.insert("t", vec![format!("k{i}").into(), i.into()])
                    .unwrap();
                db.commit().unwrap();
            }
            assert_eq!(db.epoch(), 3);
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert_eq!(db.epoch(), 3);
            assert!(db.stats().wal_offset_bytes > 0);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_with_runs_queries_at_one_epoch() {
        use crate::query::Query;
        let db = Database::in_memory(tiny_schema());
        for (k, v) in [("a", 1i64), ("b", 2), ("a", 3)] {
            db.insert("t", vec![k.into(), v.into()]).unwrap();
        }
        db.commit().unwrap();
        let (epoch, frames) = db
            .snapshot_with(&[
                Query::table("t").filter_in("k", vec!["a".into()]),
                Query::table("t"),
            ])
            .unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(frames[0].n_rows(), 2);
        assert_eq!(frames[1].n_rows(), 3);
        assert!(db.snapshot_with(&[Query::table("absent")]).is_err());
    }

    #[test]
    fn snapshot_is_atomic_and_epoch_stamped() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        let (epoch, frames) = db.snapshot(&["t"]).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].n_rows(), 1);
        assert!(matches!(
            db.snapshot(&["nope"]),
            Err(StoreError::NoSuchTable(_))
        ));
    }
}
