//! The database: tables, secondary indexes, transactions, recovery.
//!
//! Concurrency model: the paper's FlorDB is embedded in one driver process
//! per run; we mirror that with a single logical writer and any number of
//! readers, mediated by a `parking_lot::RwLock`. Readers only ever see
//! committed rows ("visibility control", §2.1).

use crate::codec::WalRecord;
use crate::feed::{CommitBatch, Publisher, RowDelta, Subscription};
use crate::schema::TableSchema;
use crate::wal::{recover, Wal};
use flor_df::{Column, DataFrame, DfResult, Value};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Store-level errors.
#[derive(Debug)]
pub enum StoreError {
    /// Unknown table name.
    NoSuchTable(String),
    /// Row failed schema validation.
    Invalid(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// WAL decode failure on recovery.
    Codec(crate::codec::CodecError),
    /// Dataframe construction failure.
    Df(flor_df::DfError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StoreError::Invalid(m) => write!(f, "invalid row: {m}"),
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Codec(e) => write!(f, "wal codec error: {e}"),
            StoreError::Df(e) => write!(f, "dataframe error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
impl From<flor_df::DfError> for StoreError {
    fn from(e: flor_df::DfError) -> Self {
        StoreError::Df(e)
    }
}

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// One table: schema + committed rows + secondary hash indexes.
#[derive(Debug)]
pub(crate) struct Table {
    pub schema: TableSchema,
    pub rows: Vec<Vec<Value>>,
    /// column name → (value → row ids)
    pub indexes: HashMap<String, HashMap<Value, Vec<usize>>>,
}

impl Table {
    fn new(schema: TableSchema) -> Table {
        let indexes = schema
            .columns
            .iter()
            .filter(|c| c.indexed)
            .map(|c| (c.name.clone(), HashMap::new()))
            .collect();
        Table {
            schema,
            rows: Vec::new(),
            indexes,
        }
    }

    fn append(&mut self, row: Vec<Value>) {
        let rid = self.rows.len();
        for (col, idx) in &mut self.indexes {
            let pos = self
                .schema
                .col_index(col)
                .expect("index column exists in schema");
            idx.entry(row[pos].clone()).or_default().push(rid);
        }
        self.rows.push(row);
    }
}

#[derive(Debug)]
struct DbInner {
    tables: HashMap<String, Table>,
    wal: Wal,
    next_txn: u64,
    open_txn: Option<u64>,
    staged: Vec<(String, Vec<Value>)>,
    /// Count of applied commits; the staleness watermark for the change
    /// feed and materialized views.
    epoch: u64,
    feed: Publisher,
}

/// An embedded relational database holding the FlorDB context tables.
///
/// Cloning shares the same underlying state (cheap `Arc` clone).
#[derive(Debug, Clone)]
pub struct Database {
    inner: Arc<RwLock<DbInner>>,
}

/// Statistics snapshot for monitoring and benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbStats {
    /// Committed rows per table.
    pub rows_per_table: Vec<(String, usize)>,
    /// Total committed rows.
    pub total_rows: usize,
    /// Records appended to the WAL so far.
    pub wal_records: u64,
    /// Rows staged in the open transaction.
    pub staged_rows: usize,
    /// Commits applied so far: the staleness watermark that change-feed
    /// batches and materialized views are stamped with.
    pub wal_epoch: u64,
    /// Bytes appended to the WAL (including any recovered prefix for
    /// file-backed logs) — the physical log offset.
    pub wal_offset_bytes: u64,
    /// Live change-feed subscriptions.
    pub subscribers: usize,
}

impl Database {
    /// In-memory database with the given schemas.
    pub fn in_memory(schemas: Vec<TableSchema>) -> Database {
        Database {
            inner: Arc::new(RwLock::new(DbInner {
                tables: schemas
                    .into_iter()
                    .map(|s| (s.name.clone(), Table::new(s)))
                    .collect(),
                wal: Wal::in_memory(),
                next_txn: 1,
                open_txn: None,
                staged: Vec::new(),
                epoch: 0,
                feed: Publisher::default(),
            })),
        }
    }

    /// File-backed database: replays the WAL at `path` (committed
    /// transactions only) and then accepts new appends.
    pub fn open(path: &Path, schemas: Vec<TableSchema>) -> StoreResult<Database> {
        let mut wal = Wal::open(path)?;
        let recovery = recover(wal.read_all()?).map_err(StoreError::Codec)?;
        let mut tables: HashMap<String, Table> = schemas
            .into_iter()
            .map(|s| (s.name.clone(), Table::new(s)))
            .collect();
        for (tname, row) in recovery.committed {
            if let Some(t) = tables.get_mut(&tname) {
                t.append(row);
            }
        }
        Ok(Database {
            inner: Arc::new(RwLock::new(DbInner {
                tables,
                wal,
                next_txn: recovery.max_txn + 1,
                open_txn: None,
                staged: Vec::new(),
                epoch: recovery.committed_txns as u64,
                feed: Publisher::default(),
            })),
        })
    }

    /// Register an additional table (no-op if it already exists).
    pub fn ensure_table(&self, schema: TableSchema) {
        let mut g = self.inner.write();
        g.tables
            .entry(schema.name.clone())
            .or_insert_with(|| Table::new(schema));
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Stage a row into the open transaction (starting one if needed) and
    /// append it to the WAL. Invisible to readers until [`Database::commit`].
    pub fn insert(&self, table: &str, row: Vec<Value>) -> StoreResult<()> {
        let mut g = self.inner.write();
        let schema = g
            .tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_string()))?
            .schema
            .clone();
        schema.validate(&row).map_err(StoreError::Invalid)?;
        let txn = match g.open_txn {
            Some(t) => t,
            None => {
                let t = g.next_txn;
                g.next_txn += 1;
                g.open_txn = Some(t);
                t
            }
        };
        g.wal.append(&WalRecord::Insert {
            txn,
            table: table.to_string(),
            row: row.clone(),
        })?;
        g.staged.push((table.to_string(), row));
        Ok(())
    }

    /// Commit the open transaction: write the commit marker, fsync, and
    /// make staged rows visible. Returns the number of rows made visible.
    pub fn commit(&self) -> StoreResult<usize> {
        let mut g = self.inner.write();
        let Some(txn) = g.open_txn.take() else {
            return Ok(0);
        };
        g.wal.append(&WalRecord::Commit { txn })?;
        g.wal.sync()?;
        let staged = std::mem::take(&mut g.staged);
        let n = staged.len();
        // Only clone rows into a feed batch when someone is listening;
        // with no subscribers the commit path stays delta-free.
        let publishing = g.feed.live() > 0;
        let mut deltas = Vec::with_capacity(if publishing { n } else { 0 });
        for (tname, row) in staged {
            if let Some(t) = g.tables.get_mut(&tname) {
                if publishing {
                    deltas.push(RowDelta {
                        table: tname,
                        row: row.clone(),
                    });
                }
                t.append(row);
            }
        }
        g.epoch += 1;
        if publishing {
            let batch = CommitBatch {
                epoch: g.epoch,
                txn,
                deltas: Arc::new(deltas),
            };
            g.feed.publish(batch);
        }
        Ok(n)
    }

    /// Subscribe to the change feed: every subsequent [`Database::commit`]
    /// delivers one [`CommitBatch`] of the rows it made visible. Poll with
    /// [`Subscription::poll`]; drop the subscription to detach.
    pub fn subscribe(&self) -> Subscription {
        let mut g = self.inner.write();
        let epoch = g.epoch;
        Subscription::new(g.feed.attach(), epoch)
    }

    /// Current epoch: the number of commits applied so far.
    pub fn epoch(&self) -> u64 {
        self.inner.read().epoch
    }

    /// Atomic multi-table scan: the frames plus the epoch they reflect,
    /// taken under one lock so no commit can interleave. This is the
    /// consistent snapshot a materialized-view build starts from.
    pub fn snapshot(&self, tables: &[&str]) -> StoreResult<(u64, Vec<DataFrame>)> {
        let g = self.inner.read();
        let mut frames = Vec::with_capacity(tables.len());
        for table in tables {
            let t = g
                .tables
                .get(*table)
                .ok_or_else(|| StoreError::NoSuchTable((*table).to_string()))?;
            frames.push(rows_to_frame(&t.schema, t.rows.iter()));
        }
        Ok((g.epoch, frames))
    }

    /// Atomic multi-query snapshot: like [`Database::snapshot`], but each
    /// table is fetched through a [`crate::query::Query`] — predicate
    /// pushdown and index fast paths included — under one lock, so every
    /// result reflects the same epoch. This is how a filtered
    /// materialized-view build pushes its scan down into the store instead
    /// of materialising whole tables first.
    pub fn snapshot_with(
        &self,
        queries: &[crate::query::Query],
    ) -> StoreResult<(u64, Vec<DataFrame>)> {
        let g = self.inner.read();
        let mut frames = Vec::with_capacity(queries.len());
        for q in queries {
            let t = g
                .tables
                .get(q.table_name())
                .ok_or_else(|| StoreError::NoSuchTable(q.table_name().to_string()))?;
            frames.push(q.run_on(t)?);
        }
        Ok((g.epoch, frames))
    }

    /// Discard the open transaction's staged rows. (The WAL keeps the
    /// orphaned inserts, but without a commit marker recovery ignores
    /// them — same effect as a crash.)
    pub fn rollback(&self) -> usize {
        let mut g = self.inner.write();
        g.open_txn = None;
        std::mem::take(&mut g.staged).len()
    }

    /// Number of committed rows in a table.
    pub fn row_count(&self, table: &str) -> StoreResult<usize> {
        let g = self.inner.read();
        g.tables
            .get(table)
            .map(|t| t.rows.len())
            .ok_or_else(|| StoreError::NoSuchTable(table.to_string()))
    }

    /// Full scan of committed rows as a [`DataFrame`].
    pub fn scan(&self, table: &str) -> StoreResult<DataFrame> {
        let g = self.inner.read();
        let t = g
            .tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_string()))?;
        Ok(rows_to_frame(&t.schema, t.rows.iter()))
    }

    /// Point lookup via a secondary index if one exists on `col`; falls
    /// back to a filtered scan otherwise.
    pub fn lookup(&self, table: &str, col: &str, value: &Value) -> StoreResult<DataFrame> {
        let g = self.inner.read();
        let t = g
            .tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_string()))?;
        if let Some(idx) = t.indexes.get(col) {
            let empty = Vec::new();
            let rids = idx.get(value).unwrap_or(&empty);
            return Ok(rows_to_frame(&t.schema, rids.iter().map(|&r| &t.rows[r])));
        }
        let pos = t
            .schema
            .col_index(col)
            .ok_or_else(|| StoreError::Invalid(format!("no column {col}")))?;
        Ok(rows_to_frame(
            &t.schema,
            t.rows.iter().filter(|r| &r[pos] == value),
        ))
    }

    /// Multi-value point lookup: rows where `col` equals any of `values`,
    /// in insertion order (the order a full scan yields), via the
    /// secondary index when one exists. The incremental-view oracle uses
    /// this so the from-scratch recompute visits log rows in exactly the
    /// order the change feed delivered them.
    pub fn lookup_many(&self, table: &str, col: &str, values: &[Value]) -> StoreResult<DataFrame> {
        let g = self.inner.read();
        let t = g
            .tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_string()))?;
        if let Some(idx) = t.indexes.get(col) {
            let mut rids: Vec<usize> = values
                .iter()
                .flat_map(|v| idx.get(v).map(Vec::as_slice).unwrap_or_default())
                .copied()
                .collect();
            rids.sort_unstable();
            rids.dedup();
            return Ok(rows_to_frame(&t.schema, rids.iter().map(|&r| &t.rows[r])));
        }
        let pos = t
            .schema
            .col_index(col)
            .ok_or_else(|| StoreError::Invalid(format!("no column {col}")))?;
        Ok(rows_to_frame(
            &t.schema,
            t.rows.iter().filter(|r| values.contains(&r[pos])),
        ))
    }

    /// Whether `col` has a secondary index on `table`.
    pub fn has_index(&self, table: &str, col: &str) -> bool {
        self.inner
            .read()
            .tables
            .get(table)
            .is_some_and(|t| t.indexes.contains_key(col))
    }

    /// Execute `f` against the raw rows of a table (read-only); used by the
    /// query layer to avoid materialising intermediate frames.
    pub(crate) fn with_table<R>(&self, table: &str, f: impl FnOnce(&Table) -> R) -> StoreResult<R> {
        let g = self.inner.read();
        let t = g
            .tables
            .get(table)
            .ok_or_else(|| StoreError::NoSuchTable(table.to_string()))?;
        Ok(f(t))
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DbStats {
        let g = self.inner.read();
        let mut rows_per_table: Vec<(String, usize)> = g
            .tables
            .iter()
            .map(|(n, t)| (n.clone(), t.rows.len()))
            .collect();
        rows_per_table.sort();
        DbStats {
            total_rows: rows_per_table.iter().map(|(_, n)| n).sum(),
            rows_per_table,
            wal_records: g.wal.records_written,
            staged_rows: g.staged.len(),
            wal_epoch: g.epoch,
            wal_offset_bytes: g.wal.bytes_written,
            subscribers: g.feed.live(),
        }
    }
}

/// Materialise rows into a column-oriented frame with the schema's names.
pub(crate) fn rows_to_frame<'a>(
    schema: &TableSchema,
    rows: impl Iterator<Item = &'a Vec<Value>>,
) -> DataFrame {
    let mut cols: Vec<Column> = schema
        .columns
        .iter()
        .map(|c| Column {
            name: c.name.clone(),
            values: Vec::new(),
        })
        .collect();
    for row in rows {
        for (c, v) in cols.iter_mut().zip(row) {
            c.values.push(v.clone());
        }
    }
    DataFrame::from_columns(cols).expect("schema guarantees equal lengths and unique names")
}

/// Convenience conversion used by higher layers.
pub fn frame_result(df: DataFrame) -> DfResult<DataFrame> {
    Ok(df)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{flor_schema, ColType, ColumnDef};

    fn tiny_schema() -> Vec<TableSchema> {
        vec![TableSchema::new(
            "t",
            vec![
                ColumnDef::indexed("k", ColType::Str),
                ColumnDef::new("v", ColType::Int),
            ],
        )]
    }

    #[test]
    fn insert_invisible_until_commit() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        assert_eq!(db.row_count("t").unwrap(), 0);
        assert_eq!(db.stats().staged_rows, 1);
        assert_eq!(db.commit().unwrap(), 1);
        assert_eq!(db.row_count("t").unwrap(), 1);
    }

    #[test]
    fn rollback_discards() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        assert_eq!(db.rollback(), 1);
        assert_eq!(db.commit().unwrap(), 0);
        assert_eq!(db.row_count("t").unwrap(), 0);
    }

    #[test]
    fn scan_returns_committed_rows() {
        let db = Database::in_memory(tiny_schema());
        for i in 0..5 {
            db.insert("t", vec![format!("k{i}").into(), i.into()])
                .unwrap();
        }
        db.commit().unwrap();
        let df = db.scan("t").unwrap();
        assert_eq!(df.n_rows(), 5);
        assert_eq!(df.column_names(), vec!["k", "v"]);
    }

    #[test]
    fn indexed_lookup_matches_scan_filter() {
        let db = Database::in_memory(tiny_schema());
        for i in 0..100 {
            db.insert("t", vec![format!("k{}", i % 10).into(), i.into()])
                .unwrap();
        }
        db.commit().unwrap();
        assert!(db.has_index("t", "k"));
        let via_index = db.lookup("t", "k", &"k3".into()).unwrap();
        let via_scan = db.scan("t").unwrap().filter_eq("k", &"k3".into());
        assert_eq!(via_index.n_rows(), 10);
        assert_eq!(via_index.to_rows(), via_scan.to_rows());
    }

    #[test]
    fn lookup_many_preserves_insertion_order() {
        let db = Database::in_memory(tiny_schema());
        for (i, k) in ["b", "a", "b", "c", "a"].iter().enumerate() {
            db.insert("t", vec![(*k).into(), (i as i64).into()])
                .unwrap();
        }
        db.commit().unwrap();
        let df = db.lookup_many("t", "k", &["a".into(), "b".into()]).unwrap();
        let order: Vec<i64> = df
            .column("v")
            .unwrap()
            .values
            .iter()
            .filter_map(Value::as_i64)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 4], "scan order, not per-key order");
        // Unindexed column falls back to a filtered scan, same order.
        let df2 = db.lookup_many("t", "v", &[1.into(), 0.into()]).unwrap();
        assert_eq!(df2.n_rows(), 2);
        assert_eq!(df2.get(0, "k"), Some(&Value::from("b")));
    }

    #[test]
    fn unindexed_lookup_falls_back() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 7.into()]).unwrap();
        db.commit().unwrap();
        assert!(!db.has_index("t", "v"));
        let df = db.lookup("t", "v", &7.into()).unwrap();
        assert_eq!(df.n_rows(), 1);
    }

    #[test]
    fn schema_validation_enforced() {
        let db = Database::in_memory(tiny_schema());
        assert!(matches!(
            db.insert("t", vec![1.into(), 1.into()]),
            Err(StoreError::Invalid(_))
        ));
        assert!(matches!(
            db.insert("nope", vec![]),
            Err(StoreError::NoSuchTable(_))
        ));
    }

    #[test]
    fn flor_schema_database_accepts_log_rows() {
        let db = Database::in_memory(flor_schema());
        db.insert(
            "logs",
            vec![
                "pdf_parser".into(),
                1.into(),
                "train.fl".into(),
                100.into(),
                "loss".into(),
                "0.5".into(),
                3.into(),
            ],
        )
        .unwrap();
        db.commit().unwrap();
        assert_eq!(db.row_count("logs").unwrap(), 1);
    }

    #[test]
    fn durability_across_reopen() {
        let dir = std::env::temp_dir().join(format!("flordb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.wal");
        let _ = std::fs::remove_file(&path);
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            db.insert("t", vec!["persisted".into(), 1.into()]).unwrap();
            db.commit().unwrap();
            db.insert("t", vec!["lost".into(), 2.into()]).unwrap();
            // no commit — simulates a crash
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            let df = db.scan("t").unwrap();
            assert_eq!(df.n_rows(), 1);
            assert_eq!(df.get(0, "k"), Some(&Value::from("persisted")));
            // New transactions continue with fresh ids.
            db.insert("t", vec!["after".into(), 3.into()]).unwrap();
            db.commit().unwrap();
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert_eq!(db.row_count("t").unwrap(), 2);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn clone_shares_state() {
        let db = Database::in_memory(tiny_schema());
        let db2 = db.clone();
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        assert_eq!(db2.row_count("t").unwrap(), 1);
    }

    #[test]
    fn ensure_table_idempotent() {
        let db = Database::in_memory(vec![]);
        db.ensure_table(tiny_schema().pop().unwrap());
        db.ensure_table(tiny_schema().pop().unwrap());
        assert_eq!(db.table_names(), vec!["t"]);
    }

    #[test]
    fn stats_reflect_state() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        let s = db.stats();
        assert_eq!(s.total_rows, 1);
        assert_eq!(s.wal_records, 2); // insert + commit marker
        assert_eq!(s.staged_rows, 0);
        assert_eq!(s.wal_epoch, 1);
        assert!(s.wal_offset_bytes > 0);
        assert_eq!(s.subscribers, 0);
    }

    #[test]
    fn feed_delivers_committed_batches_only() {
        let db = Database::in_memory(tiny_schema());
        let sub = db.subscribe();
        assert_eq!(sub.since_epoch(), 0);
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        assert!(sub.poll().is_empty(), "staged rows must not leak");
        db.insert("t", vec!["b".into(), 2.into()]).unwrap();
        db.commit().unwrap();
        let batches = sub.poll();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].epoch, 1);
        let deltas = &batches[0].deltas;
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].table, "t");
        assert_eq!(deltas[0].row[0], Value::from("a"));
        assert_eq!(deltas[1].row[0], Value::from("b"));
        assert!(sub.poll().is_empty());
    }

    #[test]
    fn feed_skips_rolled_back_rows() {
        let db = Database::in_memory(tiny_schema());
        let sub = db.subscribe();
        db.insert("t", vec!["gone".into(), 1.into()]).unwrap();
        db.rollback();
        db.insert("t", vec!["kept".into(), 2.into()]).unwrap();
        db.commit().unwrap();
        let batches = sub.poll();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].deltas.len(), 1);
        assert_eq!(batches[0].deltas[0].row[0], Value::from("kept"));
    }

    #[test]
    fn feed_subscriber_lifecycle_in_stats() {
        let db = Database::in_memory(tiny_schema());
        let sub1 = db.subscribe();
        let sub2 = db.subscribe();
        assert_eq!(db.stats().subscribers, 2);
        drop(sub2);
        assert_eq!(db.stats().subscribers, 1);
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        assert_eq!(sub1.pending(), 1);
    }

    #[test]
    fn feed_queue_is_bounded_for_slow_consumers() {
        use crate::feed::MAX_PENDING_BATCHES;
        let db = Database::in_memory(tiny_schema());
        let sub = db.subscribe();
        for i in 0..(MAX_PENDING_BATCHES + 50) {
            db.insert("t", vec![format!("k{i}").into(), (i as i64).into()])
                .unwrap();
            db.commit().unwrap();
        }
        assert_eq!(sub.pending(), MAX_PENDING_BATCHES);
        let batches = sub.poll();
        // Oldest batches were shed: the survivor prefix starts past epoch 1
        // (visible to consumers as an epoch gap) and ends at the newest.
        assert_eq!(batches[0].epoch, 51);
        assert_eq!(
            batches.last().unwrap().epoch,
            (MAX_PENDING_BATCHES + 50) as u64
        );
    }

    #[test]
    fn epoch_advances_per_commit_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("flordb-epoch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch.wal");
        let _ = std::fs::remove_file(&path);
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            for i in 0..3 {
                db.insert("t", vec![format!("k{i}").into(), i.into()])
                    .unwrap();
                db.commit().unwrap();
            }
            assert_eq!(db.epoch(), 3);
        }
        {
            let db = Database::open(&path, tiny_schema()).unwrap();
            assert_eq!(db.epoch(), 3);
            assert!(db.stats().wal_offset_bytes > 0);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_with_runs_queries_at_one_epoch() {
        use crate::query::Query;
        let db = Database::in_memory(tiny_schema());
        for (k, v) in [("a", 1i64), ("b", 2), ("a", 3)] {
            db.insert("t", vec![k.into(), v.into()]).unwrap();
        }
        db.commit().unwrap();
        let (epoch, frames) = db
            .snapshot_with(&[
                Query::table("t").filter_in("k", vec!["a".into()]),
                Query::table("t"),
            ])
            .unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(frames[0].n_rows(), 2);
        assert_eq!(frames[1].n_rows(), 3);
        assert!(db.snapshot_with(&[Query::table("absent")]).is_err());
    }

    #[test]
    fn snapshot_is_atomic_and_epoch_stamped() {
        let db = Database::in_memory(tiny_schema());
        db.insert("t", vec!["a".into(), 1.into()]).unwrap();
        db.commit().unwrap();
        let (epoch, frames) = db.snapshot(&["t"]).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].n_rows(), 1);
        assert!(matches!(
            db.snapshot(&["nope"]),
            Err(StoreError::NoSuchTable(_))
        ));
    }
}
